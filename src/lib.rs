#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia — facade crate
//!
//! Re-exports the full relia toolkit: temperature-aware NBTI modeling and
//! standby-leakage/NBTI co-optimization for digital circuits, reproducing
//! Wang et al., *"Temperature-aware NBTI modeling and the impact of input
//! vector control on performance degradation"* (DATE 2007 / TDSC 2011).
//!
//! The typical entry point is the analysis platform in [`flow`]:
//!
//! ```
//! use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
//! use relia::netlist::iscas;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = iscas::c17();
//! let config = FlowConfig::paper_defaults()?;
//! let analysis = AgingAnalysis::new(&config, &circuit)?;
//! let report = analysis.run(&StandbyPolicy::AllInternalZero)?;
//! assert!(report.degradation_fraction() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Crate map (each re-exported below):
//!
//! * [`core`] — the temperature-aware NBTI model itself;
//! * [`cells`] / [`netlist`] / [`sim`] / [`leakage`] / [`sta`] /
//!   [`thermal`] — the substrates (cell library, circuit DAG + I/O,
//!   simulation, leakage, timing, thermal);
//! * [`flow`] — the Fig. 6 analysis/optimization platform;
//! * [`ivc`] / [`sleep`] — the standby-leakage-reduction techniques the
//!   paper evaluates for NBTI mitigation;
//! * [`jobs`] — the parallel batch sweep engine (worker pool, degradation
//!   memoization, checkpoint/resume);
//! * [`obs`] — the std-only observability substrate (monotonic/test
//!   clocks, span tracing, log2 latency histograms) threaded through the
//!   serve/jobs/fleet runtimes;
//! * [`fleet`] — the vectorized Monte Carlo engine for fleet-scale
//!   statistical aging (hoisted batch evaluation, seeded correlated
//!   sampling, streaming percentiles — `relia fleet`);
//! * [`surface`] — the precomputed degradation response surface: parallel
//!   grid builder, CRC-sealed artifact, microsecond interpolated lookups
//!   (`relia surface`);
//! * [`serve`] — the std-only HTTP degradation-query service (request
//!   coalescing, shared memo cache, backpressure — `relia serve`);
//! * [`lint`] — the offline static analyzer for unit and reliability
//!   invariants (`relia lint`).

pub use relia_cells as cells;
pub use relia_core as core;
pub use relia_fleet as fleet;
pub use relia_flow as flow;
pub use relia_ivc as ivc;
pub use relia_jobs as jobs;
pub use relia_leakage as leakage;
pub use relia_lint as lint;
pub use relia_netlist as netlist;
pub use relia_obs as obs;
pub use relia_serve as serve;
pub use relia_sim as sim;
pub use relia_sleep as sleep;
pub use relia_sta as sta;
pub use relia_surface as surface;
pub use relia_thermal as thermal;

//! `relia` — command-line front end for the aging/leakage toolkit.
//!
//! ```text
//! relia info   <netlist.bench | builtin:NAME>
//! relia timing <netlist>
//! relia aging  <netlist> [--ras A:S] [--tstandby K] [--years Y]
//!                        [--standby worst|best|footer|BITSTRING]
//! relia sweep  [netlist ...] [--ras LIST] [--tstandby LIST] [--years LIST]
//!              [--standby LIST] [--jobs N] [--checkpoint PATH]
//!              [--retries N] [--job-timeout SECS]
//! relia serve  [--addr HOST:PORT] [--threads N] [--queue-depth N]
//!              [--request-timeout SECS] [--breaker-threshold N]
//!              [--breaker-cooldown SECS] [--brownout-high-water N]
//!              [--surface PATH]
//! relia fleet  [--samples N] [--seed N] [--times S,...] [--guardband G]
//!              [--workers N] [--chunk N] [--checkpoint PATH]
//! relia surface build [--out PATH] [--tstandby LO:HI:N] [--ras LO:HI:N]
//!              [--times LO:HI:N] [--pairs PA:PS,...] [--workers N]
//! relia surface probe <artifact> [--tstandby K] [--ras A:S] [--time S]
//!              [--pactive P] [--pstandby P]
//! relia mlv    <netlist> [--ras A:S] [--tstandby K]
//! relia dot    <netlist>
//! relia list                     # built-in benchmarks
//! ```
//!
//! Netlists are ISCAS85 `.bench` files; `builtin:c432` names a bundled
//! benchmark.
//!
//! Exit codes: 0 success, 1 analysis failure, 2 usage error.

use std::fmt::Display;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use relia::cells::Library;
use relia::core::{Kelvin, Ras, Seconds};
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::ivc::{co_optimize, search_mlv_set, MlvSearchConfig};
use relia::jobs::{self, JobResult, JobStatus, JobTask, PolicySpec, SweepSpec, Workload};
use relia::netlist::stats::CircuitStats;
use relia::netlist::{bench, dot, iscas, Circuit};
use relia::sta::TimingAnalysis;

/// A CLI failure, split by who got it wrong: the invocation (exit 2, usage
/// reminder printed) or the analysis (exit 1).
enum CliError {
    Usage(String),
    Analysis(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Analysis(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("relia: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Analysis(msg)) => {
            eprintln!("relia: {msg}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "usage:
  relia info    <netlist.bench | builtin:NAME>   circuit statistics
  relia timing  <netlist>                        nominal critical path
  relia paths   <netlist> [K]                    top-K critical paths
  relia aging   <netlist> [--ras A:S] [--tstandby K] [--years Y]
                [--standby worst|best|footer|BITS]
                                                 one aging analysis
  relia sweep   [netlist ...] [--ras A:S,...] [--tstandby K,...]
                [--years Y,...] [--standby P,...] [--jobs N]
                [--checkpoint PATH] [--retries N]
                [--job-timeout SECS]             parallel batch sweep
  relia mlv     <netlist> [--ras A:S] [--tstandby K]
                                                 leakage/NBTI co-optimal vectors
  relia dot     <netlist>                        Graphviz export
  relia verilog <netlist>                        structural Verilog export
  relia csv     <netlist> [aging flags]          per-gate aging report
  relia liberty                                  characterized library export
  relia lib                                      cell-library leakage/MLV table
  relia serve   [--addr HOST:PORT] [--threads N] [--queue-depth N]
                [--request-timeout SECS] [--breaker-threshold N]
                [--breaker-cooldown SECS] [--brownout-high-water N]
                [--surface PATH]                 HTTP degradation-query service
  relia fleet   [--samples N] [--seed N] [--times S,...]
                [--guardband G] [--workers N] [--chunk N]
                [--checkpoint PATH]              fleet-scale Monte Carlo aging
  relia surface build [--out PATH] [--tstandby LO:HI:N] [--ras LO:HI:N]
                [--times LO:HI:N] [--pairs PA:PS,...] [--workers N]
                                                 precompute a response surface
  relia surface probe <artifact> [--tstandby K] [--ras A:S] [--time S]
                [--pactive P] [--pstandby P]     interpolated lookup from an artifact
  relia lint    [--root PATH] [--format text|json|sarif]
                [--jobs N] [--incremental] [--write-cache]
                                                 workspace static analysis
  relia list                                     built-in benchmarks
  relia help                                     this message
  relia --version                                toolkit version

sweep notes:
  list-valued flags are comma-separated and multiply into a cartesian grid
  (circuits x standby policies x ras x tstandby x years); defaults give a
  40-job grid on builtin:c17. omit --jobs to use all cores (an explicit
  --jobs 0 is a usage error). --checkpoint resumes completed jobs from
  PATH if it exists, salvaging a corrupt tail. --retries N re-runs
  transiently failed jobs (panics) up to N times with exponential backoff;
  --job-timeout SECS cancels stragglers cooperatively (reported as
  TIMEOUT rows, re-run on resume).";

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    match cmd.as_str() {
        "help" | "-h" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        "version" | "-V" | "--version" => {
            println!("relia {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        "sweep" => run_sweep_command(&args[1..]),
        "serve" => run_serve_command(&args[1..]),
        "fleet" => run_fleet_command(&args[1..]),
        "surface" => run_surface_command(&args[1..]),
        "lint" => run_lint_command(&args[1..]),
        "list" => {
            for name in iscas::names() {
                let c = iscas::circuit(name).expect("known name");
                let (pi, po, gates, depth) = c.stats();
                println!("{name:>8}: {pi:>4} in, {po:>4} out, {gates:>5} gates, depth {depth}");
            }
            Ok(())
        }
        "info" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            let s = CircuitStats::of(&circuit);
            println!("circuit {}", circuit.name());
            println!("  inputs  : {}", s.inputs);
            println!("  outputs : {}", s.outputs);
            println!("  gates   : {}", s.gates);
            println!("  depth   : {}", s.depth);
            println!("  pmos    : {}", s.pmos_devices);
            println!(
                "  fanout  : mean {:.2}, max {}",
                s.mean_fanout, s.max_fanout
            );
            println!("  cells   :");
            for (name, count) in &s.cell_histogram {
                println!("    {name:>10} x {count}");
            }
            Ok(())
        }
        "timing" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            let report = TimingAnalysis::nominal(&circuit);
            println!("max delay: {:.1} ps", report.max_delay_ps());
            println!("critical path ({} gates):", report.critical_path().len());
            for g in report.critical_path() {
                let gate = circuit.gate(*g);
                println!(
                    "  {:>12} {:<8} arrival {:>8.1} ps",
                    gate.name(),
                    circuit.library().cell(gate.cell()).name(),
                    report.arrival(gate.output())
                );
            }
            Ok(())
        }
        "aging" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            let opts = Options::parse(&args[2..]).map_err(CliError::Usage)?;
            let config = opts.config()?;
            let analysis = AgingAnalysis::new(&config, &circuit).map_err(stringify)?;
            let policy = opts.policy(&circuit)?;
            let report = analysis.run(&policy).map_err(stringify)?;
            println!(
                "schedule: active {:.1} s @ {}, standby {:.1} s @ {}; lifetime {:.2} years",
                config.schedule.t_active().0,
                config.schedule.temp_active(),
                config.schedule.t_standby().0,
                config.schedule.temp_standby(),
                config.lifetime.to_years()
            );
            println!("nominal delay : {:.1} ps", report.nominal.max_delay_ps());
            println!("aged delay    : {:.1} ps", report.degraded.max_delay_ps());
            println!(
                "degradation   : {:.2}%",
                report.degradation_fraction() * 100.0
            );
            println!("worst dVth    : {:.1} mV", report.worst_delta_vth() * 1e3);
            if let Some(leak) = report.standby_leakage {
                println!("standby leak  : {:.2} uA", leak * 1e6);
            }
            println!("active leak   : {:.2} uA", report.active_leakage * 1e6);
            Ok(())
        }
        "mlv" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            let opts = Options::parse(&args[2..]).map_err(CliError::Usage)?;
            let config = opts.config()?;
            let analysis = AgingAnalysis::new(&config, &circuit).map_err(stringify)?;
            let set = search_mlv_set(&analysis, &MlvSearchConfig::default()).map_err(stringify)?;
            let co = co_optimize(&analysis, &set).map_err(stringify)?;
            println!(
                "{} MLVs within 4% of minimum leakage {:.3} uA",
                set.vectors().len(),
                set.min_leakage() * 1e6
            );
            for (i, e) in co.evaluations.iter().enumerate() {
                let marker = if i == co.best_for_nbti {
                    " <= co-optimal"
                } else {
                    ""
                };
                let bits: String = e
                    .vector
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                println!(
                    "  {bits}  leak {:.3} uA  aging +{:.3}%{marker}",
                    e.leakage * 1e6,
                    e.degradation * 100.0
                );
            }
            Ok(())
        }
        "paths" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            let k: usize = args
                .get(2)
                .map(|v| {
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad path count {v}")))
                })
                .transpose()?
                .unwrap_or(5);
            let report = TimingAnalysis::nominal(&circuit);
            let top = relia::sta::k_critical_paths(&circuit, &report, k);
            for (i, path) in top.iter().enumerate() {
                let names: Vec<&str> = path.gates.iter().map(|g| circuit.gate(*g).name()).collect();
                println!(
                    "#{:<2} {:>8.1} ps  {} -> {}  [{}]",
                    i + 1,
                    path.delay_ps,
                    circuit.net(path.start).name(),
                    circuit.net(path.endpoint).name(),
                    names.join(" ")
                );
            }
            Ok(())
        }
        "lib" => {
            use relia::cells::Vector;
            use relia::core::Kelvin as K;
            use relia::leakage::{DeviceModels, LeakageTable};
            let lib = Library::ptm90();
            let table = LeakageTable::build(&lib, &DeviceModels::ptm90(), K(400.0));
            println!(
                "{:>10} {:>5} {:>6} {:>10} {:>12} {:>12} {:>14}",
                "cell", "pins", "pmos", "MLV", "min leak", "max leak", "MLV stress"
            );
            for (id, cell) in lib.iter() {
                let n = cell.num_pins();
                let (mlv, min_leak) = table.min_vector(id, n);
                let max_leak = Vector::all(n)
                    .map(|v| table.of(id, v).total())
                    .fold(0.0f64, f64::max);
                let stressed = cell
                    .stressed_pmos(&mlv.to_bools())
                    .iter()
                    .filter(|&&s| s)
                    .count();
                println!(
                    "{:>10} {:>5} {:>6} {:>10} {:>9.1} nA {:>9.1} nA {:>10}/{}",
                    cell.name(),
                    n,
                    cell.pmos_count(),
                    mlv.to_string(),
                    min_leak * 1e9,
                    max_leak * 1e9,
                    stressed,
                    cell.pmos_count()
                );
            }
            Ok(())
        }
        "dot" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            print!("{}", dot::to_dot(&circuit, &dot::DotOptions::default()));
            Ok(())
        }
        "verilog" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            print!("{}", relia::netlist::verilog::write(&circuit));
            Ok(())
        }
        "csv" => {
            let circuit = load(args.get(1).ok_or_else(|| missing("netlist"))?)?;
            let opts = Options::parse(&args[2..]).map_err(CliError::Usage)?;
            let config = opts.config()?;
            let analysis = AgingAnalysis::new(&config, &circuit).map_err(stringify)?;
            let report = analysis.run(&opts.policy(&circuit)?).map_err(stringify)?;
            print!("{}", relia::flow::report::to_csv(&circuit, &report));
            Ok(())
        }
        "liberty" => {
            print!(
                "{}",
                relia::leakage::liberty::export(&Library::ptm90(), relia::core::Kelvin(400.0))
            );
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other}"))),
    }
}

/// Shorthand for the repeated "required positional missing" usage error.
fn missing(what: &str) -> CliError {
    CliError::Usage(format!("missing {what}"))
}

/// Grid flags for `relia sweep`. List-valued flags are comma-separated and
/// multiply into a cartesian grid.
struct SweepArgs {
    circuits: Vec<String>,
    ras: Vec<(f64, f64)>,
    tstandby: Vec<f64>,
    years: Vec<f64>,
    standby: Vec<PolicySpec>,
    jobs: usize,
    checkpoint: Option<PathBuf>,
    retries: u32,
    job_timeout: Option<Duration>,
}

impl SweepArgs {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut circuits = Vec::new();
        let mut ras = Vec::new();
        let mut tstandby = Vec::new();
        let mut years = Vec::new();
        let mut standby = Vec::new();
        let mut jobs = 0usize;
        let mut checkpoint = None;
        let mut retries = 0u32;
        let mut job_timeout = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if !arg.starts_with("--") {
                circuits.push(arg.clone());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag {arg} needs a value"))?;
            match arg.as_str() {
                "--ras" => {
                    for part in value.split(',') {
                        let (a, s) = part
                            .split_once(':')
                            .ok_or_else(|| format!("--ras expects A:S, got {part}"))?;
                        ras.push((
                            a.parse().map_err(|_| format!("bad ratio {a}"))?,
                            s.parse().map_err(|_| format!("bad ratio {s}"))?,
                        ));
                    }
                }
                "--tstandby" => {
                    for part in value.split(',') {
                        tstandby.push(part.parse().map_err(|_| format!("bad kelvin {part}"))?);
                    }
                }
                "--years" => {
                    for part in value.split(',') {
                        years.push(part.parse().map_err(|_| format!("bad years {part}"))?);
                    }
                }
                "--standby" => {
                    for part in value.split(',') {
                        standby.push(PolicySpec::parse(part)?);
                    }
                }
                "--jobs" => {
                    jobs = value
                        .parse()
                        .map_err(|_| format!("bad job count {value}"))?;
                    if jobs == 0 {
                        return Err(
                            "--jobs must be at least 1 (omit the flag to use all cores)".into()
                        );
                    }
                }
                "--checkpoint" => {
                    checkpoint = Some(PathBuf::from(value));
                }
                "--retries" => {
                    retries = value
                        .parse()
                        .map_err(|_| format!("bad retry count {value}"))?;
                }
                "--job-timeout" => {
                    let secs: f64 = value.parse().map_err(|_| format!("bad timeout {value}"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(format!("--job-timeout must be positive, got {value}"));
                    }
                    job_timeout = Some(Duration::from_secs_f64(secs));
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        // Defaults chosen so a bare `relia sweep` exercises a 40-job grid.
        if circuits.is_empty() {
            circuits.push("builtin:c17".to_owned());
        }
        if ras.is_empty() {
            ras = vec![(1.0, 1.0), (1.0, 3.0), (1.0, 5.0), (1.0, 7.0), (1.0, 9.0)];
        }
        if tstandby.is_empty() {
            tstandby = vec![330.0, 350.0, 370.0, 400.0];
        }
        if years.is_empty() {
            years.push(Seconds(1.0e8).to_years());
        }
        if standby.is_empty() {
            standby = vec![PolicySpec::Worst, PolicySpec::Best];
        }
        Ok(SweepArgs {
            circuits,
            ras,
            tstandby,
            years,
            standby,
            jobs,
            checkpoint,
            retries,
            job_timeout,
        })
    }
}

/// `relia lint [--root PATH] [--format text|json]` — the in-CLI face of
/// `relia-lint`. Violations print to stdout (rustc-style text or JSONL)
/// and the command exits 1, matching the analysis-failure convention;
/// flag mistakes exit 2 like every other subcommand.
fn run_lint_command(args: &[String]) -> Result<(), CliError> {
    use relia::lint::{diag, lint_workspace_opts, walker, WorkspaceOpts};

    enum LintFormat {
        Text,
        Json,
        Sarif,
    }

    let mut root: Option<PathBuf> = None;
    let mut format = LintFormat::Text;
    let mut opts = WorkspaceOpts::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root =
                    Some(PathBuf::from(iter.next().ok_or_else(|| {
                        CliError::Usage("--root needs a path".into())
                    })?));
            }
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => format = LintFormat::Text,
                Some("json") => format = LintFormat::Json,
                Some("sarif") => format = LintFormat::Sarif,
                other => {
                    return Err(CliError::Usage(format!(
                        "--format wants text|json|sarif, got {:?}",
                        other.unwrap_or("<missing>")
                    )))
                }
            },
            "--jobs" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => return Err(CliError::Usage("--jobs needs a positive integer".into())),
            },
            "--incremental" => opts.incremental = true,
            "--write-cache" => opts.write_cache = true,
            other => return Err(CliError::Usage(format!("unknown lint flag {other:?}"))),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| CliError::Usage(format!("cannot read current dir: {e}")))?;
            walker::find_workspace_root(&cwd).ok_or_else(|| {
                CliError::Usage("no workspace Cargo.toml above the current directory".into())
            })?
        }
    };
    let diags = lint_workspace_opts(&root, &opts).map_err(CliError::Usage)?;
    match format {
        LintFormat::Text => {
            for d in &diags {
                println!("{}", d.render_text());
            }
        }
        LintFormat::Json => {
            for d in &diags {
                println!("{}", d.render_json());
            }
        }
        LintFormat::Sarif => println!("{}", diag::render_sarif(&diags)),
    }
    if diags.is_empty() {
        Ok(())
    } else {
        Err(CliError::Analysis(format!(
            "{} lint violation(s)",
            diags.len()
        )))
    }
}

const SERVE_USAGE: &str = "usage: relia serve [flags]

Serves NBTI degradation queries over HTTP (std-only, offline):

  POST /v1/degrade      one stress point -> dVth + delay degradation
  POST /v1/sweep        small inline grid (canonical sweep order)
  POST /v1/fleet        Monte Carlo fleet summary (relia-fleet engine)
  GET  /healthz         liveness / drain state
  GET  /metrics         Prometheus text exposition (latency histograms,
                        build info, uptime included)
  GET  /debug/trace     most recent request spans as JSON
  POST /admin/shutdown  graceful drain (finish in-flight, then exit 0)

flags:
  --addr HOST:PORT        bind address (default 127.0.0.1:0 = ephemeral
                          port; the resolved address is printed on stdout)
  --threads N             worker threads (default: all cores)
  --queue-depth N         bounded connection queue; beyond it new
                          connections are shed with 503 + Retry-After
                          (default 64, must be >= 1)
  --request-timeout SECS  per-request deadline: socket reads (408) and
                          evaluation (504) both (default 5)
  --breaker-threshold N   consecutive evaluation failures (5xx) that open
                          an endpoint's circuit breaker (default 5, must
                          be >= 1)
  --breaker-cooldown SECS open-breaker cooldown before a half-open probe
                          is admitted (default 1)
  --brownout-high-water N in-flight connections beyond which brownout
                          engages: cache hits still answer, cold work is
                          shed with 503 + Retry-After (default 48)
  --trace N               span-ring capacity behind GET /debug/trace
                          (default 1024; 0 disables span recording)
  --slow-ms MS            log requests slower than MS milliseconds to
                          stderr (default 0 = off)
  --surface PATH          mount a precomputed response surface (built by
                          `relia surface build`): in-domain /v1/degrade
                          queries answer by multilinear interpolation in
                          microseconds, out-of-domain or unknown-pair
                          queries fall back to exact evaluation, and
                          `?mode=exact` forces the exact path per
                          request. Artifacts whose measured sup-error
                          exceeds the documented bound or whose model
                          fingerprint mismatches the serving calibration
                          are refused at startup (exit 1)

Identical concurrent queries are coalesced into one model evaluation, and
all queries share one process-wide dVth memo cache. Health transitions
(Healthy -> Degraded -> Draining) are logged to stderr; /healthz answers
203 + Retry-After while degraded.";

/// `relia serve` — boots the HTTP service and blocks until drained.
fn run_serve_command(args: &[String]) -> Result<(), CliError> {
    let mut config = relia::serve::ServeConfig::default();
    let mut overload = relia::serve::OverloadConfig::default();
    let mut trace_capacity = relia::serve::DEFAULT_TRACE_CAPACITY;
    let mut slow_ms: u64 = 0;
    let mut surface_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if matches!(arg.as_str(), "help" | "-h" | "--help") {
            println!("{SERVE_USAGE}");
            return Ok(());
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("flag {arg} needs a value")))?;
        match arg.as_str() {
            "--addr" => config.addr = value.clone(),
            "--threads" => {
                config.threads = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad thread count {value}")))?;
                if config.threads == 0 {
                    return Err(CliError::Usage(
                        "--threads must be at least 1 (omit the flag to use all cores)".into(),
                    ));
                }
            }
            "--queue-depth" => {
                config.queue_depth = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad queue depth {value}")))?;
                if config.queue_depth == 0 {
                    return Err(CliError::Usage("--queue-depth must be at least 1".into()));
                }
            }
            "--request-timeout" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad timeout {value}")))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(CliError::Usage(format!(
                        "--request-timeout must be positive, got {value}"
                    )));
                }
                config.request_timeout = Duration::from_secs_f64(secs);
            }
            "--breaker-threshold" => {
                overload.breaker_threshold = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad breaker threshold {value}")))?;
                if overload.breaker_threshold == 0 {
                    return Err(CliError::Usage(
                        "--breaker-threshold must be at least 1".into(),
                    ));
                }
            }
            "--breaker-cooldown" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad cooldown {value}")))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(CliError::Usage(format!(
                        "--breaker-cooldown must be positive, got {value}"
                    )));
                }
                overload.breaker_cooldown = Duration::from_secs_f64(secs);
            }
            "--brownout-high-water" => {
                overload.brownout_high_water = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad high-water mark {value}")))?;
            }
            "--trace" => {
                trace_capacity = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad trace capacity {value}")))?;
            }
            "--slow-ms" => {
                slow_ms = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad slow threshold {value}")))?;
            }
            "--surface" => surface_path = Some(PathBuf::from(value)),
            other => return Err(CliError::Usage(format!("unknown serve flag {other}"))),
        }
    }
    let obs = relia::serve::ServeObs::new()
        .with_tracer(relia::obs::Tracer::new(trace_capacity))
        .with_slow_log(slow_ms, Box::new(|line| eprintln!("relia-serve {line}")));
    let mut state = relia::serve::ServeState::new(config.request_timeout)
        .map_err(CliError::Analysis)?
        .with_overload(overload)
        .with_obs(obs);
    if let Some(path) = &surface_path {
        let surface = relia::surface::Surface::load(path).map_err(|e| {
            CliError::Analysis(format!("cannot mount surface {}: {e}", path.display()))
        })?;
        let model = relia::core::NbtiModel::ptm90().map_err(stringify)?;
        surface
            .verify_model(&model)
            .map_err(|e| CliError::Analysis(format!("surface {}: {e}", path.display())))?;
        eprintln!(
            "relia-serve surface: mounted {} (sup-error {:e}, bound {:e})",
            path.display(),
            surface.sup_error(),
            relia::surface::DOCUMENTED_ERROR_BOUND
        );
        state = state.with_surface(surface);
    }
    let state = Arc::new(state);
    // Operators watch health from stderr; stdout stays machine-parseable.
    state.health.set_logger(Box::new(|t| {
        eprintln!(
            "relia-serve health: {} -> {} (transition {})",
            t.from.label(),
            t.to.label(),
            t.seq
        );
    }));
    let server = relia::serve::Server::bind(config, state)
        .map_err(|e| CliError::Analysis(format!("cannot bind: {e}")))?;
    // The resolved address (ephemeral port included) goes to stdout so
    // scripts and load generators can discover it.
    println!("relia-serve listening on {}", server.local_addr());
    server
        .run()
        .map_err(|e| CliError::Analysis(format!("server failed: {e}")))
}

const FLEET_USAGE: &str = "usage: relia fleet [flags]

Monte Carlo aging across a device fleet: correlated Vth/rate variation
drawn from a seeded PRNG, evaluated with the hoisted batch kernel, and
summarized as degradation percentiles, yield vs time, and projected
lifetime percentiles.

flags:
  --samples N          devices to draw (default 10000)
  --seed N             PRNG seed, decimal or 0xHEX (default 0xf1612a)
  --times S,S,...      evaluation times in seconds, non-decreasing
                       (default 3.156e7,9.468e7,1e8)
  --ras A:S            active:standby duty ratio (default 1:9)
  --tstandby K         standby temperature in kelvin (default 330)
  --pactive P          active-mode stress probability (default 0.5)
  --pstandby P         standby-mode stress probability (default 1)
  --vth-mean V         fresh Vth mean in volts (default 0.22)
  --vth-sigma V        fresh Vth sigma in volts (default 0.010)
  --correlation C      Vth/rate correlation in [-1, 1] (default -0.4)
  --rate-sigma S       lognormal aging-rate spread (default 0.08)
  --guardband G        delay guardband fraction in (0, 1) (default 0.08)
  --workers N          worker threads (default: all cores; an explicit
                       --workers 0 is a usage error)
  --chunk N            samples per chunk (default 2048; part of the
                       checkpoint fingerprint)
  --checkpoint PATH    append completed chunks to PATH and resume from it
  --trace N            record hoist/chunk/merge spans into an N-slot ring
                       and print per-phase attribution to stderr (0 = off)

Summaries are bit-identical for a fixed seed and chunk size regardless
of --workers.";

/// `relia fleet` — the CLI face of the `relia-fleet` batch engine.
///
/// Flag mistakes (unparseable numbers, unknown flags, an explicit zero
/// worker/chunk count) exit 2; spec violations the engine rejects
/// (e.g. an out-of-range guardband) and checkpoint mismatches exit 1.
fn run_fleet_command(args: &[String]) -> Result<(), CliError> {
    use relia::core::{Volts, VthDistribution};
    use relia::fleet::{run_fleet, FleetOptions, FleetSpec};

    let mut spec = FleetSpec::paper_defaults().map_err(stringify)?;
    let mut opts = FleetOptions::default();
    let mut vth_mean = spec.dist.mean().0;
    let mut vth_sigma = spec.dist.sigma().0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if matches!(arg.as_str(), "help" | "-h" | "--help") {
            println!("{FLEET_USAGE}");
            return Ok(());
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("flag {arg} needs a value")))?;
        let bad = |what: &str| CliError::Usage(format!("bad {what} {value}"));
        match arg.as_str() {
            "--samples" => {
                spec.samples = value.parse().map_err(|_| bad("sample count"))?;
            }
            "--seed" => {
                let v = value.trim();
                spec.seed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).map_err(|_| bad("seed"))?,
                    None => v.parse().map_err(|_| bad("seed"))?,
                };
            }
            "--times" => {
                spec.times.clear();
                for part in value.split(',') {
                    let secs: f64 = part
                        .parse()
                        .map_err(|_| CliError::Usage(format!("bad time {part}")))?;
                    spec.times.push(Seconds(secs));
                }
            }
            "--ras" => {
                let (a, s) = value
                    .split_once(':')
                    .ok_or_else(|| CliError::Usage(format!("--ras expects A:S, got {value}")))?;
                spec.ras = Ras::new(
                    a.parse().map_err(|_| bad("ratio"))?,
                    s.parse().map_err(|_| bad("ratio"))?,
                )
                .map_err(stringify)?;
            }
            "--tstandby" => {
                spec.t_standby = Kelvin(value.parse().map_err(|_| bad("kelvin"))?);
            }
            "--pactive" => {
                spec.p_active = value.parse().map_err(|_| bad("probability"))?;
            }
            "--pstandby" => {
                spec.p_standby = value.parse().map_err(|_| bad("probability"))?;
            }
            "--vth-mean" => {
                vth_mean = value.parse().map_err(|_| bad("voltage"))?;
            }
            "--vth-sigma" => {
                vth_sigma = value.parse().map_err(|_| bad("voltage"))?;
            }
            "--correlation" => {
                spec.correlation = value.parse().map_err(|_| bad("correlation"))?;
            }
            "--rate-sigma" => {
                spec.rate_sigma = value.parse().map_err(|_| bad("rate sigma"))?;
            }
            "--guardband" => {
                spec.guardband = value.parse().map_err(|_| bad("guardband"))?;
            }
            "--workers" => {
                opts.workers = value.parse().map_err(|_| bad("worker count"))?;
                if opts.workers == 0 {
                    return Err(CliError::Usage(
                        "--workers must be at least 1 (omit the flag to use all cores)".into(),
                    ));
                }
            }
            "--chunk" => {
                opts.chunk = value.parse().map_err(|_| bad("chunk size"))?;
                if opts.chunk == 0 {
                    return Err(CliError::Usage(
                        "--chunk must be at least 1 (omit the flag for the default)".into(),
                    ));
                }
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(value));
            }
            "--trace" => {
                let capacity: usize = value.parse().map_err(|_| bad("trace capacity"))?;
                if capacity > 0 {
                    opts.trace = Some(Arc::new(relia::obs::Tracer::new(capacity)));
                }
            }
            other => return Err(CliError::Usage(format!("unknown fleet flag {other}"))),
        }
    }
    spec.dist = VthDistribution::new(Volts(vth_mean), Volts(vth_sigma)).map_err(stringify)?;

    let outcome = run_fleet(&spec, &opts).map_err(|e| CliError::Analysis(e.to_string()))?;
    let summary = &outcome.summary;
    println!(
        "fleet: {} devices, seed {:#x}, guardband {:.1}%",
        summary.samples,
        summary.seed,
        summary.guardband * 100.0
    );
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "time", "mean", "std", "p50", "p90", "p99", "yield"
    );
    for p in &summary.points {
        println!(
            "{:>11.4e}s {:>7.3}% {:>7.3}% {:>7.3}% {:>7.3}% {:>7.3}% {:>7.2}%",
            p.time.0,
            p.mean * 100.0,
            p.std_dev * 100.0,
            p.p50 * 100.0,
            p.p90 * 100.0,
            p.p99 * 100.0,
            p.yield_fraction * 100.0
        );
    }
    let lt = &summary.lifetime;
    println!(
        "lifetime: p01 {:.2} years, p10 {:.2} years, p50 {:.2} years",
        Seconds(lt.p01).to_years(),
        Seconds(lt.p10).to_years(),
        Seconds(lt.p50).to_years()
    );
    eprintln!("{}", outcome.metrics);
    if let Some(tracer) = &opts.trace {
        // Hot-path attribution over the retained spans: where the wall
        // clock went, phase by phase (hoisting vs sampling vs merging).
        let mut by_name: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for span in tracer.recent() {
            let entry = by_name.entry(span.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += span.dur_ns;
        }
        for (name, (count, total_ns)) in by_name {
            eprintln!(
                "trace: {name:<12} {count:>5} span(s), total {}",
                relia::obs::fmt_ns(total_ns as f64)
            );
        }
        if tracer.dropped() > 0 {
            eprintln!(
                "trace: {} span(s) dropped under contention",
                tracer.dropped()
            );
        }
    }
    Ok(())
}

const SURFACE_USAGE: &str = "usage: relia surface <build | probe> [flags]

Precomputed degradation response surface: an offline builder fills a
dense (T_active x T_standby x RAS x lifetime) grid per stress pair with
exact model evaluations, measures the multilinear-interpolation
sup-error at every cell midpoint, and seals both into a versioned,
CRC-32-protected artifact that `relia serve --surface` mounts as a
microsecond-latency hot tier.

relia surface build [flags]
  --out PATH          artifact path (default surface.rls; written via
                      tmp + rename, so a crash never leaves a torn file)
  --tstandby LO:HI:N  standby-temperature axis, N linear points in
                      kelvin (default 310:410:21)
  --ras LO:HI:N       RAS active-fraction axis, N linear points in
                      (0, 1) (default 0.05:0.95:37)
  --times LO:HI:N     lifetime axis, N log-spaced points in seconds
                      (default 1e6:1e10:41)
  --pairs PA:PS,...   stress-probability pairs, one value block each
                      (default 0.5:1)
  --workers N         builder threads (default: all cores)

The measured sup-error is printed and embedded in the header; a build
whose error exceeds the documented bound is refused (exit 1) — densify
the grid instead of shipping an artifact the server would reject.

relia surface probe <artifact> [flags]
  --tactive K         active temperature (default: the engine baseline)
  --tstandby K        standby temperature in kelvin (default 330)
  --ras A:S           active:standby duty ratio (default 1:9)
  --time S            lifetime in seconds (default 1e8)
  --pactive P         active-mode stress probability (default 0.5)
  --pstandby P        standby-mode stress probability (default 1)

Probe answers one interpolated lookup, reports whether the query was
clamped to the grid domain, and cross-checks the in-domain answer
against exact evaluation (exit 1 if the relative error exceeds the
documented bound).";

/// `relia surface` — builds and probes response-surface artifacts.
fn run_surface_command(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        None | Some("help" | "-h" | "--help") => {
            println!("{SURFACE_USAGE}");
            Ok(())
        }
        Some("build") => run_surface_build(&args[1..]),
        Some("probe") => run_surface_probe(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown surface subcommand {other} (expected build or probe)"
        ))),
    }
}

/// Parses an axis flag value of the form `LO:HI:N`.
fn parse_axis(value: &str, flag: &str, log: bool) -> Result<Vec<f64>, CliError> {
    let bad = || CliError::Usage(format!("{flag} expects LO:HI:N, got {value}"));
    let parts: Vec<&str> = value.split(':').collect();
    let [lo, hi, n] = parts.as_slice() else {
        return Err(bad());
    };
    let lo: f64 = lo.parse().map_err(|_| bad())?;
    let hi: f64 = hi.parse().map_err(|_| bad())?;
    let n: usize = n.parse().map_err(|_| bad())?;
    if n == 0 {
        return Err(bad());
    }
    Ok(if log {
        relia::surface::log_spaced(lo, hi, n)
    } else {
        relia::surface::lin_spaced(lo, hi, n)
    })
}

fn run_surface_build(args: &[String]) -> Result<(), CliError> {
    let mut spec = relia::surface::BuildSpec::paper_defaults();
    let mut out = PathBuf::from("surface.rls");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if matches!(arg.as_str(), "help" | "-h" | "--help") {
            println!("{SURFACE_USAGE}");
            return Ok(());
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("flag {arg} needs a value")))?;
        match arg.as_str() {
            "--out" => out = PathBuf::from(value),
            "--tstandby" => {
                spec.t_standby_k = parse_axis(value, "--tstandby", false)?
                    .into_iter()
                    .map(Kelvin)
                    .collect()
            }
            "--ras" => spec.ras_fraction = parse_axis(value, "--ras", false)?,
            "--times" => spec.lifetime_s = parse_axis(value, "--times", true)?,
            "--pairs" => {
                spec.pairs.clear();
                for part in value.split(',') {
                    let (pa, ps) = part.split_once(':').ok_or_else(|| {
                        CliError::Usage(format!("--pairs expects PA:PS,..., got {part}"))
                    })?;
                    let bad = |p: &str| CliError::Usage(format!("bad probability {p}"));
                    spec.pairs.push((
                        pa.parse().map_err(|_| bad(pa))?,
                        ps.parse().map_err(|_| bad(ps))?,
                    ));
                }
            }
            "--workers" => {
                spec.workers = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad worker count {value}")))?;
                if spec.workers == 0 {
                    return Err(CliError::Usage(
                        "--workers must be at least 1 (omit the flag to use all cores)".into(),
                    ));
                }
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown surface build flag {other}"
                )))
            }
        }
    }
    let model = relia::core::NbtiModel::ptm90().map_err(stringify)?;
    let artifact = relia::surface::build(&model, &spec).map_err(stringify)?;
    let bound = relia::surface::DOCUMENTED_ERROR_BOUND;
    if artifact.sup_error > bound {
        return Err(CliError::Analysis(format!(
            "measured sup-error {:e} exceeds the documented bound {bound:e}; \
             refusing to write {} — densify the grid",
            artifact.sup_error,
            out.display()
        )));
    }
    artifact.write(&out).map_err(stringify)?;
    let g = &artifact.grid;
    println!("surface: wrote {}", out.display());
    println!(
        "  grid: {} x {} x {} x {} nodes, {} stress pair(s), {} values",
        g.t_active_k().len(),
        g.t_standby_k().len(),
        g.ras_fraction().len(),
        g.lifetime_s().len(),
        artifact.pairs.len(),
        artifact.pairs.len() * g.len()
    );
    println!(
        "  sup-error: {:e} over {} midpoint samples (bound {bound:e})",
        artifact.sup_error, artifact.error_samples
    );
    Ok(())
}

fn run_surface_probe(args: &[String]) -> Result<(), CliError> {
    if matches!(
        args.first().map(String::as_str),
        None | Some("help" | "-h" | "--help")
    ) {
        println!("{SURFACE_USAGE}");
        return match args.first() {
            None => Err(CliError::Usage(
                "surface probe needs an artifact path".into(),
            )),
            Some(_) => Ok(()),
        };
    }
    let path = PathBuf::from(&args[0]);
    let mut query = relia::surface::SurfaceQuery {
        t_active_k: Kelvin(jobs::SWEEP_TEMP_ACTIVE_K),
        t_standby_k: Kelvin(330.0),
        ras_fraction: 0.1,
        lifetime_s: 1e8,
        p_active: 0.5,
        p_standby: 1.0,
    };
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("flag {arg} needs a value")))?;
        let bad = |what: &str| CliError::Usage(format!("bad {what} {value}"));
        match arg.as_str() {
            "--tactive" => query.t_active_k = Kelvin(value.parse().map_err(|_| bad("kelvin"))?),
            "--tstandby" => query.t_standby_k = Kelvin(value.parse().map_err(|_| bad("kelvin"))?),
            "--ras" => {
                let (a, s) = value
                    .split_once(':')
                    .ok_or_else(|| CliError::Usage(format!("--ras expects A:S, got {value}")))?;
                let a: f64 = a.parse().map_err(|_| bad("ratio"))?;
                let s: f64 = s.parse().map_err(|_| bad("ratio"))?;
                if !(a >= 0.0 && s >= 0.0 && a + s > 0.0) {
                    return Err(bad("ratio"));
                }
                query.ras_fraction = a / (a + s);
            }
            "--time" => query.lifetime_s = value.parse().map_err(|_| bad("time"))?,
            "--pactive" => query.p_active = value.parse().map_err(|_| bad("probability"))?,
            "--pstandby" => query.p_standby = value.parse().map_err(|_| bad("probability"))?,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown surface probe flag {other}"
                )))
            }
        }
    }
    let model = relia::core::NbtiModel::ptm90().map_err(stringify)?;
    let surface = relia::surface::Surface::load(&path)
        .map_err(|e| CliError::Analysis(format!("cannot load {}: {e}", path.display())))?;
    surface
        .verify_model(&model)
        .map_err(|e| CliError::Analysis(format!("{}: {e}", path.display())))?;
    let g = &surface.artifact().grid;
    println!(
        "surface: {} — grid {} x {} x {} x {}, {} pair(s), sup-error {:e}",
        path.display(),
        g.t_active_k().len(),
        g.t_standby_k().len(),
        g.ras_fraction().len(),
        g.lifetime_s().len(),
        surface.artifact().pairs.len(),
        surface.sup_error()
    );
    let lookup = surface.lookup(&query).ok_or_else(|| {
        CliError::Analysis(format!(
            "stress pair ({}, {}) is not in the artifact",
            query.p_active, query.p_standby
        ))
    })?;
    println!("delta_vth_v: {:e}", lookup.delta_vth_v);
    println!("clamped: {}", lookup.clamped);
    if lookup.clamped {
        // Out-of-domain answers carry no accuracy contract; nothing to gate.
        return Ok(());
    }
    let exact = relia::surface::evaluate_exact(&model, surface.artifact().period_s, &query)
        .map_err(stringify)?;
    let err = relia::surface::rel_error(lookup.delta_vth_v, exact);
    let bound = relia::surface::DOCUMENTED_ERROR_BOUND;
    println!("rel-error: {err:e} vs exact {exact:e} (bound {bound:e})");
    if err > bound {
        return Err(CliError::Analysis(format!(
            "interpolated answer misses exact evaluation by {err:e} (> bound {bound:e})"
        )));
    }
    Ok(())
}

fn run_sweep_command(args: &[String]) -> Result<(), CliError> {
    let parsed = SweepArgs::parse(args).map_err(CliError::Usage)?;
    let spec = SweepSpec {
        workload: Workload::CircuitAging {
            circuits: parsed.circuits,
            policies: parsed.standby,
        },
        ras: parsed.ras,
        t_standby: parsed.tstandby.into_iter().map(Kelvin).collect(),
        lifetimes: parsed
            .years
            .iter()
            .map(|&y| Seconds::from_years(y))
            .collect(),
    };
    // The spread covers the fault-injection field that only exists when
    // relia-jobs is built with its `fault-inject` feature.
    #[allow(clippy::needless_update)]
    let options = jobs::SweepOptions {
        workers: parsed.jobs,
        checkpoint: parsed.checkpoint,
        cache_shards: 0,
        retries: parsed.retries,
        job_timeout: parsed.job_timeout,
        ..jobs::SweepOptions::default()
    };
    let outcome = jobs::run_sweep(&spec, &options, load).map_err(|e| match e {
        // An empty grid means the invocation described no work — that is a
        // usage problem (exit 2), not an analysis failure (exit 1).
        jobs::SweepError::EmptySpec => CliError::Usage(e.to_string()),
        other => CliError::Analysis(other.to_string()),
    })?;

    println!(
        "{:>10} {:>8} {:>6} {:>9} {:>8} {:>9} {:>7} {:>9} {:>9} {:>10}",
        "circuit", "standby", "ras", "tstandby", "years", "dVth", "degr", "nominal", "aged", "leak"
    );
    for (point, status) in outcome.points.iter().zip(&outcome.statuses) {
        let (circuit, policy) = match &point.task {
            JobTask::Aging { circuit, policy } => (
                circuit.strip_prefix("builtin:").unwrap_or(circuit),
                policy.label(),
            ),
            JobTask::Model { .. } => ("<model>", "-".to_owned()),
        };
        let prefix = format!(
            "{:>10} {:>8} {:>6} {:>8.0}K {:>8.2}",
            circuit,
            policy,
            format!("{}:{}", point.ras.0, point.ras.1),
            point.t_standby.0,
            point.lifetime.to_years()
        );
        match status {
            JobStatus::Completed(JobResult::Aging {
                worst_delta_vth,
                degradation,
                nominal_delay_ps,
                degraded_delay_ps,
                standby_leakage,
                ..
            }) => {
                let leak = standby_leakage
                    .map(|l| format!("{:.2}uA", l * 1e6))
                    .unwrap_or_else(|| "-".to_owned());
                println!(
                    "{prefix} {:>7.2}mV {:>6.2}% {:>7.1}ps {:>7.1}ps {:>10}",
                    worst_delta_vth * 1e3,
                    degradation * 100.0,
                    nominal_delay_ps,
                    degraded_delay_ps,
                    leak
                );
            }
            JobStatus::Completed(JobResult::Model { delta_vth }) => {
                println!("{prefix} {:>7.2}mV", delta_vth * 1e3);
            }
            JobStatus::Failed { reason, attempts } => {
                if *attempts > 1 {
                    println!("{prefix} FAILED after {attempts} attempts: {reason}");
                } else {
                    println!("{prefix} FAILED: {reason}");
                }
            }
            JobStatus::TimedOut { elapsed_ms } => {
                println!("{prefix} TIMEOUT after {:.1}s", *elapsed_ms as f64 / 1e3);
            }
        }
    }
    eprintln!("{}", outcome.metrics);
    Ok(())
}

fn stringify(e: impl Display) -> String {
    e.to_string()
}

fn load(source: &str) -> Result<Circuit, String> {
    if let Some(name) = source.strip_prefix("builtin:") {
        return iscas::circuit(name).ok_or_else(|| format!("unknown builtin {name}"));
    }
    let text = std::fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?;
    if source.ends_with(".v") || source.ends_with(".sv") {
        relia::netlist::verilog::parse(&text, Library::ptm90()).map_err(stringify)
    } else {
        bench::parse(&text, Library::ptm90()).map_err(stringify)
    }
}

/// Parsed `--flag value` options.
struct Options {
    ras: (f64, f64),
    tstandby: f64,
    years: f64,
    standby: String,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options {
            ras: (1.0, 9.0),
            tstandby: 330.0,
            years: Seconds(1.0e8).to_years(),
            standby: "worst".to_owned(),
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            match flag.as_str() {
                "--ras" => {
                    let (a, s) = value
                        .split_once(':')
                        .ok_or_else(|| format!("--ras expects A:S, got {value}"))?;
                    opts.ras = (
                        a.parse().map_err(|_| format!("bad ratio {a}"))?,
                        s.parse().map_err(|_| format!("bad ratio {s}"))?,
                    );
                }
                "--tstandby" => {
                    opts.tstandby = value.parse().map_err(|_| format!("bad kelvin {value}"))?;
                }
                "--years" => {
                    opts.years = value.parse().map_err(|_| format!("bad years {value}"))?;
                }
                "--standby" => {
                    opts.standby = value.clone();
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(opts)
    }

    fn config(&self) -> Result<FlowConfig, String> {
        let mut config = FlowConfig::with_schedule(
            Ras::new(self.ras.0, self.ras.1).map_err(stringify)?,
            Kelvin(self.tstandby),
        )
        .map_err(stringify)?;
        config.lifetime = Seconds::from_years(self.years);
        Ok(config)
    }

    fn policy(&self, circuit: &Circuit) -> Result<StandbyPolicy, String> {
        match self.standby.as_str() {
            "worst" => Ok(StandbyPolicy::AllInternalZero),
            "best" => Ok(StandbyPolicy::AllInternalOne),
            "footer" => Ok(StandbyPolicy::PowerGatedFooter),
            bits => {
                let v: Vec<bool> = bits
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(format!("bad standby bit {other}")),
                    })
                    .collect::<Result<_, _>>()?;
                if v.len() != circuit.primary_inputs().len() {
                    return Err(format!(
                        "standby vector has {} bits, circuit has {} inputs",
                        v.len(),
                        circuit.primary_inputs().len()
                    ));
                }
                Ok(StandbyPolicy::InputVector(v))
            }
        }
    }
}

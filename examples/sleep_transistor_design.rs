//! NBTI-aware sleep-transistor design.
//!
//! Scenario: power-gate a block with a 3% delay budget. This example sizes
//! the sleep transistor, adds the NBTI end-of-life margin for a PMOS
//! header, compares footer vs header aging trajectories, and contrasts
//! block-based (BBSTI) with fine-grain (FGSTI) insertion area.
//!
//! Run with: `cargo run --release --example sleep_transistor_design`

#![allow(clippy::unwrap_used)]
use relia::core::Seconds;
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::netlist::iscas;
use relia::sleep::{bbsti_blocks, fgsti_sizes, SleepTransistorKind, StInsertion, StSizing};
use relia::sta::TimingAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = iscas::circuit("c880").ok_or("unknown benchmark")?;
    let config = FlowConfig::paper_defaults()?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;
    let sizing = StSizing::paper_defaults(0.03, 0.30)?;

    // 1. End-of-life threshold shift of a PMOS header and its size margin.
    let st_dv = sizing.st_delta_vth(&config.nbti, &config.schedule, config.lifetime)?;
    println!(
        "header ST aging over {:.1} years: dVth = {:.1} mV -> oversize by {:.2}%",
        config.lifetime.to_years(),
        st_dv * 1e3,
        sizing.nbti_size_margin(st_dv)? * 100.0
    );

    // 2. Footer vs header delay trajectories.
    let times = [Seconds(0.0), Seconds(1.0e7), Seconds(1.0e8)];
    for kind in [SleepTransistorKind::Footer, SleepTransistorKind::Header] {
        let ins = StInsertion { kind, sizing };
        let pts = ins.delay_over_time(&analysis, &times)?;
        print!("{kind:?}: ");
        for p in &pts {
            print!(
                "  t={:.0e}s +{:.2}%",
                p.time.0,
                p.increase_vs_nominal * 100.0
            );
        }
        println!();
    }

    // 3. Compare against the un-gated worst case at end of life.
    let ungated = analysis.run(&StandbyPolicy::AllInternalZero)?;
    println!(
        "un-gated worst case at end of life: +{:.2}%",
        ungated.degradation_fraction() * 100.0
    );

    // 4. BBSTI vs FGSTI area.
    let timing = TimingAnalysis::nominal(&circuit);
    let blocks = bbsti_blocks(&circuit, &timing, &sizing, 64);
    let bbsti_area: f64 = blocks.iter().map(|b| b.st_size).sum();
    let fgsti_area: f64 = fgsti_sizes(&circuit, &timing, &sizing).iter().sum();
    println!(
        "ST area (W/L units): BBSTI {:.0} across {} blocks vs FGSTI {:.0} per-gate",
        bbsti_area,
        blocks.len(),
        fgsti_area
    );
    Ok(())
}

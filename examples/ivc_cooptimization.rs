//! Input-vector control with leakage/NBTI co-optimization.
//!
//! Scenario: a block spends 5/6 of its life parked in standby. Which input
//! vector should the standby controller drive? The classic answer is the
//! minimum-leakage vector (MLV) — but near-minimum vectors can differ in
//! how much NBTI stress they park the PMOS devices under. This example runs
//! the paper's probability-based MLV-set search, evaluates every candidate
//! for aging, and picks the co-optimal one.
//!
//! Run with: `cargo run --release --example ivc_cooptimization`

#![allow(clippy::unwrap_used)]
use relia::core::{Kelvin, Ras};
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::ivc::{co_optimize, internal_node_potential, search_mlv_set, MlvSearchConfig};
use relia::netlist::iscas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = iscas::circuit("c880").ok_or("unknown benchmark")?;
    let config = FlowConfig::with_schedule(Ras::new(1.0, 5.0)?, Kelvin(330.0))?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;

    // 1. Baselines: the two idealized bounds.
    let worst = analysis.run(&StandbyPolicy::AllInternalZero)?;
    println!(
        "worst-case standby (all internal '0'): +{:.2}% delay",
        worst.degradation_fraction() * 100.0
    );

    // 2. The MLV-set search (Fig. 7 of the paper).
    let set = search_mlv_set(&analysis, &MlvSearchConfig::default())?;
    println!(
        "MLV search: {} candidates within 4% of the minimum leakage ({:.2} uA), {} rounds",
        set.vectors().len(),
        set.min_leakage() * 1e6,
        set.rounds_used()
    );

    // 3. Co-optimize: evaluate each candidate's aging, pick the best.
    let co = co_optimize(&analysis, &set)?;
    let best = co.best();
    println!(
        "co-optimal vector: leakage {:.2} uA, degradation +{:.2}% \
         (spread across set: {:.3}%)",
        best.leakage * 1e6,
        best.degradation * 100.0,
        co.degradation_spread() * 100.0
    );

    // 4. How much more could internal node control buy?
    let inc = internal_node_potential(&analysis)?;
    println!(
        "internal-node-control potential: {:.0}% of the worst-case degradation",
        inc.potential() * 100.0
    );
    println!();
    println!(
        "verdict: at a cool standby ({}) IVC barely moves aging — \
         the paper's conclusion — but internal node control could recover \
         a large share.",
        config.schedule.temp_standby()
    );
    Ok(())
}

//! Mission-profile signoff: will the guardband survive the mission?
//!
//! Scenario: a 10-year always-deployed controller with a 3% aging budget.
//! The flow checks the budget against the worst-case standby state, and if
//! it fails, walks the mitigation ladder the paper evaluates: IVC, then
//! budgeted internal node control, then power gating.
//!
//! Run with: `cargo run --release --example mission_profile`

#![allow(clippy::unwrap_used)]
use relia::core::Seconds;
use relia::flow::{lifetime_to_budget, AgingAnalysis, FlowConfig, LifetimeBudget, StandbyPolicy};
use relia::ivc::{greedy_control_points, search_mlv_set, MlvSearchConfig};
use relia::netlist::iscas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = iscas::circuit("c880").ok_or("unknown benchmark")?;
    let config = FlowConfig::paper_defaults()?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;
    let budget = 0.03;
    let mission = Seconds::from_years(10.0);
    println!(
        "mission: {:.0} years, aging budget {:.0}%",
        mission.to_years(),
        budget * 100.0
    );

    let verdict = |policy: &StandbyPolicy| -> Result<String, Box<dyn std::error::Error>> {
        Ok(
            match lifetime_to_budget(&analysis, policy, budget, mission)? {
                LifetimeBudget::SurvivesBeyond(_) => "SURVIVES the mission".to_owned(),
                LifetimeBudget::ExhaustedAt(t) => {
                    format!("budget exhausted after {:.1} years", t.to_years())
                }
            },
        )
    };

    // Rung 0: do nothing (worst-case standby).
    println!(
        "1. no mitigation (worst-case standby): {}",
        verdict(&StandbyPolicy::AllInternalZero)?
    );

    // Rung 1: IVC — park on the co-optimal MLV.
    let set = search_mlv_set(&analysis, &MlvSearchConfig::default())?;
    let mlv = set.vectors()[0].0.clone();
    println!(
        "2. IVC on the MLV:                     {}",
        verdict(&StandbyPolicy::InputVector(mlv.clone()))?
    );

    // Rung 2: IVC + 8 control points on the aged critical path.
    let steps = greedy_control_points(&analysis, &mlv, 8)?;
    let forced = steps
        .last()
        .ok_or("selector returned no steps")?
        .forced
        .clone();
    println!(
        "3. IVC + {} control points:             {}",
        forced.len(),
        verdict(&StandbyPolicy::ControlPoints {
            vector: mlv,
            forced,
        })?
    );

    // Rung 3: power gating.
    println!(
        "4. footer sleep transistor:            {}",
        verdict(&StandbyPolicy::PowerGatedFooter)?
    );
    Ok(())
}

//! Aging-aware statistical timing signoff.
//!
//! Scenario: sign off a design's clock period against both process
//! variation and lifetime NBTI. The naive flow signs off against the fresh
//! +3σ corner; the aged distribution's mean keeps drifting, so the honest
//! guardband comes from the end-of-life +3σ.
//!
//! Run with: `cargo run --release --example aging_aware_signoff`

#![allow(clippy::unwrap_used)]
use relia::core::Seconds;
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy, VariationConfig, VariationStudy};
use relia::netlist::iscas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = iscas::circuit("c880").ok_or("unknown benchmark")?;
    let config = FlowConfig::paper_defaults()?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;
    let var = VariationConfig {
        samples: 200,
        ..VariationConfig::paper_defaults()?
    };
    let times = [
        Seconds(0.0),
        Seconds::from_years(1.0),
        Seconds::from_years(3.0),
    ];

    let pts = VariationStudy::run(&analysis, &StandbyPolicy::AllInternalZero, &var, &times)?;
    println!(
        "{:>9} {:>11} {:>9} {:>11}",
        "years", "mean [ps]", "sigma", "+3s [ps]"
    );
    for p in &pts {
        println!(
            "{:>9.2} {:>11.2} {:>9.3} {:>11.2}",
            p.time.to_years(),
            p.delay.mean,
            p.delay.std_dev,
            p.delay.upper(3.0)
        );
    }

    let fresh = pts.first().ok_or("no points")?;
    let aged = pts.last().ok_or("no points")?;
    println!();
    println!(
        "fresh signoff corner: {:.1} ps; aged-aware corner: {:.1} ps",
        fresh.delay.upper(3.0),
        aged.delay.upper(3.0)
    );
    println!(
        "aging adds {:.2}% on top of the fresh +3-sigma corner \
         (and sigma shrinks from {:.2} to {:.2} ps: slow parts age slower)",
        (aged.delay.upper(3.0) / fresh.delay.upper(3.0) - 1.0) * 100.0,
        fresh.delay.std_dev,
        aged.delay.std_dev
    );
    Ok(())
}

//! Bring your own netlist: parse an ISCAS85-style `.bench` description,
//! analyze it, and write it back out.
//!
//! Run with: `cargo run --release --example custom_netlist`

#![allow(clippy::unwrap_used)]
use relia::cells::Library;
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::netlist::bench;
use relia::sta::TimingAnalysis;

const MAJORITY_VOTER: &str = "
# 3-input majority voter with an alarm output
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(maj)
OUTPUT(alarm)
ab    = AND(a, b)
bc    = AND(b, c)
ac    = AND(a, c)
maj   = OR(ab, bc, ac)
alarm = XOR(maj, a)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = bench::parse(MAJORITY_VOTER, Library::ptm90())?;
    println!(
        "parsed: {} inputs, {} outputs, {} gates, depth {}",
        circuit.primary_inputs().len(),
        circuit.primary_outputs().len(),
        circuit.gates().len(),
        circuit.depth()
    );

    let timing = TimingAnalysis::nominal(&circuit);
    println!("critical path: {:.1} ps through", timing.max_delay_ps());
    for g in timing.critical_path() {
        let gate = circuit.gate(*g);
        println!(
            "  {} ({})",
            gate.name(),
            circuit.library().cell(gate.cell()).name()
        );
    }

    let config = FlowConfig::paper_defaults()?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;
    // Park the voter on a-low, b-low, c-high during standby.
    let report = analysis.run(&StandbyPolicy::InputVector(vec![false, false, true]))?;
    println!(
        "aging on standby vector 001: +{:.2}% delay, standby leakage {:.1} nA",
        report.degradation_fraction() * 100.0,
        report.standby_leakage.unwrap_or(0.0) * 1e9
    );

    println!("\nround-tripped .bench:\n{}", bench::write(&circuit));
    Ok(())
}

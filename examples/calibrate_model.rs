//! Calibrate the NBTI model to your own silicon.
//!
//! Scenario: reliability engineering hands you accelerated-stress
//! measurements (threshold shift after DC stress at several times and
//! temperatures). Fit the model's `K_v` and diffusion activation energy to
//! them, then re-run the circuit-level analysis on the fitted model.
//!
//! Run with: `cargo run --release --example calibrate_model`

#![allow(clippy::unwrap_used)]
use relia::core::calib::{fit_dc_measurements, Measurement};
use relia::core::{Kelvin, NbtiModel, NbtiParams, Seconds};
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::netlist::iscas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Measured" data: a hotter process than the built-in calibration
    // (stronger temperature activation, slightly higher rate).
    let truth = NbtiModel::new(NbtiParams {
        kv_ref: 4.2e-4,
        e_d: relia::core::ElectronVolts(0.36),
        ..NbtiParams::ptm90()?
    })?;
    let mut measurements = Vec::new();
    for &t in &[1.0e3, 1.0e5, 1.0e7] {
        for &temp in &[325.0, 355.0, 385.0, 400.0] {
            measurements.push(Measurement {
                time: t,
                temp: Kelvin(temp),
                delta_vth: truth.delta_vth_dc(Seconds(t), Kelvin(temp))?,
            });
        }
    }
    println!(
        "{} stress measurements across 3 times x 4 temperatures",
        measurements.len()
    );

    let fit = fit_dc_measurements(&NbtiParams::ptm90()?, &measurements)?;
    println!(
        "fitted: K_v(400K) = {:.3e} V/s^0.25 (truth 4.2e-4), E_D = {:.3} eV (truth 0.360)",
        fit.params.kv_ref, fit.params.e_d.0
    );
    println!("rms relative residual: {:.2e}", fit.rms_residual);

    // Re-run the circuit analysis with the fitted calibration.
    let circuit = iscas::circuit("c432").ok_or("unknown benchmark")?;
    let mut config = FlowConfig::paper_defaults()?;
    config.nbti = NbtiModel::new(fit.params)?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;
    let report = analysis.run(&StandbyPolicy::AllInternalZero)?;
    println!(
        "c432 degradation on the fitted process: {:.2}% over {:.1} years",
        report.degradation_fraction() * 100.0,
        config.lifetime.to_years()
    );
    Ok(())
}

//! Quickstart: how much will this circuit slow down over its lifetime?
//!
//! Loads a benchmark netlist, runs the temperature-aware NBTI flow under
//! the paper's baseline schedule (active at 400 K one tenth of the time,
//! standby at 330 K the rest), and prints the aging guardband a designer
//! would budget.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::unwrap_used)]
use relia::core::Seconds;
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::netlist::iscas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = iscas::circuit("c432").ok_or("unknown benchmark")?;
    let config = FlowConfig::paper_defaults()?;
    let analysis = AgingAnalysis::new(&config, &circuit)?;

    println!(
        "circuit {}: {} gates, depth {}",
        circuit.name(),
        circuit.gates().len(),
        circuit.depth()
    );
    println!(
        "schedule: active {} @ {}, standby {} @ {}",
        config.schedule.t_active(),
        config.schedule.temp_active(),
        config.schedule.t_standby(),
        config.schedule.temp_standby()
    );

    // Worst case: the standby state parks every PMOS under stress.
    let report = analysis.run(&StandbyPolicy::AllInternalZero)?;
    println!();
    println!(
        "nominal critical path: {:.1} ps",
        report.nominal.max_delay_ps()
    );
    println!(
        "after {:.1} years:     {:.1} ps  (+{:.2}%)",
        Seconds(config.lifetime.0).to_years(),
        report.degraded.max_delay_ps(),
        report.degradation_fraction() * 100.0
    );
    println!(
        "worst gate dVth:      {:.1} mV",
        report.worst_delta_vth() * 1e3
    );
    println!(
        "active-mode leakage:  {:.2} uA",
        report.active_leakage * 1e6
    );
    println!();
    println!(
        "recommended aging guardband: {:.1}% of the clock period",
        report.degradation_fraction() * 100.0
    );
    Ok(())
}

//! Aging from a measured thermal profile.
//!
//! Scenario: you have a real temperature trace of your die (here synthesized
//! by the RC thermal model running a task set) instead of two tidy
//! steady-state temperatures. The generalized equivalent-stress transform
//! consumes the trace directly.
//!
//! Run with: `cargo run --release --example thermal_trace_aging`

#![allow(clippy::unwrap_used)]
use relia::core::{Kelvin, NbtiModel, Seconds, StressInterval};
use relia::thermal::{RcThermalModel, TaskSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let thermal = RcThermalModel::air_cooled();
    let tasks = TaskSet::random(10, 77);
    let trace = thermal.simulate(tasks.profile(), 2.0e-3);
    println!(
        "thermal trace: {} samples over {:.2} s, {:.1}-{:.1} C",
        trace.len(),
        tasks.total_duration(),
        trace
            .iter()
            .map(|p| p.temp.to_celsius())
            .fold(f64::MAX, f64::min),
        trace
            .iter()
            .map(|p| p.temp.to_celsius())
            .fold(f64::MIN, f64::max),
    );

    // Convert the trace to stress intervals: assume a 0.5 stress duty while
    // tasks run (the paper's active-mode signal probability).
    let intervals: Vec<StressInterval> = trace
        .iter()
        .map(|pt| StressInterval {
            duration: Seconds(2.0e-3),
            temp: pt.temp,
            stress_fraction: 0.5,
        })
        .collect();

    let model = NbtiModel::ptm90()?;
    println!("\nPMOS threshold shift if this workload loops for the lifetime:");
    for years in [1.0, 3.0, 10.0] {
        let dv = model.delta_vth_trace(Seconds::from_years(years), &intervals, Kelvin(400.0))?;
        println!("  {years:>4.0} yr: {:.1} mV", dv * 1e3);
    }

    // Compare against the naive worst-case-temperature bound.
    let worst = model.delta_vth_dc(Seconds::from_years(10.0), Kelvin(400.0))?;
    let traced = model.delta_vth_trace(Seconds::from_years(10.0), &intervals, Kelvin(400.0))?;
    println!(
        "\nworst-case 400 K DC bound at 10 yr: {:.1} mV -> trace-aware saves {:.0}% guardband",
        worst * 1e3,
        (1.0 - traced / worst) * 100.0
    );
    Ok(())
}

//! The in-memory surface reader: loads a sealed artifact, enforces the
//! documented error bound and the model fingerprint at load time, and
//! answers lookups by multilinear interpolation in microseconds.

use std::path::Path;

use relia_core::{Kelvin, NbtiModel};
use relia_jobs::{SWEEP_PERIOD_S, SWEEP_TEMP_ACTIVE_K};

use crate::artifact::{Artifact, SurfaceError};
use crate::grid::interpolate;

/// The relative-error bound the surface tier documents and the server
/// enforces: an artifact whose *measured* sup-error exceeds this is
/// refused at load time.
pub const DOCUMENTED_ERROR_BOUND: f64 = 1e-2;

/// Absolute floor (volts) under which relative error is measured against
/// the floor instead of the value — ΔV_th near zero would otherwise turn
/// nanovolt noise into unbounded relative error.
pub const ERROR_FLOOR_V: f64 = 1e-6;

/// The relative interpolation error of `approx` against `exact`, floored
/// at [`ERROR_FLOOR_V`].
pub fn rel_error(approx: f64, exact: f64) -> f64 {
    (approx - exact).abs() / exact.abs().max(ERROR_FLOOR_V)
}

/// Probability quantum shared with `relia-core::StressKey` (1e-9): two
/// stress probabilities are "the same pair" exactly when the stress-key
/// lattice cannot tell them apart.
const PROB_SCALE: f64 = 1e9;

fn quantize_prob(p: f64) -> u32 {
    (p * PROB_SCALE).round() as u32
}

/// One surface coordinate: the degrade query's operating point, with RAS
/// reduced to its active fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceQuery {
    /// Active temperature.
    pub t_active_k: Kelvin,
    /// Standby temperature.
    pub t_standby_k: Kelvin,
    /// RAS active fraction `a/(a+s)` in `[0, 1]`.
    pub ras_fraction: f64,
    /// Lifetime in seconds.
    pub lifetime_s: f64,
    /// Active-mode stress probability.
    pub p_active: f64,
    /// Standby-mode stress probability.
    pub p_standby: f64,
}

/// A successful interpolated lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lookup {
    /// Interpolated ΔV_th in volts.
    pub delta_vth_v: f64,
    /// True if any axis was out of domain and clamped to an edge — the
    /// value is then an edge extrapolation, and callers wanting the
    /// documented error bound should fall back to exact evaluation.
    pub clamped: bool,
}

/// The loaded, bound-checked surface.
#[derive(Debug, Clone)]
pub struct Surface {
    artifact: Artifact,
    pairs_q: Vec<(u32, u32)>,
}

impl Surface {
    /// Wraps an artifact after enforcing the serving contract: block
    /// shapes consistent, measured sup-error within
    /// [`DOCUMENTED_ERROR_BOUND`].
    ///
    /// # Errors
    ///
    /// [`SurfaceError::ErrorBoundExceeded`] or [`SurfaceError::Invalid`].
    pub fn from_artifact(artifact: Artifact) -> Result<Surface, SurfaceError> {
        if artifact.sup_error > DOCUMENTED_ERROR_BOUND {
            return Err(SurfaceError::ErrorBoundExceeded {
                measured: artifact.sup_error,
                bound: DOCUMENTED_ERROR_BOUND,
            });
        }
        if artifact.values.len() != artifact.pairs.len() {
            return Err(SurfaceError::Invalid(format!(
                "{} value blocks for {} pairs",
                artifact.values.len(),
                artifact.pairs.len()
            )));
        }
        for block in &artifact.values {
            if block.len() != artifact.grid.len() {
                return Err(SurfaceError::Invalid(format!(
                    "value block of {} entries for a grid of {}",
                    block.len(),
                    artifact.grid.len()
                )));
            }
        }
        let pairs_q = artifact
            .pairs
            .iter()
            .map(|&(pa, ps)| (quantize_prob(pa), quantize_prob(ps)))
            .collect();
        Ok(Surface { artifact, pairs_q })
    }

    /// Reads, decodes, and bound-checks an artifact from disk.
    ///
    /// # Errors
    ///
    /// Any [`Artifact::read`] or [`Surface::from_artifact`] failure.
    pub fn load(path: &Path) -> Result<Surface, SurfaceError> {
        Surface::from_artifact(Artifact::read(path)?)
    }

    /// The decoded artifact (header fields included).
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// The builder-measured sup-error from the header.
    pub fn sup_error(&self) -> f64 {
        self.artifact.sup_error
    }

    /// Checks that `model` is the calibration this artifact was built
    /// against, by recomputing the anchor fingerprint.
    ///
    /// # Errors
    ///
    /// [`SurfaceError::ModelMismatch`] on a different calibration, or
    /// [`SurfaceError::Build`] if the anchor evaluations fail.
    pub fn verify_model(&self, model: &NbtiModel) -> Result<(), SurfaceError> {
        let found = model_fingerprint(model)?;
        if found != self.artifact.model_fingerprint {
            return Err(SurfaceError::ModelMismatch {
                expected: self.artifact.model_fingerprint,
                found,
            });
        }
        Ok(())
    }

    /// Interpolated ΔV_th at `query`. `None` when the surface cannot
    /// answer at all: a non-finite coordinate, or a `(p_active,
    /// p_standby)` pair the artifact carries no block for (pairs match on
    /// the stress-key 1e-9 lattice). Out-of-domain axis values *do*
    /// produce a value, clamped to the grid edge and flagged.
    pub fn lookup(&self, query: &SurfaceQuery) -> Option<Lookup> {
        let coords = [
            query.t_active_k.0,
            query.t_standby_k.0,
            query.ras_fraction,
            query.lifetime_s,
            query.p_active,
            query.p_standby,
        ];
        if coords.iter().any(|c| !c.is_finite()) {
            return None;
        }
        let want = (
            quantize_prob(query.p_active),
            quantize_prob(query.p_standby),
        );
        let block = self.pairs_q.iter().position(|&q| q == want)?;
        let (delta_vth_v, clamped) = interpolate(
            &self.artifact.grid,
            &self.artifact.values[block],
            query.t_active_k.0,
            query.t_standby_k.0,
            query.ras_fraction,
            query.lifetime_s,
        );
        Some(Lookup {
            delta_vth_v,
            clamped,
        })
    }
}

/// Anchor operating points for the model fingerprint: a spread of
/// `(T_standby, ras_fraction, lifetime, p_active, p_standby)` at the
/// engine's fixed period and active temperature.
const ANCHORS: [(f64, f64, f64, f64, f64); 4] = [
    (330.0, 0.1, 1e8, 0.5, 1.0),
    (360.0, 0.5, 3e7, 1.0, 0.0),
    (400.0, 0.9, 1e9, 0.25, 0.75),
    (310.0, 0.05, 1e6, 0.0, 1.0),
];

/// FNV-1a fingerprint of the model: the bit patterns of its ΔV_th at the
/// fixed anchor points plus its nominal overdrive. Any calibration change
/// that alters served values changes the fingerprint; artifact and server
/// agree on the model or the artifact is refused.
///
/// # Errors
///
/// [`SurfaceError::Build`] if an anchor evaluation fails (it cannot for a
/// validated model).
pub fn model_fingerprint(model: &NbtiModel) -> Result<u64, SurfaceError> {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: f64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for &(ts, rf, t, pa, ps) in &ANCHORS {
        let base = crate::builder::evaluate_exact(
            model,
            SWEEP_PERIOD_S,
            &SurfaceQuery {
                t_active_k: Kelvin(SWEEP_TEMP_ACTIVE_K),
                t_standby_k: Kelvin(ts),
                ras_fraction: rf,
                lifetime_s: t,
                p_active: pa,
                p_standby: ps,
            },
        )?;
        mix(base);
    }
    mix(model.params().overdrive());
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildSpec};
    use relia_core::NbtiParams;
    use relia_jobs::SWEEP_PERIOD_S;

    fn small_artifact() -> Artifact {
        let model = NbtiModel::ptm90().unwrap();
        let spec = BuildSpec {
            t_active_k: vec![Kelvin(SWEEP_TEMP_ACTIVE_K)],
            t_standby_k: crate::builder::kelvin_spaced(320.0, 400.0, 9),
            ras_fraction: crate::builder::lin_spaced(0.1, 0.9, 9),
            lifetime_s: crate::builder::log_spaced(1e6, 1e9, 13),
            pairs: vec![(0.5, 1.0), (0.3, 1.0)],
            period_s: SWEEP_PERIOD_S,
            workers: 2,
        };
        build(&model, &spec).unwrap()
    }

    #[test]
    fn lookup_at_a_grid_node_is_bit_exact() {
        let artifact = small_artifact();
        let node = artifact.values[0][artifact.grid.index(0, 1, 2, 3)];
        let surface = Surface::from_artifact(artifact).unwrap();
        let g = &surface.artifact().grid;
        let q = SurfaceQuery {
            t_active_k: Kelvin(g.t_active_k()[0]),
            t_standby_k: Kelvin(g.t_standby_k()[1]),
            ras_fraction: g.ras_fraction()[2],
            lifetime_s: g.lifetime_s()[3],
            p_active: 0.5,
            p_standby: 1.0,
        };
        let hit = surface.lookup(&q).unwrap();
        assert!(!hit.clamped);
        assert_eq!(hit.delta_vth_v.to_bits(), node.to_bits());
    }

    #[test]
    fn unknown_pair_and_non_finite_queries_miss() {
        let surface = Surface::from_artifact(small_artifact()).unwrap();
        let mut q = SurfaceQuery {
            t_active_k: Kelvin(400.0),
            t_standby_k: Kelvin(330.0),
            ras_fraction: 0.5,
            lifetime_s: 1e8,
            p_active: 0.5,
            p_standby: 1.0,
        };
        assert!(surface.lookup(&q).is_some());
        q.p_active = 0.7;
        assert!(surface.lookup(&q).is_none(), "pair not in the artifact");
        q.p_active = f64::NAN;
        assert!(surface.lookup(&q).is_none());
        // The second pair block answers too.
        q.p_active = 0.3;
        assert!(surface.lookup(&q).is_some());
    }

    #[test]
    fn out_of_domain_lookups_are_flagged_clamped() {
        let surface = Surface::from_artifact(small_artifact()).unwrap();
        let q = SurfaceQuery {
            t_active_k: Kelvin(400.0),
            t_standby_k: Kelvin(250.0),
            ras_fraction: 0.5,
            lifetime_s: 1e8,
            p_active: 0.5,
            p_standby: 1.0,
        };
        assert!(surface.lookup(&q).unwrap().clamped);
    }

    #[test]
    fn load_refuses_artifacts_over_the_error_bound() {
        let mut artifact = small_artifact();
        artifact.sup_error = DOCUMENTED_ERROR_BOUND * 3.0;
        match Surface::from_artifact(artifact) {
            Err(SurfaceError::ErrorBoundExceeded { measured, bound }) => {
                assert!(measured > bound);
            }
            other => panic!("expected ErrorBoundExceeded, got {other:?}"),
        }
    }

    #[test]
    fn model_fingerprint_detects_a_recalibrated_model() {
        let ptm90 = NbtiModel::ptm90().unwrap();
        let surface = Surface::from_artifact(small_artifact()).unwrap();
        surface.verify_model(&ptm90).unwrap();

        let mut params = NbtiParams::ptm90().unwrap();
        params.kv_ref *= 1.01;
        let other = NbtiModel::new(params).unwrap();
        assert!(matches!(
            surface.verify_model(&other),
            Err(SurfaceError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn rel_error_floors_near_zero_values() {
        assert!((rel_error(1.1e-2, 1e-2) - 1e-1).abs() < 1e-9);
        // Near zero the floor takes over: 1e-9 absolute over a 1e-6 floor.
        assert!((rel_error(1e-9, 0.0) - 1e-3).abs() < 1e-9);
    }
}

//! The 4-D response-surface grid: axis storage, validation, flat
//! indexing, and multilinear interpolation with explicit clamp reporting.
//!
//! Axes follow the paper's two-mode operating space: active temperature,
//! standby temperature, the RAS active fraction `a/(a+s)`, and lifetime.
//! The lifetime axis is stored in seconds but interpolated in `log10`
//! coordinates — ΔV_th grows like a power of time, so equal-ratio spacing
//! gives near-uniform interpolation error across decades where linear
//! spacing would waste points on the tail.

use crate::artifact::SurfaceError;

/// The four grid axes, each finite and strictly increasing. Value blocks
/// are flat `f64` arrays in row-major order with lifetime fastest (see
/// [`SurfaceGrid::index`]).
///
/// Axes are stored as the raw `f64` blocks of the sealed artifact codec;
/// the `Kelvin`-typed boundary is `SurfaceQuery`/`BuildSpec` one level up.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceGrid {
    t_active_k: Vec<f64>,  // relia-lint: allow(unit-leak)
    t_standby_k: Vec<f64>, // relia-lint: allow(unit-leak)
    ras_fraction: Vec<f64>,
    lifetime_s: Vec<f64>,
}

fn check_axis(name: &str, axis: &[f64], min: f64, max: f64) -> Result<(), SurfaceError> {
    if axis.is_empty() {
        return Err(SurfaceError::Invalid(format!("axis {name} is empty")));
    }
    for &v in axis {
        if !v.is_finite() || v < min || v > max {
            return Err(SurfaceError::Invalid(format!(
                "axis {name} value {v} outside [{min}, {max}]"
            )));
        }
    }
    if !axis.windows(2).all(|w| w[0] < w[1]) {
        return Err(SurfaceError::Invalid(format!(
            "axis {name} is not strictly increasing"
        )));
    }
    Ok(())
}

impl SurfaceGrid {
    /// Builds a validated grid.
    ///
    /// # Errors
    ///
    /// [`SurfaceError::Invalid`] if any axis is empty, non-finite, out of
    /// its physical range, or not strictly increasing.
    pub fn new(
        t_active_k: Vec<f64>,  // relia-lint: allow(unit-leak)
        t_standby_k: Vec<f64>, // relia-lint: allow(unit-leak)
        ras_fraction: Vec<f64>,
        lifetime_s: Vec<f64>,
    ) -> Result<Self, SurfaceError> {
        check_axis("t_active_k", &t_active_k, 1.0, 2000.0)?;
        check_axis("t_standby_k", &t_standby_k, 1.0, 2000.0)?;
        check_axis("ras_fraction", &ras_fraction, 0.0, 1.0)?;
        check_axis("lifetime_s", &lifetime_s, 1e-3, 1e12)?;
        Ok(SurfaceGrid {
            t_active_k,
            t_standby_k,
            ras_fraction,
            lifetime_s,
        })
    }

    /// Active-temperature axis (kelvin).
    pub fn t_active_k(&self) -> &[f64] {
        &self.t_active_k
    }

    /// Standby-temperature axis (kelvin).
    pub fn t_standby_k(&self) -> &[f64] {
        &self.t_standby_k
    }

    /// RAS active-fraction axis, `a/(a+s)` in `[0, 1]`.
    pub fn ras_fraction(&self) -> &[f64] {
        &self.ras_fraction
    }

    /// Lifetime axis (seconds, interpolated in `log10`).
    pub fn lifetime_s(&self) -> &[f64] {
        &self.lifetime_s
    }

    /// Number of grid points (the length of one value block).
    pub fn len(&self) -> usize {
        self.t_active_k.len()
            * self.t_standby_k.len()
            * self.ras_fraction.len()
            * self.lifetime_s.len()
    }

    /// True for a degenerate grid (cannot happen post-validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of grid point `(i_ta, i_ts, i_rf, i_lt)` — row-major,
    /// lifetime fastest.
    pub fn index(&self, i_ta: usize, i_ts: usize, i_rf: usize, i_lt: usize) -> usize {
        ((i_ta * self.t_standby_k.len() + i_ts) * self.ras_fraction.len() + i_rf)
            * self.lifetime_s.len()
            + i_lt
    }
}

/// One bracketed axis coordinate: the lower corner index, the fractional
/// position inside the cell, and whether the query fell outside the axis
/// and was clamped to an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Index of the cell's lower corner (always a valid axis index).
    pub lo: usize,
    /// Fraction in `[0, 1]` toward the upper corner.
    pub frac: f64,
    /// True if the query point was outside the axis domain.
    pub clamped: bool,
}

/// Brackets `x` on `axis`; `log` interpolates the fraction in `log10`
/// coordinates (the lifetime axis). Out-of-domain points clamp to the
/// nearest edge and report it.
pub fn bracket(axis: &[f64], x: f64, log: bool) -> Bracket {
    let last = axis.len() - 1;
    if x <= axis[0] {
        return Bracket {
            lo: 0,
            frac: 0.0,
            clamped: x < axis[0],
        };
    }
    if x >= axis[last] {
        return Bracket {
            lo: last.saturating_sub(1),
            frac: if last == 0 { 0.0 } else { 1.0 },
            clamped: x > axis[last],
        };
    }
    // Strictly inside: axis[0] < x < axis[last], so len >= 2 and the
    // partition point is in 1..=last.
    let hi = axis.partition_point(|&v| v <= x).min(last);
    let lo = hi - 1;
    let frac = if log {
        (x.log10() - axis[lo].log10()) / (axis[hi].log10() - axis[lo].log10())
    } else {
        (x - axis[lo]) / (axis[hi] - axis[lo])
    };
    Bracket {
        lo,
        frac: frac.clamp(0.0, 1.0),
        clamped: false,
    }
}

/// Multilinear interpolation of one value block at
/// `(t_active_k, t_standby_k, ras_fraction, lifetime_s)`: a weighted sum
/// over the 2⁴ cell corners, with the lifetime axis blended in `log10`
/// coordinates. Returns the value and whether **any** axis clamped.
///
/// `values` must have length [`SurfaceGrid::len`] (the builder and the
/// artifact reader both guarantee it).
pub fn interpolate(
    grid: &SurfaceGrid,
    values: &[f64],
    t_active_k: f64,  // relia-lint: allow(unit-leak)
    t_standby_k: f64, // relia-lint: allow(unit-leak)
    ras_fraction: f64,
    lifetime_s: f64,
) -> (f64, bool) {
    let ba = bracket(&grid.t_active_k, t_active_k, false);
    let bs = bracket(&grid.t_standby_k, t_standby_k, false);
    let br = bracket(&grid.ras_fraction, ras_fraction, false);
    let bt = bracket(&grid.lifetime_s, lifetime_s, true);
    let clamped = ba.clamped || bs.clamped || br.clamped || bt.clamped;

    // `hi` stays in range on single-point axes; its weight is then zero.
    let step = |b: Bracket, len: usize, bit: usize| -> (usize, f64) {
        if bit == 0 {
            (b.lo, 1.0 - b.frac)
        } else {
            ((b.lo + 1).min(len - 1), b.frac)
        }
    };
    let mut acc = 0.0;
    for corner in 0..16usize {
        let (ia, wa) = step(ba, grid.t_active_k.len(), corner & 1);
        let (is, ws) = step(bs, grid.t_standby_k.len(), (corner >> 1) & 1);
        let (ir, wr) = step(br, grid.ras_fraction.len(), (corner >> 2) & 1);
        let (it, wt) = step(bt, grid.lifetime_s.len(), (corner >> 3) & 1);
        let w = wa * ws * wr * wt;
        if w > 0.0 {
            acc += w * values[grid.index(ia, is, ir, it)];
        }
    }
    (acc, clamped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SurfaceGrid {
        SurfaceGrid::new(
            vec![400.0],
            vec![320.0, 340.0, 360.0],
            vec![0.1, 0.5, 0.9],
            vec![1e6, 1e7, 1e8],
        )
        .unwrap()
    }

    #[test]
    fn rejects_malformed_axes() {
        for (ts, rf) in [
            (vec![], vec![0.5]),
            (vec![340.0, 320.0], vec![0.5]),
            (vec![330.0, 330.0], vec![0.5]),
            (vec![330.0], vec![1.5]),
            (vec![f64::NAN], vec![0.5]),
        ] {
            assert!(
                SurfaceGrid::new(vec![400.0], ts.clone(), rf.clone(), vec![1e6]).is_err(),
                "{ts:?} {rf:?}"
            );
        }
    }

    #[test]
    fn index_is_row_major_lifetime_fastest() {
        let g = grid();
        assert_eq!(g.len(), 27);
        assert_eq!(g.index(0, 0, 0, 0), 0);
        assert_eq!(g.index(0, 0, 0, 2), 2);
        assert_eq!(g.index(0, 0, 1, 0), 3);
        assert_eq!(g.index(0, 1, 0, 0), 9);
        assert_eq!(g.index(0, 2, 2, 2), 26);
    }

    #[test]
    fn interpolation_is_exact_at_grid_nodes() {
        let g = grid();
        let values: Vec<f64> = (0..g.len()).map(|i| i as f64 * 0.25 + 1.0).collect();
        for (is, &ts) in g.t_standby_k().iter().enumerate() {
            for (ir, &rf) in g.ras_fraction().iter().enumerate() {
                for (it, &t) in g.lifetime_s().iter().enumerate() {
                    let (v, clamped) = interpolate(&g, &values, 400.0, ts, rf, t);
                    assert!(!clamped);
                    let want = values[g.index(0, is, ir, it)];
                    assert!((v - want).abs() < 1e-12, "{v} vs {want}");
                }
            }
        }
    }

    #[test]
    fn interpolation_is_linear_between_nodes() {
        let g = grid();
        // Values linear in the standby axis: interpolation reproduces them.
        let mut values = vec![0.0; g.len()];
        for is in 0..3 {
            for ir in 0..3 {
                for it in 0..3 {
                    values[g.index(0, is, ir, it)] = g.t_standby_k()[is];
                }
            }
        }
        let (v, clamped) = interpolate(&g, &values, 400.0, 333.0, 0.5, 1e7);
        assert!(!clamped);
        assert!((v - 333.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn out_of_domain_clamps_to_edges_and_reports_it() {
        let g = grid();
        let values: Vec<f64> = (0..g.len()).map(|i| i as f64).collect();
        let (lo, clamped) = interpolate(&g, &values, 400.0, 200.0, 0.5, 1e7);
        assert!(clamped);
        let (edge, edge_clamped) = interpolate(&g, &values, 400.0, 320.0, 0.5, 1e7);
        assert!(!edge_clamped);
        assert!((lo - edge).abs() < 1e-12);

        // Off-axis active temperature on a single-point axis clamps too.
        let (_, clamped) = interpolate(&g, &values, 390.0, 330.0, 0.5, 1e7);
        assert!(clamped);
        let (_, clamped) = interpolate(&g, &values, 400.0, 330.0, 0.5, 1e9);
        assert!(clamped);
    }

    #[test]
    fn lifetime_blends_in_log_coordinates() {
        let g = grid();
        // Values linear in log10(t): the geometric midpoint interpolates
        // to the arithmetic mean of the node values.
        let mut values = vec![0.0; g.len()];
        for is in 0..3 {
            for ir in 0..3 {
                for it in 0..3 {
                    values[g.index(0, is, ir, it)] = g.lifetime_s()[it].log10();
                }
            }
        }
        let mid = (1e6f64 * 1e7f64).sqrt();
        let (v, clamped) = interpolate(&g, &values, 400.0, 340.0, 0.5, mid);
        assert!(!clamped);
        assert!((v - 6.5).abs() < 1e-9, "{v}");
    }
}

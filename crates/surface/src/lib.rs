//! relia-surface: a precomputed degradation response surface.
//!
//! The paper's two-mode equivalent-stress formulation makes ΔV_th a smooth
//! low-dimensional function of `(T_active, T_standby, RAS, t)` per stress
//! vector — ideal for a precomputed grid with multilinear interpolation as
//! a serving hot tier. This crate provides:
//!
//! - an **offline builder** ([`build`]) that fills a dense grid on the
//!   relia-jobs pool through `relia-core::batch` hoisting, then sweeps
//!   every cell midpoint to *measure* the interpolation sup-error;
//! - a **versioned, CRC-32-sealed binary artifact** ([`Artifact`]) with
//!   magic, header (axes, model fingerprint, build params, measured
//!   sup-error), and torn-file rejection like fleet checkpoints;
//! - an **in-memory reader** ([`Surface`]) that refuses artifacts whose
//!   measured error exceeds [`DOCUMENTED_ERROR_BOUND`] or whose model
//!   fingerprint does not match the serving calibration, and answers
//!   lookups by multilinear interpolation (lifetime in `log10`) with
//!   out-of-domain clamping reported explicitly.
//!
//! The accuracy contract: for any query inside the grid domain with a
//! known stress pair, the interpolated ΔV_th is within the artifact's
//! measured sup-error — itself at most [`DOCUMENTED_ERROR_BOUND`] — of
//! exact evaluation, relative, floored at [`ERROR_FLOOR_V`]. Clamped
//! (out-of-domain) lookups carry no bound; relia-serve falls back to
//! exact evaluation for them.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod artifact;
pub mod builder;
pub mod grid;
pub mod surface;

pub use artifact::{Artifact, SurfaceError, FORMAT_VERSION, MAGIC};
pub use builder::{build, evaluate_exact, kelvin_spaced, lin_spaced, log_spaced, BuildSpec};
pub use grid::{interpolate, SurfaceGrid};
pub use surface::{
    model_fingerprint, rel_error, Lookup, Surface, SurfaceQuery, DOCUMENTED_ERROR_BOUND,
    ERROR_FLOOR_V,
};

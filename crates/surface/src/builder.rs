//! The offline surface builder: evaluates the full grid on the relia-jobs
//! pool through `relia-core::batch` hoisting, then sweeps every cell
//! midpoint to *measure* the interpolation sup-error that gets sealed into
//! the artifact header — the accuracy contract ships with the data.

use relia_core::{Kelvin, ModeSchedule, NbtiModel, PmosStress, Ras, Seconds};
use relia_jobs::{default_workers, run_ordered, JobOutcome, SWEEP_PERIOD_S, SWEEP_TEMP_ACTIVE_K};

use crate::artifact::{Artifact, SurfaceError};
use crate::grid::{interpolate, SurfaceGrid};
use crate::surface::{model_fingerprint, rel_error, SurfaceQuery};

/// What to build: the four axes, the stress-probability pairs, the
/// mode-cycle period, and the worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSpec {
    /// Active-temperature axis. Usually the single engine baseline point.
    pub t_active_k: Vec<Kelvin>,
    /// Standby-temperature axis.
    pub t_standby_k: Vec<Kelvin>,
    /// RAS active-fraction axis, `a/(a+s)` in `[0, 1]`.
    pub ras_fraction: Vec<f64>,
    /// Lifetime axis (seconds, ascending; log-spaced is the idiom).
    pub lifetime_s: Vec<f64>,
    /// `(p_active, p_standby)` pairs, one value block each.
    pub pairs: Vec<(f64, f64)>,
    /// Mode-cycle period in seconds.
    pub period_s: f64,
    /// Worker threads for the grid fill and the error sweep
    /// (`0` → [`default_workers`]).
    pub workers: usize,
}

/// `n` linearly spaced points over `[lo, hi]` (`n == 1` → `[lo]`).
pub fn lin_spaced(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// [`lin_spaced`], wrapped in [`Kelvin`] — the temperature-axis idiom.
pub fn kelvin_spaced(lo: f64, hi: f64, n: usize) -> Vec<Kelvin> {
    lin_spaced(lo, hi, n).into_iter().map(Kelvin).collect()
}

/// `n` log-spaced points over `[lo, hi]` (`n == 1` → `[lo]`); endpoints
/// are pinned exactly so the domain edges are representable.
pub fn log_spaced(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![lo];
    }
    let (llo, lhi) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| {
            if i == 0 {
                lo
            } else if i == n - 1 {
                hi
            } else {
                10f64.powf(llo + (lhi - llo) * i as f64 / (n - 1) as f64)
            }
        })
        .collect()
}

impl BuildSpec {
    /// The default production grid: the engine's fixed active temperature,
    /// standby temperatures spanning the paper's 310–410 K operating
    /// range, RAS fractions across `[0.05, 0.95]`, lifetimes log-spaced
    /// over 10⁶–10¹⁰ s, and the paper's baseline stress pair.
    pub fn paper_defaults() -> BuildSpec {
        BuildSpec {
            t_active_k: vec![Kelvin(SWEEP_TEMP_ACTIVE_K)],
            t_standby_k: kelvin_spaced(310.0, 410.0, 21),
            ras_fraction: lin_spaced(0.05, 0.95, 37),
            lifetime_s: log_spaced(1e6, 1e10, 41),
            pairs: vec![(0.5, 1.0)],
            period_s: SWEEP_PERIOD_S,
            workers: 0,
        }
    }

    fn validate(&self) -> Result<(), SurfaceError> {
        if self.pairs.is_empty() {
            return Err(SurfaceError::Invalid("no stress pairs".to_owned()));
        }
        for &(pa, ps) in &self.pairs {
            for (name, p) in [("p_active", pa), ("p_standby", ps)] {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(SurfaceError::Invalid(format!("{name} {p} outside [0, 1]")));
                }
            }
        }
        if !self.period_s.is_finite() || self.period_s <= 0.0 {
            return Err(SurfaceError::Invalid(format!(
                "period_s {} must be positive",
                self.period_s
            )));
        }
        Ok(())
    }
}

/// One exact model evaluation at a surface coordinate: the same
/// `Ras → ModeSchedule → PmosStress → hoist` path the sweep engine
/// canonicalizes, with the hoisted base being a plain `delta_vth` value.
///
/// # Errors
///
/// [`SurfaceError::Build`] wrapping the model's validation message.
pub fn evaluate_exact(
    model: &NbtiModel,
    period_s: f64,
    query: &SurfaceQuery,
) -> Result<f64, SurfaceError> {
    let build = |e: relia_core::ModelError| SurfaceError::Build(e.to_string());
    let ras = Ras::new(query.ras_fraction, 1.0 - query.ras_fraction).map_err(build)?;
    let schedule = ModeSchedule::new(ras, Seconds(period_s), query.t_active_k, query.t_standby_k)
        .map_err(build)?;
    let stress = PmosStress::new(query.p_active, query.p_standby).map_err(build)?;
    Ok(model
        .hoist(Seconds(query.lifetime_s), &schedule, &stress)
        .map_err(build)?
        .base())
}

/// One grid column: every lifetime at a fixed `(pair, T_a, T_s, ras)`.
struct Column {
    pair: usize,
    i_ta: usize,
    i_ts: usize,
    i_rf: usize,
}

/// Cell midpoints along one axis (`log` → geometric midpoints); a
/// single-point axis contributes its one point.
fn midpoints(axis: &[f64], log: bool) -> Vec<f64> {
    if axis.len() == 1 {
        return vec![axis[0]];
    }
    axis.windows(2)
        .map(|w| {
            if log {
                10f64.powf((w[0].log10() + w[1].log10()) / 2.0)
            } else {
                (w[0] + w[1]) / 2.0
            }
        })
        .collect()
}

fn unwrap_outcome<T>(outcome: JobOutcome<Result<T, SurfaceError>>) -> Result<T, SurfaceError> {
    match outcome {
        JobOutcome::Completed(inner) => inner,
        other => Err(SurfaceError::Build(
            other
                .failure_reason()
                .unwrap_or("grid job failed")
                .to_owned(),
        )),
    }
}

/// Builds the full artifact: parallel grid fill, then the midpoint
/// error sweep whose measured sup-error is embedded in the header.
///
/// # Errors
///
/// [`SurfaceError::Invalid`] for a bad spec, [`SurfaceError::Build`] if
/// any model evaluation or pool job fails.
pub fn build(model: &NbtiModel, spec: &BuildSpec) -> Result<Artifact, SurfaceError> {
    spec.validate()?;
    let grid = SurfaceGrid::new(
        spec.t_active_k.iter().map(|k| k.0).collect(),
        spec.t_standby_k.iter().map(|k| k.0).collect(),
        spec.ras_fraction.clone(),
        spec.lifetime_s.clone(),
    )?;
    let workers = if spec.workers == 0 {
        default_workers()
    } else {
        spec.workers
    };

    // Phase 1: fill the grid, one job per (pair, T_a, T_s, ras) column.
    let mut columns = Vec::new();
    for pair in 0..spec.pairs.len() {
        for i_ta in 0..grid.t_active_k().len() {
            for i_ts in 0..grid.t_standby_k().len() {
                for i_rf in 0..grid.ras_fraction().len() {
                    columns.push(Column {
                        pair,
                        i_ta,
                        i_ts,
                        i_rf,
                    });
                }
            }
        }
    }
    let outcomes = run_ordered(&columns, workers, |_, col| {
        let (pa, ps) = spec.pairs[col.pair];
        grid.lifetime_s()
            .iter()
            .map(|&t| {
                evaluate_exact(
                    model,
                    spec.period_s,
                    &SurfaceQuery {
                        t_active_k: Kelvin(grid.t_active_k()[col.i_ta]),
                        t_standby_k: Kelvin(grid.t_standby_k()[col.i_ts]),
                        ras_fraction: grid.ras_fraction()[col.i_rf],
                        lifetime_s: t,
                        p_active: pa,
                        p_standby: ps,
                    },
                )
            })
            .collect::<Result<Vec<f64>, SurfaceError>>()
    });
    let mut values = vec![vec![0.0; grid.len()]; spec.pairs.len()];
    for (col, outcome) in columns.iter().zip(outcomes) {
        let row = unwrap_outcome(outcome)?;
        for (i_lt, v) in row.into_iter().enumerate() {
            values[col.pair][grid.index(col.i_ta, col.i_ts, col.i_rf, i_lt)] = v;
        }
    }

    // Phase 2: measure the sup of the relative interpolation error at
    // every cell midpoint — where multilinear interpolation of a smooth
    // function peaks — so the header carries evidence, not hope.
    let mid_ta = midpoints(grid.t_active_k(), false);
    let mid_ts = midpoints(grid.t_standby_k(), false);
    let mid_rf = midpoints(grid.ras_fraction(), false);
    let mid_lt = midpoints(grid.lifetime_s(), true);
    let mut sweep_cols = Vec::new();
    for pair in 0..spec.pairs.len() {
        for &ta in &mid_ta {
            for &ts in &mid_ts {
                for &rf in &mid_rf {
                    sweep_cols.push((pair, ta, ts, rf));
                }
            }
        }
    }
    let sweeps = run_ordered(&sweep_cols, workers, |_, &(pair, ta, ts, rf)| {
        let (pa, ps) = spec.pairs[pair];
        let mut worst = 0.0f64;
        for &t in &mid_lt {
            let exact = evaluate_exact(
                model,
                spec.period_s,
                &SurfaceQuery {
                    t_active_k: Kelvin(ta),
                    t_standby_k: Kelvin(ts),
                    ras_fraction: rf,
                    lifetime_s: t,
                    p_active: pa,
                    p_standby: ps,
                },
            )?;
            let (approx, _) = interpolate(&grid, &values[pair], ta, ts, rf, t);
            worst = worst.max(rel_error(approx, exact));
        }
        Ok(worst)
    });
    let mut sup_error = 0.0f64;
    for outcome in sweeps {
        sup_error = sup_error.max(unwrap_outcome(outcome)?);
    }
    let error_samples = (sweep_cols.len() * mid_lt.len()) as u64;

    Ok(Artifact {
        period_s: spec.period_s,
        model_fingerprint: model_fingerprint(model)?,
        sup_error,
        error_samples,
        grid,
        pairs: spec.pairs.clone(),
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but representative spec: dense enough to hold the error
    /// bound, small enough for test time.
    pub(crate) fn test_spec() -> BuildSpec {
        BuildSpec {
            t_active_k: vec![Kelvin(SWEEP_TEMP_ACTIVE_K)],
            t_standby_k: kelvin_spaced(320.0, 400.0, 9),
            ras_fraction: lin_spaced(0.1, 0.9, 17),
            lifetime_s: log_spaced(1e6, 1e9, 31),
            pairs: vec![(0.5, 1.0)],
            period_s: SWEEP_PERIOD_S,
            workers: 2,
        }
    }

    #[test]
    fn grid_values_match_exact_evaluation_at_nodes() {
        let model = NbtiModel::ptm90().unwrap();
        let spec = BuildSpec {
            t_standby_k: kelvin_spaced(320.0, 400.0, 3),
            ras_fraction: lin_spaced(0.1, 0.9, 3),
            lifetime_s: log_spaced(1e6, 1e9, 4),
            ..test_spec()
        };
        let artifact = build(&model, &spec).unwrap();
        let g = &artifact.grid;
        for (i_ts, &ts) in g.t_standby_k().iter().enumerate() {
            for (i_rf, &rf) in g.ras_fraction().iter().enumerate() {
                for (i_lt, &t) in g.lifetime_s().iter().enumerate() {
                    let exact = evaluate_exact(
                        &model,
                        spec.period_s,
                        &SurfaceQuery {
                            t_active_k: Kelvin(SWEEP_TEMP_ACTIVE_K),
                            t_standby_k: Kelvin(ts),
                            ras_fraction: rf,
                            lifetime_s: t,
                            p_active: 0.5,
                            p_standby: 1.0,
                        },
                    )
                    .unwrap();
                    let got = artifact.values[0][g.index(0, i_ts, i_rf, i_lt)];
                    assert_eq!(got.to_bits(), exact.to_bits(), "node ({ts}, {rf}, {t})");
                }
            }
        }
    }

    #[test]
    fn measured_sup_error_is_within_the_documented_bound() {
        let model = NbtiModel::ptm90().unwrap();
        let artifact = build(&model, &test_spec()).unwrap();
        assert!(artifact.error_samples > 0);
        assert!(
            artifact.sup_error < crate::DOCUMENTED_ERROR_BOUND,
            "measured sup-error {:e} must stay under the bound {:e}",
            artifact.sup_error,
            crate::DOCUMENTED_ERROR_BOUND
        );
        // And it is a real measurement, not a zero placeholder.
        assert!(artifact.sup_error > 0.0);
    }

    #[test]
    fn build_is_deterministic_across_worker_counts() {
        let model = NbtiModel::ptm90().unwrap();
        let small = BuildSpec {
            t_standby_k: kelvin_spaced(320.0, 400.0, 3),
            ras_fraction: lin_spaced(0.1, 0.9, 3),
            lifetime_s: log_spaced(1e6, 1e9, 4),
            ..test_spec()
        };
        let one = build(
            &model,
            &BuildSpec {
                workers: 1,
                ..small.clone()
            },
        )
        .unwrap();
        let four = build(
            &model,
            &BuildSpec {
                workers: 4,
                ..small
            },
        )
        .unwrap();
        assert_eq!(one.to_bytes(), four.to_bytes());
    }

    #[test]
    fn rejects_bad_specs() {
        let model = NbtiModel::ptm90().unwrap();
        let mut spec = test_spec();
        spec.pairs.clear();
        assert!(build(&model, &spec).is_err());
        let mut spec = test_spec();
        spec.pairs = vec![(1.5, 0.5)];
        assert!(build(&model, &spec).is_err());
        let mut spec = test_spec();
        spec.period_s = 0.0;
        assert!(build(&model, &spec).is_err());
        let mut spec = test_spec();
        spec.t_standby_k = vec![Kelvin(400.0), Kelvin(320.0)];
        assert!(build(&model, &spec).is_err());
    }

    #[test]
    fn spaced_helpers_pin_endpoints() {
        assert_eq!(lin_spaced(1.0, 3.0, 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(lin_spaced(5.0, 9.0, 1), vec![5.0]);
        let lg = log_spaced(1e2, 1e6, 5);
        assert_eq!(lg.first().copied(), Some(1e2));
        assert_eq!(lg.last().copied(), Some(1e6));
        assert!((lg[2] - 1e4).abs() < 1e-6);
    }
}

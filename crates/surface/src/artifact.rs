//! The on-disk surface artifact: a versioned, CRC-32-sealed little-endian
//! binary — magic, header (build params, model fingerprint, measured
//! sup-error), the four grid axes, the `(p_active, p_standby)` pair table,
//! one flat value block per pair, and a trailing CRC-32 of everything
//! before it. Torn or corrupted files are rejected the same way fleet
//! checkpoints are: by construction, not by luck.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

use relia_fleet::checkpoint::crc32;

use crate::grid::SurfaceGrid;

/// File magic: identifies a relia surface artifact, revision 01.
pub const MAGIC: [u8; 8] = *b"RLSURF01";

/// Artifact format version (bumped on any layout change).
pub const FORMAT_VERSION: u32 = 1;

/// Everything that can go wrong building, writing, reading, or serving a
/// surface.
#[derive(Debug)]
pub enum SurfaceError {
    /// Filesystem failure, with the path for context.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file ends before the declared content does (torn write).
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes remaining in the file.
        have: usize,
    },
    /// The leading magic is not [`MAGIC`] — not a surface artifact.
    BadMagic,
    /// A format version this build does not understand.
    UnsupportedVersion(u32),
    /// The trailing CRC-32 does not match the content.
    CrcMismatch {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC computed over the content read.
        found: u32,
    },
    /// Structurally invalid content (bad axes, non-finite values, …).
    Invalid(String),
    /// The offline builder failed (model error or a failed grid job).
    Build(String),
    /// The artifact's measured sup-error exceeds the serving bound.
    ErrorBoundExceeded {
        /// Sup-error measured by the builder, from the header.
        measured: f64,
        /// The documented bound the server enforces.
        bound: f64,
    },
    /// The artifact was built against a different model calibration.
    ModelMismatch {
        /// Fingerprint recorded in the artifact.
        expected: u64,
        /// Fingerprint of the serving model.
        found: u64,
    },
}

impl fmt::Display for SurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurfaceError::Io { path, source } => write!(f, "{path}: {source}"),
            SurfaceError::Truncated { needed, have } => write!(
                f,
                "truncated artifact: needed {needed} more bytes, found {have}"
            ),
            SurfaceError::BadMagic => write!(f, "not a surface artifact (bad magic)"),
            SurfaceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            SurfaceError::CrcMismatch { expected, found } => write!(
                f,
                "artifact CRC mismatch: recorded {expected:#010x}, computed {found:#010x}"
            ),
            SurfaceError::Invalid(why) => write!(f, "invalid artifact: {why}"),
            SurfaceError::Build(why) => write!(f, "surface build failed: {why}"),
            SurfaceError::ErrorBoundExceeded { measured, bound } => write!(
                f,
                "artifact sup-error {measured:e} exceeds the documented bound {bound:e}; \
                 rebuild with a denser grid"
            ),
            SurfaceError::ModelMismatch { expected, found } => write!(
                f,
                "artifact model fingerprint {expected:#018x} does not match the serving \
                 model {found:#018x}; rebuild against this calibration"
            ),
        }
    }
}

impl std::error::Error for SurfaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurfaceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A decoded (or freshly built) surface artifact: the header fields, the
/// grid, and one value block per `(p_active, p_standby)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The mode-cycle period the grid was evaluated at (seconds).
    pub period_s: f64,
    /// FNV-1a fingerprint of the building model's anchor evaluations.
    pub model_fingerprint: u64,
    /// Builder-measured sup of the relative interpolation error over the
    /// midpoint sweep.
    pub sup_error: f64,
    /// Number of points the error sweep evaluated.
    pub error_samples: u64,
    /// The four axes.
    pub grid: SurfaceGrid,
    /// The `(p_active, p_standby)` stress-probability pairs, one value
    /// block each.
    pub pairs: Vec<(f64, f64)>,
    /// Per-pair ΔV_th blocks, each of length `grid.len()`, indexed by
    /// [`SurfaceGrid::index`].
    pub values: Vec<Vec<f64>>,
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_axis(out: &mut Vec<u8>, axis: &[f64]) {
    out.extend_from_slice(&(axis.len() as u32).to_le_bytes());
    for &v in axis {
        put_f64(out, v);
    }
}

/// A bounds-checked little-endian reader over the artifact bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SurfaceError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(SurfaceError::Truncated { needed: n, have });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SurfaceError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, SurfaceError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, SurfaceError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn axis(&mut self, cap: u32) -> Result<Vec<f64>, SurfaceError> {
        let count = self.u32()?;
        if count == 0 || count > cap {
            return Err(SurfaceError::Invalid(format!(
                "axis length {count} outside 1..={cap}"
            )));
        }
        (0..count).map(|_| self.f64()).collect()
    }
}

/// Largest axis length the decoder accepts — a sanity cap so a corrupted
/// length field cannot demand gigabytes.
const MAX_AXIS: u32 = 100_000;

/// Most pairs one artifact may carry.
const MAX_PAIRS: u32 = 4096;

impl Artifact {
    /// Serializes the artifact: magic, header, axes, pairs, value blocks,
    /// trailing CRC-32 of all preceding bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * self.pairs.len() * self.grid.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        put_f64(&mut out, self.period_s);
        out.extend_from_slice(&self.model_fingerprint.to_le_bytes());
        put_f64(&mut out, self.sup_error);
        out.extend_from_slice(&self.error_samples.to_le_bytes());
        put_axis(&mut out, self.grid.t_active_k());
        put_axis(&mut out, self.grid.t_standby_k());
        put_axis(&mut out, self.grid.ras_fraction());
        put_axis(&mut out, self.grid.lifetime_s());
        out.extend_from_slice(&(self.pairs.len() as u32).to_le_bytes());
        for &(pa, ps) in &self.pairs {
            put_f64(&mut out, pa);
            put_f64(&mut out, ps);
        }
        for block in &self.values {
            for &v in block {
                put_f64(&mut out, v);
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and validates an artifact.
    ///
    /// # Errors
    ///
    /// [`SurfaceError::BadMagic`], [`SurfaceError::UnsupportedVersion`],
    /// [`SurfaceError::Truncated`], [`SurfaceError::CrcMismatch`], or
    /// [`SurfaceError::Invalid`] for structurally bad content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, SurfaceError> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(SurfaceError::Truncated {
                needed: MAGIC.len() + 4,
                have: bytes.len(),
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SurfaceError::BadMagic);
        }
        // The CRC seals everything before the trailing four bytes.
        let content_len = bytes.len() - 4;
        let mut tail = [0u8; 4];
        tail.copy_from_slice(&bytes[content_len..]);
        let expected = u32::from_le_bytes(tail);
        let found = crc32(&bytes[..content_len]);
        if expected != found {
            return Err(SurfaceError::CrcMismatch { expected, found });
        }
        let mut c = Cursor {
            bytes: &bytes[..content_len],
            pos: MAGIC.len(),
        };
        let version = c.u32()?;
        if version != FORMAT_VERSION {
            return Err(SurfaceError::UnsupportedVersion(version));
        }
        let period_s = c.f64()?;
        if !period_s.is_finite() || period_s <= 0.0 {
            return Err(SurfaceError::Invalid(format!("bad period_s {period_s}")));
        }
        let model_fingerprint = c.u64()?;
        let sup_error = c.f64()?;
        if !sup_error.is_finite() || sup_error < 0.0 {
            return Err(SurfaceError::Invalid(format!("bad sup_error {sup_error}")));
        }
        let error_samples = c.u64()?;
        let t_active_k = c.axis(MAX_AXIS)?;
        let t_standby_k = c.axis(MAX_AXIS)?;
        let ras_fraction = c.axis(MAX_AXIS)?;
        let lifetime_s = c.axis(MAX_AXIS)?;
        let grid = SurfaceGrid::new(t_active_k, t_standby_k, ras_fraction, lifetime_s)?;
        let pair_count = c.u32()?;
        if pair_count == 0 || pair_count > MAX_PAIRS {
            return Err(SurfaceError::Invalid(format!(
                "pair count {pair_count} outside 1..={MAX_PAIRS}"
            )));
        }
        let mut pairs = Vec::with_capacity(pair_count as usize);
        for _ in 0..pair_count {
            let pa = c.f64()?;
            let ps = c.f64()?;
            for (name, p) in [("p_active", pa), ("p_standby", ps)] {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(SurfaceError::Invalid(format!("{name} {p} outside [0, 1]")));
                }
            }
            pairs.push((pa, ps));
        }
        let mut values = Vec::with_capacity(pairs.len());
        for _ in 0..pairs.len() {
            let mut block = Vec::with_capacity(grid.len());
            for _ in 0..grid.len() {
                let v = c.f64()?;
                if !v.is_finite() {
                    return Err(SurfaceError::Invalid("non-finite grid value".to_owned()));
                }
                block.push(v);
            }
            values.push(block);
        }
        if c.pos != content_len {
            return Err(SurfaceError::Invalid(format!(
                "{} trailing bytes after the value blocks",
                content_len - c.pos
            )));
        }
        Ok(Artifact {
            period_s,
            model_fingerprint,
            sup_error,
            error_samples,
            grid,
            pairs,
            values,
        })
    }

    /// Writes the artifact atomically: serialize to `<path>.tmp`, fsync,
    /// rename into place — a crash leaves either the old file or none, the
    /// same discipline as fleet checkpoints.
    ///
    /// # Errors
    ///
    /// [`SurfaceError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<(), SurfaceError> {
        let io = |source| SurfaceError::Io {
            path: path.display().to_string(),
            source,
        };
        let tmp = path.with_extension("tmp");
        let bytes = self.to_bytes();
        let mut file = fs::File::create(&tmp).map_err(io)?;
        file.write_all(&bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and decodes an artifact from disk.
    ///
    /// # Errors
    ///
    /// [`SurfaceError::Io`] or any [`Artifact::from_bytes`] failure.
    pub fn read(path: &Path) -> Result<Artifact, SurfaceError> {
        let bytes = fs::read(path).map_err(|source| SurfaceError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Artifact::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> Artifact {
        let grid = SurfaceGrid::new(
            vec![400.0],
            vec![320.0, 360.0],
            vec![0.1, 0.9],
            vec![1e6, 1e8],
        )
        .unwrap();
        let values = vec![(0..grid.len()).map(|i| i as f64 * 1e-3).collect()];
        Artifact {
            period_s: 1000.0,
            model_fingerprint: 0xdead_beef_cafe_f00d,
            sup_error: 2.5e-3,
            error_samples: 42,
            grid,
            pairs: vec![(0.5, 1.0)],
            values,
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let a = artifact();
        let bytes = a.to_bytes();
        let back = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn rejects_bad_magic_truncation_and_corruption() {
        let bytes = artifact().to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Artifact::from_bytes(&bad),
            Err(SurfaceError::BadMagic)
        ));

        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let torn = &bytes[..cut];
            assert!(
                matches!(
                    Artifact::from_bytes(torn),
                    Err(SurfaceError::Truncated { .. } | SurfaceError::CrcMismatch { .. })
                ),
                "cut at {cut}"
            );
        }

        // Flip one payload byte: the CRC catches it.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Artifact::from_bytes(&flipped),
            Err(SurfaceError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn rejects_future_versions_even_with_a_valid_crc() {
        let mut a = artifact();
        a.sup_error = 0.0;
        let mut bytes = a.to_bytes();
        // Patch the version field (right after the magic) and re-seal.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let content = bytes.len() - 4;
        let crc = relia_fleet::checkpoint::crc32(&bytes[..content]);
        bytes[content..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(SurfaceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn write_read_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("relia-surface-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.rsf");
        let a = artifact();
        a.write(&path).unwrap();
        assert_eq!(Artifact::read(&path).unwrap(), a);
        assert!(!path.with_extension("tmp").exists(), "temp file renamed");
        fs::remove_dir_all(&dir).unwrap();
    }
}

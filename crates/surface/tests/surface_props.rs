//! The surface contract, property-tested: interpolated ΔV_th stays within
//! the documented error bound of exact evaluation for random in-domain
//! points, the artifact round-trips byte-identically through disk, and
//! corrupt or truncated files are rejected.

use std::sync::OnceLock;

use proptest::prelude::*;
use relia_core::{Kelvin, NbtiModel};
use relia_surface::{
    build, evaluate_exact, kelvin_spaced, lin_spaced, log_spaced, rel_error, Artifact, BuildSpec,
    Surface, SurfaceError, SurfaceQuery, DOCUMENTED_ERROR_BOUND,
};

const T_ACTIVE_K: f64 = 400.0;
const PERIOD_S: f64 = 1000.0;
const PAIRS: [(f64, f64); 2] = [(0.5, 1.0), (0.3, 1.0)];

/// One artifact shared by every property case — building it is the
/// expensive part (a few thousand model evaluations).
fn artifact() -> &'static Artifact {
    static ARTIFACT: OnceLock<Artifact> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let model = NbtiModel::ptm90().expect("builtin calibration");
        let spec = BuildSpec {
            t_active_k: vec![Kelvin(T_ACTIVE_K)],
            t_standby_k: kelvin_spaced(320.0, 400.0, 9),
            ras_fraction: lin_spaced(0.1, 0.9, 9),
            lifetime_s: log_spaced(1e6, 1e9, 13),
            pairs: PAIRS.to_vec(),
            period_s: PERIOD_S,
            workers: 2,
        };
        build(&model, &spec).expect("build")
    })
}

fn surface() -> Surface {
    Surface::from_artifact(artifact().clone()).expect("within bound")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random in-domain points the interpolated value is within the
    /// documented relative error bound of the exact model — the contract
    /// `relia serve --surface` relies on.
    #[test]
    fn interpolation_stays_within_the_documented_bound(
        ts in 320.0f64..400.0,
        rf in 0.1f64..0.9,
        log_t in 6.0f64..9.0,
        pair in 0usize..PAIRS.len(),
    ) {
        let t = 10f64.powf(log_t);
        let (pa, ps) = PAIRS[pair];
        let model = NbtiModel::ptm90().expect("builtin calibration");
        let q = SurfaceQuery {
            t_active_k: Kelvin(T_ACTIVE_K),
            t_standby_k: Kelvin(ts),
            ras_fraction: rf,
            lifetime_s: t,
            p_active: pa,
            p_standby: ps,
        };
        let exact = evaluate_exact(&model, PERIOD_S, &q)
            .expect("in-domain point evaluates");
        let hit = surface().lookup(&q).expect("known pair");
        prop_assert!(!hit.clamped, "in-domain point must not clamp");
        let err = rel_error(hit.delta_vth_v, exact);
        prop_assert!(
            err <= DOCUMENTED_ERROR_BOUND,
            "rel error {err:e} at (ts={ts}, rf={rf}, t={t:e}, pa={pa}) exceeds \
             {DOCUMENTED_ERROR_BOUND:e}"
        );
    }

    /// Any single corrupted byte in the sealed region is caught — by the
    /// CRC, or by a structural check for the few bytes (magic, version,
    /// the CRC field itself) whose damage is diagnosed earlier/differently.
    #[test]
    fn corrupting_any_byte_is_rejected(position in 0usize..100_000, flip in 1u8..255) {
        let bytes = artifact().to_bytes();
        let mut bad = bytes.clone();
        let at = position % bad.len();
        bad[at] ^= flip;
        prop_assert!(
            Artifact::from_bytes(&bad).is_err(),
            "flip {flip:#04x} at {at} must not decode"
        );
    }

    /// A torn (truncated) file never decodes.
    #[test]
    fn truncated_files_are_rejected(cut in 0usize..100_000) {
        let bytes = artifact().to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(matches!(
            Artifact::from_bytes(&bytes[..cut]),
            Err(SurfaceError::Truncated { .. } | SurfaceError::CrcMismatch { .. })
        ));
    }
}

#[test]
fn artifact_round_trips_byte_identically_through_disk() {
    let dir = std::env::temp_dir().join(format!("relia-surface-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("round_trip.rsf");
    let a = artifact();
    a.write(&path).expect("write");
    let back = Artifact::read(&path).expect("read");
    assert_eq!(&back, a, "decoded artifact equals the built one");
    assert_eq!(back.to_bytes(), a.to_bytes(), "re-encode is byte-identical");

    // And the loaded surface probes bit-identically to the in-memory one.
    let on_disk = Surface::load(&path).expect("load");
    let q = SurfaceQuery {
        t_active_k: Kelvin(T_ACTIVE_K),
        t_standby_k: Kelvin(333.0),
        ras_fraction: 0.42,
        lifetime_s: 3.3e7,
        p_active: 0.5,
        p_standby: 1.0,
    };
    let mem = surface().lookup(&q).expect("mem hit");
    let disk = on_disk.lookup(&q).expect("disk hit");
    assert_eq!(mem.delta_vth_v.to_bits(), disk.delta_vth_v.to_bits());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn the_measured_sup_error_is_enforced_at_load_time() {
    // Forge an artifact that *claims* a sup-error over the bound (CRC
    // intact): the reader must refuse it.
    let mut over = artifact().clone();
    over.sup_error = DOCUMENTED_ERROR_BOUND * 2.0;
    let bytes = over.to_bytes();
    let decoded = Artifact::from_bytes(&bytes).expect("format-valid");
    assert!(matches!(
        Surface::from_artifact(decoded),
        Err(SurfaceError::ErrorBoundExceeded { .. })
    ));
}

//! The paper's contribution: temperature-aware equivalent-cycle transform
//! (eqs. 17–19).
//!
//! A digital circuit alternates between an *active* mode (hot, switching) and
//! a *standby* mode (cooler, state frozen by an input vector or power gating).
//! Stress accumulated at the cooler standby temperature is worth less than
//! stress at the active temperature because the hydrogen diffusion coefficient
//! is thermally activated. This module rescales a two-temperature schedule
//! into a single equivalent AC-stress pattern evaluated at the active
//! temperature:
//!
//! ```text
//! t_eq_stress   = c·t_active·? + (D_standby/D_active)·t_standby   (eq. 17)
//! c_eq          = t_eq_stress / (t_eq_stress + t_eq_recovery)     (eq. 18)
//! τ_eq          = t_eq_stress + t_eq_recovery                     (eq. 19)
//! ```
//!
//! Recovery is treated as temperature-insensitive, as the paper observes
//! ("the temperature has negligible effect on NBTI relaxation phase").

use crate::ac::AcStress;
use crate::arrhenius::diffusion_ratio;
use crate::error::{check_range, check_temp, ModelError};
use crate::params::NbtiParams;
use crate::units::{Kelvin, Seconds};

/// Ratio of active to standby time, e.g. `Ras::new(1.0, 9.0)` for the paper's
/// "RAS = 1:9".
///
/// ```
/// use relia_core::Ras;
///
/// let ras = Ras::new(1.0, 5.0).unwrap();
/// assert!((ras.active_fraction() - 1.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ras {
    active: f64,
    standby: f64,
}

impl Ras {
    /// Creates a ratio from positive active and standby weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when either weight is
    /// negative, both are zero, or a weight is non-finite.
    pub fn new(active: f64, standby: f64) -> Result<Self, ModelError> {
        check_range("ras.active", active, 0.0, f64::MAX, "non-negative")?;
        check_range("ras.standby", standby, 0.0, f64::MAX, "non-negative")?;
        if active + standby <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "ras",
                value: 0.0,
                expected: "active + standby > 0",
            });
        }
        Ok(Ras { active, standby })
    }

    /// Fraction of each mode cycle spent active.
    pub fn active_fraction(&self) -> f64 {
        self.active / (self.active + self.standby)
    }

    /// Fraction of each mode cycle spent in standby.
    pub fn standby_fraction(&self) -> f64 {
        1.0 - self.active_fraction()
    }
}

impl std::fmt::Display for Ras {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.active, self.standby)
    }
}

/// An active/standby operating schedule: how each mode cycle is divided and
/// at which steady-state temperature each mode runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSchedule {
    t_active: Seconds,
    t_standby: Seconds,
    temp_active: Kelvin,
    temp_standby: Kelvin,
}

impl ModeSchedule {
    /// Creates a schedule from an active:standby ratio, the mode-cycle
    /// period, and the two steady-state temperatures.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for a non-positive period or non-physical
    /// temperature.
    ///
    /// ```
    /// use relia_core::{Kelvin, ModeSchedule, Ras, Seconds};
    ///
    /// let s = ModeSchedule::new(
    ///     Ras::new(1.0, 9.0)?,
    ///     Seconds(1000.0),
    ///     Kelvin(400.0),
    ///     Kelvin(330.0),
    /// )?;
    /// assert_eq!(s.t_active().0, 100.0);
    /// assert_eq!(s.t_standby().0, 900.0);
    /// # Ok::<(), relia_core::ModelError>(())
    /// ```
    pub fn new(
        ras: Ras,
        period: Seconds,
        temp_active: Kelvin,
        temp_standby: Kelvin,
    ) -> Result<Self, ModelError> {
        check_range(
            "period",
            period.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            "positive seconds",
        )?;
        check_temp("temp_active", temp_active)?;
        check_temp("temp_standby", temp_standby)?;
        Ok(ModeSchedule {
            t_active: Seconds(ras.active_fraction() * period.0),
            t_standby: Seconds(ras.standby_fraction() * period.0),
            temp_active,
            temp_standby,
        })
    }

    /// Creates an always-active schedule (the worst-case temperature
    /// assumption of prior work): the whole period is spent at
    /// `temp_active`.
    pub fn always_active(period: Seconds, temp_active: Kelvin) -> Result<Self, ModelError> {
        // Ras::new(1, 0) cannot fail.
        // relia-lint: allow(unwrap-in-lib)
        let ras = Ras::new(1.0, 0.0).expect("constant ratio is valid");
        ModeSchedule::new(ras, period, temp_active, temp_active)
    }

    /// Active time per mode cycle.
    pub fn t_active(&self) -> Seconds {
        self.t_active
    }

    /// Standby time per mode cycle.
    pub fn t_standby(&self) -> Seconds {
        self.t_standby
    }

    /// Steady-state active-mode temperature.
    pub fn temp_active(&self) -> Kelvin {
        self.temp_active
    }

    /// Steady-state standby-mode temperature.
    pub fn temp_standby(&self) -> Kelvin {
        self.temp_standby
    }

    /// Mode-cycle period `t_active + t_standby`.
    pub fn period(&self) -> Seconds {
        Seconds(self.t_active.0 + self.t_standby.0)
    }
}

/// Stress description of one PMOS device over the schedule.
///
/// * `active_stress_prob` — probability that the device's gate input is low
///   (the PMOS negatively biased, `V_gs = −V_dd`) while the circuit is
///   active; derived from signal probabilities.
/// * `standby_stress_prob` — probability that the standby internal state
///   holds the gate input low. For a deterministic standby vector this is 0
///   or 1; it is exposed as a probability so that ensembles of standby
///   vectors can be modeled too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmosStress {
    active_stress_prob: f64,
    standby_stress_prob: f64,
}

impl PmosStress {
    /// Creates a stress description; both probabilities must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for out-of-range
    /// probabilities.
    pub fn new(active_stress_prob: f64, standby_stress_prob: f64) -> Result<Self, ModelError> {
        check_range("active_stress_prob", active_stress_prob, 0.0, 1.0, "[0, 1]")?;
        check_range(
            "standby_stress_prob",
            standby_stress_prob,
            0.0,
            1.0,
            "[0, 1]",
        )?;
        Ok(PmosStress {
            active_stress_prob,
            standby_stress_prob,
        })
    }

    /// The worst case the paper uses as its baseline: a 0.5 signal
    /// probability while active, and the standby vector holding the gate
    /// input low (full standby stress).
    pub fn worst_case() -> Self {
        PmosStress {
            active_stress_prob: 0.5,
            standby_stress_prob: 1.0,
        }
    }

    /// Best case: 0.5 active signal probability, standby vector holds the
    /// gate input *high* so the device relaxes throughout standby.
    pub fn best_case() -> Self {
        PmosStress {
            active_stress_prob: 0.5,
            standby_stress_prob: 0.0,
        }
    }

    /// Probability of stress during active mode.
    pub fn active_stress_prob(&self) -> f64 {
        self.active_stress_prob
    }

    /// Probability of stress during standby mode.
    pub fn standby_stress_prob(&self) -> f64 {
        self.standby_stress_prob
    }
}

/// The equivalent single-temperature AC stress for a device under a
/// two-temperature schedule, plus the diffusion ratio used to build it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalentCycle {
    /// Equivalent AC stress (duty cycle `c_eq`, period `τ_eq`), referenced to
    /// the active-mode temperature.
    pub stress: AcStress,
    /// Equivalent stress seconds per mode cycle (eq. 17).
    pub t_eq_stress: f64,
    /// Equivalent recovery seconds per mode cycle.
    pub t_eq_recovery: f64,
    /// `D_H(T_standby)/D_H(T_active)` used for the rescale.
    pub diffusion_ratio: f64,
}

impl EquivalentCycle {
    /// Builds the equivalent cycle for `stress` under `schedule` with the
    /// activation energy from `params` (eqs. 17–19).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the resulting equivalent period degenerates
    /// to zero (cannot happen for valid schedules, kept for API symmetry).
    pub fn build(
        params: &NbtiParams,
        schedule: &ModeSchedule,
        stress: &PmosStress,
    ) -> Result<Self, ModelError> {
        let r = diffusion_ratio(params.e_d, schedule.temp_standby(), schedule.temp_active());
        let t_a = schedule.t_active().0;
        let t_s = schedule.t_standby().0;
        let p_a = stress.active_stress_prob();
        let p_s = stress.standby_stress_prob();

        // Stress seconds at the standby temperature are rescaled by the
        // diffusion ratio; recovery seconds count at face value.
        let t_eq_stress = p_a * t_a + p_s * r * t_s;
        let t_eq_recovery = (1.0 - p_a) * t_a + (1.0 - p_s) * t_s;
        let period = t_eq_stress + t_eq_recovery;
        if period <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "equivalent period",
                value: period,
                expected: "positive",
            });
        }
        let duty = t_eq_stress / period;
        Ok(EquivalentCycle {
            stress: AcStress::new(duty, Seconds(period))?,
            t_eq_stress,
            t_eq_recovery,
            diffusion_ratio: r,
        })
    }
}

/// One interval of an arbitrary operating trace: `duration` at temperature
/// `temp`, with the device under stress for `stress_fraction` of the
/// interval.
///
/// Traces generalize the two-mode [`ModeSchedule`]: a measured thermal
/// profile (e.g. from `relia-thermal`) can be replayed directly instead of
/// being collapsed to two steady-state temperatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressInterval {
    /// Interval length.
    pub duration: Seconds,
    /// Die temperature during the interval.
    pub temp: Kelvin,
    /// Fraction of the interval the PMOS spends at `V_gs = −V_dd`.
    pub stress_fraction: f64,
}

impl StressInterval {
    /// Validates the interval.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for a non-positive duration, non-physical
    /// temperature, or stress fraction outside `[0, 1]`.
    pub fn validated(self) -> Result<Self, ModelError> {
        check_range(
            "duration",
            self.duration.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            "positive seconds",
        )?;
        check_temp("temp", self.temp)?;
        check_range("stress_fraction", self.stress_fraction, 0.0, 1.0, "[0, 1]")?;
        Ok(self)
    }
}

impl EquivalentCycle {
    /// Builds the equivalent cycle for one repetition of an arbitrary
    /// temperature/stress trace, referenced to `temp_ref` (eq. 17
    /// generalized): every interval's stress seconds are rescaled by its
    /// own diffusion ratio, recovery seconds count at face value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for an empty trace or invalid interval.
    pub fn from_trace(
        params: &NbtiParams,
        trace: &[StressInterval],
        temp_ref: Kelvin,
    ) -> Result<Self, ModelError> {
        if trace.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "trace",
                value: 0.0,
                expected: "at least one interval",
            });
        }
        check_temp("temp_ref", temp_ref)?;
        let mut t_eq_stress = 0.0;
        let mut t_eq_recovery = 0.0;
        for interval in trace {
            let iv = interval.validated()?;
            let r = diffusion_ratio(params.e_d, iv.temp, temp_ref);
            t_eq_stress += iv.stress_fraction * r * iv.duration.0;
            t_eq_recovery += (1.0 - iv.stress_fraction) * iv.duration.0;
        }
        let period = t_eq_stress + t_eq_recovery;
        if period <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "equivalent period",
                value: period,
                expected: "positive",
            });
        }
        Ok(EquivalentCycle {
            stress: AcStress::new(t_eq_stress / period, Seconds(period))?,
            t_eq_stress,
            t_eq_recovery,
            diffusion_ratio: f64::NAN, // trace spans many temperatures
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NbtiParams {
        NbtiParams::default()
    }

    fn schedule(ras_s: f64, temp_s: f64) -> ModeSchedule {
        ModeSchedule::new(
            Ras::new(1.0, ras_s).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(temp_s),
        )
        .unwrap()
    }

    #[test]
    fn ras_fractions() {
        let r = Ras::new(1.0, 9.0).unwrap();
        assert!((r.active_fraction() - 0.1).abs() < 1e-12);
        assert!((r.standby_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(Ras::new(9.0, 1.0).unwrap().active_fraction(), 0.9);
    }

    #[test]
    fn ras_rejects_degenerate() {
        assert!(Ras::new(0.0, 0.0).is_err());
        assert!(Ras::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn always_active_has_no_standby() {
        let s = ModeSchedule::always_active(Seconds(100.0), Kelvin(400.0)).unwrap();
        assert_eq!(s.t_standby().0, 0.0);
        assert_eq!(s.t_active().0, 100.0);
    }

    #[test]
    fn equal_temperature_worst_case_is_mostly_stress() {
        // T_standby = T_active, full standby stress, SP 0.5, RAS 1:9:
        // duty = (0.5*0.1 + 0.9) / 1.0 = 0.95.
        let eq =
            EquivalentCycle::build(&params(), &schedule(9.0, 400.0), &PmosStress::worst_case())
                .unwrap();
        assert!((eq.stress.duty_cycle() - 0.95).abs() < 1e-12);
        assert!((eq.stress.period().0 - 1000.0).abs() < 1e-9);
        assert!((eq.diffusion_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cooler_standby_shrinks_equivalent_stress() {
        let hot =
            EquivalentCycle::build(&params(), &schedule(9.0, 400.0), &PmosStress::worst_case())
                .unwrap();
        let cool =
            EquivalentCycle::build(&params(), &schedule(9.0, 330.0), &PmosStress::worst_case())
                .unwrap();
        assert!(cool.t_eq_stress < hot.t_eq_stress);
        assert!(cool.stress.period() < hot.stress.period());
        // Recovery time is temperature-insensitive.
        assert!((cool.t_eq_recovery - hot.t_eq_recovery).abs() < 1e-9);
    }

    #[test]
    fn relaxed_standby_counts_fully_as_recovery() {
        let eq = EquivalentCycle::build(&params(), &schedule(9.0, 330.0), &PmosStress::best_case())
            .unwrap();
        // stress = 0.5 * 100 = 50; recovery = 0.5*100 + 900 = 950.
        assert!((eq.t_eq_stress - 50.0).abs() < 1e-9);
        assert!((eq.t_eq_recovery - 950.0).abs() < 1e-9);
        assert!((eq.stress.duty_cycle() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_stress_probability_gives_zero_duty() {
        let stress = PmosStress::new(0.0, 0.0).unwrap();
        let eq = EquivalentCycle::build(&params(), &schedule(1.0, 330.0), &stress).unwrap();
        assert_eq!(eq.stress.duty_cycle(), 0.0);
    }

    #[test]
    fn stress_probability_validation() {
        assert!(PmosStress::new(1.5, 0.0).is_err());
        assert!(PmosStress::new(0.5, -0.1).is_err());
    }

    #[test]
    fn display_ras() {
        assert_eq!(Ras::new(1.0, 9.0).unwrap().to_string(), "1:9");
    }

    #[test]
    fn trace_reproduces_two_mode_schedule() {
        // A two-interval trace (hot stressed / cool stressed) must match
        // the ModeSchedule-based transform exactly.
        let p = params();
        let sched = schedule(9.0, 330.0);
        let two_mode = EquivalentCycle::build(&p, &sched, &PmosStress::worst_case()).unwrap();
        let trace = [
            StressInterval {
                duration: Seconds(100.0),
                temp: Kelvin(400.0),
                stress_fraction: 0.5,
            },
            StressInterval {
                duration: Seconds(900.0),
                temp: Kelvin(330.0),
                stress_fraction: 1.0,
            },
        ];
        let from_trace = EquivalentCycle::from_trace(&p, &trace, Kelvin(400.0)).unwrap();
        assert!((from_trace.t_eq_stress - two_mode.t_eq_stress).abs() < 1e-9);
        assert!((from_trace.t_eq_recovery - two_mode.t_eq_recovery).abs() < 1e-9);
    }

    #[test]
    fn trace_with_fine_intervals_matches_coarse() {
        // Splitting an interval does not change the equivalent stress.
        let p = params();
        let coarse = [StressInterval {
            duration: Seconds(10.0),
            temp: Kelvin(360.0),
            stress_fraction: 0.7,
        }];
        let fine: Vec<StressInterval> = (0..10)
            .map(|_| StressInterval {
                duration: Seconds(1.0),
                temp: Kelvin(360.0),
                stress_fraction: 0.7,
            })
            .collect();
        let a = EquivalentCycle::from_trace(&p, &coarse, Kelvin(400.0)).unwrap();
        let b = EquivalentCycle::from_trace(&p, &fine, Kelvin(400.0)).unwrap();
        assert!((a.t_eq_stress - b.t_eq_stress).abs() < 1e-9);
        assert!((a.stress.duty_cycle() - b.stress.duty_cycle()).abs() < 1e-12);
    }

    #[test]
    fn trace_rejects_bad_intervals() {
        let p = params();
        assert!(EquivalentCycle::from_trace(&p, &[], Kelvin(400.0)).is_err());
        let bad = [StressInterval {
            duration: Seconds(-1.0),
            temp: Kelvin(360.0),
            stress_fraction: 0.5,
        }];
        assert!(EquivalentCycle::from_trace(&p, &bad, Kelvin(400.0)).is_err());
        let bad_frac = [StressInterval {
            duration: Seconds(1.0),
            temp: Kelvin(360.0),
            stress_fraction: 1.5,
        }];
        assert!(EquivalentCycle::from_trace(&p, &bad_frac, Kelvin(400.0)).is_err());
    }
}

//! Process-variation hooks for statistical aging analysis (the paper's
//! Fig. 12 experiment).
//!
//! The crate carries no random-number dependency; sampling is expressed as
//! pure transforms of caller-supplied uniform variates so downstream crates
//! can plug in any RNG while the core stays deterministic and testable.

use crate::error::{check_range, ModelError};
use crate::units::Volts;

/// A Gaussian distribution of initial PMOS threshold voltages,
/// `V_th0 ~ N(mean, sigma²)`.
///
/// ```
/// use relia_core::{VthDistribution, Volts};
///
/// let dist = VthDistribution::new(Volts(0.22), Volts(0.010)).unwrap();
/// let v = dist.sample_box_muller(0.3, 0.7);
/// assert!(v.0 > 0.1 && v.0 < 0.35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VthDistribution {
    mean: f64,
    sigma: f64,
}

impl VthDistribution {
    /// Creates a distribution with mean `mean` volts and standard deviation
    /// `sigma` volts.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a non-positive mean or a
    /// negative sigma.
    pub fn new(mean: Volts, sigma: Volts) -> Result<Self, ModelError> {
        check_range(
            "vth mean",
            mean.0,
            f64::MIN_POSITIVE,
            10.0,
            "positive volts",
        )?;
        check_range("vth sigma", sigma.0, 0.0, mean.0, "[0, mean] volts")?;
        Ok(VthDistribution {
            mean: mean.0,
            sigma: sigma.0,
        })
    }

    /// Distribution mean.
    pub fn mean(&self) -> Volts {
        Volts(self.mean)
    }

    /// Distribution standard deviation.
    pub fn sigma(&self) -> Volts {
        Volts(self.sigma)
    }

    /// Maps two independent uniforms `u1, u2 ∈ (0, 1)` to one Gaussian sample
    /// via the Box–Muller transform, clamping three-sigma outliers to keep
    /// thresholds physical.
    ///
    /// Inputs outside `(0, 1)` are nudged inside rather than rejected, so the
    /// function is total.
    pub fn sample_box_muller(&self, u1: f64, u2: f64) -> Volts {
        let u1 = u1.clamp(1e-12, 1.0 - 1e-12);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let z = z.clamp(-3.5, 3.5);
        Volts(self.mean + self.sigma * z)
    }

    /// The `p`-quantile of the distribution (inverse normal CDF, Acklam's
    /// rational approximation, absolute error < 1.2e-9).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for `p` outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<Volts, ModelError> {
        check_range("quantile p", p, f64::MIN_POSITIVE, 1.0 - 1e-16, "(0, 1)")?;
        Ok(Volts(self.mean + self.sigma * standard_normal_quantile(p)))
    }
}

/// Summary statistics of a sample (used by the Fig. 12 harness).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population convention, `n` divisor).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleStats {
    /// Computes statistics over `values`; returns `None` for an empty slice.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(SampleStats {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// `mean − k·σ`.
    pub fn lower(&self, k: f64) -> f64 {
        self.mean - k * self.std_dev
    }

    /// `mean + k·σ`.
    pub fn upper(&self, k: f64) -> f64 {
        self.mean + k * self.std_dev
    }
}

/// Standard-normal quantile function (Acklam's approximation).
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_symmetry() {
        let d = VthDistribution::new(Volts(0.22), Volts(0.01)).unwrap();
        let lo = d.quantile(0.1587).unwrap().0; // ≈ mean − σ
        let hi = d.quantile(0.8413).unwrap().0; // ≈ mean + σ
        assert!((lo - 0.21).abs() < 1e-4);
        assert!((hi - 0.23).abs() < 1e-4);
        assert!((d.quantile(0.5).unwrap().0 - 0.22).abs() < 1e-9);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        let d = VthDistribution::new(Volts(0.22), Volts(0.01)).unwrap();
        assert!(d.quantile(0.0).is_err());
        assert!(d.quantile(1.0).is_err());
    }

    #[test]
    fn box_muller_matches_moments() {
        let d = VthDistribution::new(Volts(0.22), Volts(0.01)).unwrap();
        // Deterministic low-discrepancy sweep over the unit square.
        let mut vals = Vec::new();
        let n = 200;
        for i in 0..n {
            for j in 0..n {
                let u1 = (i as f64 + 0.5) / n as f64;
                let u2 = (j as f64 + 0.5) / n as f64;
                vals.push(d.sample_box_muller(u1, u2).0);
            }
        }
        let stats = SampleStats::from_values(&vals).unwrap();
        assert!((stats.mean - 0.22).abs() < 5e-4, "mean {}", stats.mean);
        assert!(
            (stats.std_dev - 0.01).abs() < 1e-3,
            "sigma {}",
            stats.std_dev
        );
    }

    #[test]
    fn distribution_validation() {
        assert!(VthDistribution::new(Volts(0.0), Volts(0.01)).is_err());
        assert!(VthDistribution::new(Volts(0.22), Volts(-0.01)).is_err());
        assert!(VthDistribution::new(Volts(0.22), Volts(0.5)).is_err());
    }

    #[test]
    fn stats_basics() {
        let s = SampleStats::from_values(&[1.0, 2.0, 3.0]).unwrap();
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.lower(1.0) - (2.0 - s.std_dev)).abs() < 1e-12);
        assert!(SampleStats::from_values(&[]).is_none());
    }
}

//! The [`NbtiModel`] front-end: threshold-voltage shift under DC, AC, and
//! temperature-aware active/standby stress schedules (eq. 12 with the
//! equivalent-cycle transform).

use crate::ac::AcStress;
use crate::arrhenius::kv_temperature_factor;
use crate::equivalent::{EquivalentCycle, ModeSchedule, PmosStress};
use crate::error::{check_finite, check_range, check_temp, ModelError};
use crate::params::NbtiParams;
use crate::units::{Kelvin, Seconds, Volts};

/// Temperature-aware NBTI threshold-shift model.
///
/// Wraps an [`NbtiParams`] calibration and evaluates
/// `ΔV_th = K_v(T) · S_n · τ^(1/4)` for the stress pattern of interest.
///
/// ```
/// use relia_core::{Kelvin, NbtiModel, Seconds};
///
/// # fn main() -> Result<(), relia_core::ModelError> {
/// let model = NbtiModel::ptm90()?;
/// // The DC calibration anchor: ~35 mV after 1e8 s at 400 K.
/// let dvth = model.delta_vth_dc(Seconds(1.0e8), Kelvin(400.0))?;
/// assert!((dvth - 0.035).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NbtiModel {
    params: NbtiParams,
}

impl NbtiModel {
    /// Creates a model from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when `params` fails validation.
    pub fn new(params: NbtiParams) -> Result<Self, ModelError> {
        Ok(NbtiModel {
            params: params.validated()?,
        })
    }

    /// The paper's PTM-90nm calibration.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; mirrors [`NbtiModel::new`].
    pub fn ptm90() -> Result<Self, ModelError> {
        NbtiModel::new(NbtiParams::ptm90()?)
    }

    /// Borrow the underlying calibration.
    pub fn params(&self) -> &NbtiParams {
        &self.params
    }

    /// The temperature-dependent pre-factor `K_v(T)` in `V / s^(1/4)`.
    pub fn kv(&self, temp: Kelvin) -> f64 {
        self.params.kv_ref * kv_temperature_factor(self.params.e_d, temp, self.params.temp_ref)
    }

    /// Threshold shift in volts under DC stress of duration `t` at `temp`
    /// (eq. 5 with eq. 12): `ΔV_th = K_v(T) · t^(1/4)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for negative times or non-physical
    /// temperatures.
    pub fn delta_vth_dc(&self, t: Seconds, temp: Kelvin) -> Result<f64, ModelError> {
        check_range("t", t.0, 0.0, f64::MAX, "non-negative seconds")?;
        check_temp("temp", temp)?;
        check_finite("delta_vth", self.kv(temp) * t.0.powf(0.25))
    }

    /// Threshold shift in volts under periodic AC stress at a fixed
    /// temperature: `ΔV_th = K_v(T) · S_n · τ^(1/4)` (eqs. 9–12).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid times or temperatures.
    pub fn delta_vth_ac(
        &self,
        total_time: Seconds,
        temp: Kelvin,
        stress: &AcStress,
    ) -> Result<f64, ModelError> {
        check_range(
            "total_time",
            total_time.0,
            0.0,
            f64::MAX,
            "non-negative seconds",
        )?;
        check_temp("temp", temp)?;
        if total_time.0 == 0.0 {
            return Ok(0.0);
        }
        let n = stress.cycles_in(total_time);
        check_finite("delta_vth", self.kv(temp) * stress.trap_factor(n))
    }

    /// Threshold shift in volts under the paper's temperature-aware
    /// active/standby schedule: builds the equivalent cycle (eqs. 17–19) and
    /// evaluates the AC model at the active temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid times.
    pub fn delta_vth(
        &self,
        total_time: Seconds,
        schedule: &ModeSchedule,
        stress: &PmosStress,
    ) -> Result<f64, ModelError> {
        check_range(
            "total_time",
            total_time.0,
            0.0,
            f64::MAX,
            "non-negative seconds",
        )?;
        if total_time.0 == 0.0 {
            return Ok(0.0);
        }
        let eq = EquivalentCycle::build(&self.params, schedule, stress)?;
        if eq.stress.duty_cycle() == 0.0 {
            return Ok(0.0);
        }
        // The number of cycles is governed by the *real* mode period; the
        // equivalent period only rescales each cycle's worth of damage.
        let n = ((total_time.0 / schedule.period().0).floor() as u64).max(1);
        check_finite(
            "delta_vth",
            self.kv(schedule.temp_active()) * eq.stress.trap_factor(n),
        )
    }

    /// One stress phase followed by one recovery phase (the classic
    /// measurement transient, Fig. 1's single cycle): returns
    /// `(ΔV_th at end of stress, ΔV_th after recovery)`.
    ///
    /// The stress phase follows the DC power law at `temp`; the recovery
    /// phase follows eq. 6 and is treated as temperature-insensitive.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for non-positive stress time, negative
    /// recovery time, or a non-physical temperature.
    pub fn stress_recovery_transient(
        &self,
        t_stress: Seconds,
        t_recovery: Seconds,
        temp: Kelvin,
    ) -> Result<(f64, f64), ModelError> {
        check_range(
            "t_stress",
            t_stress.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            "positive seconds",
        )?;
        check_range(
            "t_recovery",
            t_recovery.0,
            0.0,
            f64::MAX,
            "non-negative seconds",
        )?;
        let peak = self.delta_vth_dc(t_stress, temp)?;
        let frac = crate::rd::recovery_fraction(t_recovery.0, t_stress.0)?;
        Ok((peak, peak * frac))
    }

    /// Threshold shift under an arbitrary repeating temperature/stress
    /// trace (e.g. a measured thermal profile from `relia-thermal`): the
    /// trace describes one macro-cycle, repeated until `total_time`.
    ///
    /// This generalizes [`NbtiModel::delta_vth`] beyond the two-mode
    /// abstraction; with a two-interval trace the results coincide.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid times or trace intervals.
    pub fn delta_vth_trace(
        &self,
        total_time: Seconds,
        trace: &[crate::equivalent::StressInterval],
        temp_ref: Kelvin,
    ) -> Result<f64, ModelError> {
        check_range(
            "total_time",
            total_time.0,
            0.0,
            f64::MAX,
            "non-negative seconds",
        )?;
        if total_time.0 == 0.0 {
            return Ok(0.0);
        }
        let eq = crate::equivalent::EquivalentCycle::from_trace(&self.params, trace, temp_ref)?;
        if eq.stress.duty_cycle() == 0.0 {
            return Ok(0.0);
        }
        let real_period: f64 = trace.iter().map(|iv| iv.duration.0).sum();
        let n = ((total_time.0 / real_period).floor() as u64).max(1);
        check_finite("delta_vth", self.kv(temp_ref) * eq.stress.trap_factor(n))
    }

    /// Threshold shift with a *permanent* (unrecoverable) damage component
    /// — the paper's discussion of high-k / long-term stress where part of
    /// the degradation "cannot be recovered".
    ///
    /// A fraction `permanent_fraction` of the damage accumulates on pure
    /// stress time with no recovery benefit
    /// (`ΔV_th,perm = K_v·(t_stress,eq)^(1/4)`); the rest follows the
    /// recoverable AC model. With `permanent_fraction = 0` this equals
    /// [`NbtiModel::delta_vth`]; the permanent component is always at least
    /// as large as the recoverable one (recovery only helps).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid times or a fraction outside
    /// `[0, 1]`.
    pub fn delta_vth_with_permanent(
        &self,
        total_time: Seconds,
        schedule: &ModeSchedule,
        stress: &PmosStress,
        permanent_fraction: f64,
    ) -> Result<f64, ModelError> {
        check_range("permanent_fraction", permanent_fraction, 0.0, 1.0, "[0, 1]")?;
        let recoverable = self.delta_vth(total_time, schedule, stress)?;
        if permanent_fraction == 0.0 {
            return Ok(recoverable);
        }
        let eq = EquivalentCycle::build(&self.params, schedule, stress)?;
        let n = ((total_time.0 / schedule.period().0).floor() as u64).max(1);
        let total_stress_seconds = eq.t_eq_stress * n as f64;
        let permanent = self.kv(schedule.temp_active()) * total_stress_seconds.powf(0.25);
        check_finite(
            "delta_vth",
            (1.0 - permanent_fraction) * recoverable + permanent_fraction * permanent,
        )
    }

    /// Like [`NbtiModel::delta_vth`], but for a device whose *actual* initial
    /// threshold differs from the nominal calibration point (process
    /// variation, dual-V_th cells). The degradation rate scales with the gate
    /// overdrive per eq. 23: `K_v ∝ sqrt(V_dd − V_th)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid times or a threshold at/above
    /// `V_dd`.
    pub fn delta_vth_with_vth0(
        &self,
        total_time: Seconds,
        schedule: &ModeSchedule,
        stress: &PmosStress,
        vth0: Volts,
    ) -> Result<f64, ModelError> {
        check_range("vth0", vth0.0, 0.0, self.params.vdd.0 - 1e-6, "[0, vdd)")?;
        let base = self.delta_vth(total_time, schedule, stress)?;
        let overdrive = self.params.vdd.0 - vth0.0;
        // eq. 23: sqrt(V_gs − V_th) prefactor times the exp(E_ox/E_0)
        // oxide-field factor, both referenced to the nominal overdrive.
        let scale = (overdrive / self.params.overdrive()).sqrt()
            * ((overdrive - self.params.overdrive()) / self.params.field_scale.0).exp();
        check_finite("delta_vth", base * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalent::Ras;

    fn model() -> NbtiModel {
        NbtiModel::ptm90().unwrap()
    }

    fn schedule(temp_standby: f64, standby_weight: f64) -> ModeSchedule {
        ModeSchedule::new(
            Ras::new(1.0, standby_weight).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(temp_standby),
        )
        .unwrap()
    }

    #[test]
    fn dc_shift_monotone_in_time_and_temperature() {
        let m = model();
        let a = m.delta_vth_dc(Seconds(1.0e6), Kelvin(400.0)).unwrap();
        let b = m.delta_vth_dc(Seconds(1.0e8), Kelvin(400.0)).unwrap();
        let c = m.delta_vth_dc(Seconds(1.0e8), Kelvin(330.0)).unwrap();
        assert!(b > a);
        assert!(c < b);
    }

    #[test]
    fn ac_is_below_dc() {
        let m = model();
        let ac = AcStress::new(0.5, Seconds(1.0e-3)).unwrap();
        let dc = m.delta_vth_dc(Seconds(1.0e8), Kelvin(400.0)).unwrap();
        let acv = m.delta_vth_ac(Seconds(1.0e8), Kelvin(400.0), &ac).unwrap();
        assert!(acv < dc);
        // Long-run AC/DC ratio: (0.5/1.5)^(1/4) ≈ 0.76.
        assert!((acv / dc - 0.7598).abs() < 0.01);
    }

    #[test]
    fn schedule_shift_between_best_and_worst_dc() {
        let m = model();
        let s = schedule(330.0, 9.0);
        let worst = m
            .delta_vth(Seconds(1.0e8), &s, &PmosStress::worst_case())
            .unwrap();
        let best = m
            .delta_vth(Seconds(1.0e8), &s, &PmosStress::best_case())
            .unwrap();
        let dc = m.delta_vth_dc(Seconds(1.0e8), Kelvin(400.0)).unwrap();
        assert!(best < worst);
        assert!(worst < dc);
        assert!(best > 0.0);
    }

    #[test]
    fn paper_table1_shape_hot_standby_increases_with_standby_share() {
        // When T_standby = T_active = 400 K, more standby (full stress) means
        // more degradation.
        let m = model();
        let mut prev = 0.0;
        for w in [1.0, 3.0, 5.0, 7.0, 9.0] {
            let d = m
                .delta_vth(
                    Seconds(1.0e8),
                    &schedule(400.0, w),
                    &PmosStress::worst_case(),
                )
                .unwrap();
            assert!(d > prev, "w={w}");
            prev = d;
        }
    }

    #[test]
    fn paper_table1_shape_cool_standby_decreases_with_standby_share() {
        // When T_standby = 330 K the extra standby time is cool enough that
        // degradation *falls* with a growing standby share.
        let m = model();
        let mut prev = f64::MAX;
        for w in [1.0, 3.0, 5.0, 7.0, 9.0] {
            let d = m
                .delta_vth(
                    Seconds(1.0e8),
                    &schedule(330.0, w),
                    &PmosStress::worst_case(),
                )
                .unwrap();
            assert!(d < prev, "w={w}");
            prev = d;
        }
    }

    #[test]
    fn paper_table1_shape_370k_is_ras_neutral() {
        // At T_standby ≈ 370 K the two effects cancel and ΔV_th is nearly
        // independent of the active:standby ratio.
        let m = model();
        let d1 = m
            .delta_vth(
                Seconds(1.0e8),
                &schedule(370.0, 1.0),
                &PmosStress::worst_case(),
            )
            .unwrap();
        let d9 = m
            .delta_vth(
                Seconds(1.0e8),
                &schedule(370.0, 9.0),
                &PmosStress::worst_case(),
            )
            .unwrap();
        let spread_370 = (d1 - d9).abs() / d1;
        assert!(spread_370 < 0.06, "370 K spread too wide: {d1} vs {d9}");
        // ... and much narrower than the spreads at 400 K / 330 K standby.
        for temp in [400.0, 330.0] {
            let e1 = m
                .delta_vth(
                    Seconds(1.0e8),
                    &schedule(temp, 1.0),
                    &PmosStress::worst_case(),
                )
                .unwrap();
            let e9 = m
                .delta_vth(
                    Seconds(1.0e8),
                    &schedule(temp, 9.0),
                    &PmosStress::worst_case(),
                )
                .unwrap();
            let spread = (e1 - e9).abs() / e1;
            assert!(
                spread > 2.0 * spread_370,
                "spread at {temp} K ({spread}) should dwarf 370 K spread ({spread_370})"
            );
        }
    }

    #[test]
    fn paper_table1_gap_at_1_to_9_is_several_millivolts() {
        // The paper reports a ~9.4 mV gap between 400 K and 330 K standby at
        // RAS = 1:9; ours should be of the same order.
        let m = model();
        let hot = m
            .delta_vth(
                Seconds(1.0e8),
                &schedule(400.0, 9.0),
                &PmosStress::worst_case(),
            )
            .unwrap();
        let cool = m
            .delta_vth(
                Seconds(1.0e8),
                &schedule(330.0, 9.0),
                &PmosStress::worst_case(),
            )
            .unwrap();
        let gap_mv = (hot - cool) * 1e3;
        assert!(gap_mv > 5.0 && gap_mv < 15.0, "gap = {gap_mv} mV");
    }

    #[test]
    fn zero_time_means_zero_shift() {
        let m = model();
        let s = schedule(330.0, 9.0);
        assert_eq!(
            m.delta_vth(Seconds(0.0), &s, &PmosStress::worst_case())
                .unwrap(),
            0.0
        );
        assert_eq!(m.delta_vth_dc(Seconds(0.0), Kelvin(400.0)).unwrap(), 0.0);
    }

    #[test]
    fn lower_initial_vth_degrades_faster() {
        let m = model();
        let s = schedule(330.0, 9.0);
        let low = m
            .delta_vth_with_vth0(Seconds(1.0e8), &s, &PmosStress::worst_case(), Volts(0.18))
            .unwrap();
        let nom = m
            .delta_vth_with_vth0(Seconds(1.0e8), &s, &PmosStress::worst_case(), Volts(0.22))
            .unwrap();
        let high = m
            .delta_vth_with_vth0(Seconds(1.0e8), &s, &PmosStress::worst_case(), Volts(0.30))
            .unwrap();
        assert!(low > nom && nom > high);
        let base = m
            .delta_vth(Seconds(1.0e8), &s, &PmosStress::worst_case())
            .unwrap();
        assert!((nom - base).abs() < 1e-12);
    }

    #[test]
    fn transient_matches_numerical_rd_shape() {
        // The analytical stress+recovery transient should agree with the
        // full R-D solver on the *recovered fraction* after recovering for
        // the stress duration.
        let m = model();
        let (peak, after) = m
            .stress_recovery_transient(Seconds(1.0e4), Seconds(1.0e4), Kelvin(400.0))
            .unwrap();
        assert!(peak > after && after > 0.0);
        let analytic_frac = after / peak; // 0.5 by eq. 6
        let sys = crate::rd_numeric::RdSystem::default();
        let (n_peak, n_after) =
            crate::rd_numeric::integrate_stress_recovery(&sys, 20.0, 20.0, 200, 0.2).unwrap();
        let numeric_frac = n_after / n_peak;
        assert!(
            (analytic_frac - numeric_frac).abs() < 0.25,
            "analytic {analytic_frac} vs numeric {numeric_frac}"
        );
    }

    #[test]
    fn transient_validates_inputs() {
        let m = model();
        assert!(m
            .stress_recovery_transient(Seconds(0.0), Seconds(1.0), Kelvin(400.0))
            .is_err());
        assert!(m
            .stress_recovery_transient(Seconds(1.0), Seconds(-1.0), Kelvin(400.0))
            .is_err());
    }

    #[test]
    fn trace_model_matches_two_mode_model() {
        use crate::equivalent::StressInterval;
        let m = model();
        let s = schedule(330.0, 9.0);
        let two_mode = m
            .delta_vth(Seconds(1.0e8), &s, &PmosStress::worst_case())
            .unwrap();
        let trace = [
            StressInterval {
                duration: Seconds(100.0),
                temp: Kelvin(400.0),
                stress_fraction: 0.5,
            },
            StressInterval {
                duration: Seconds(900.0),
                temp: Kelvin(330.0),
                stress_fraction: 1.0,
            },
        ];
        let traced = m
            .delta_vth_trace(Seconds(1.0e8), &trace, Kelvin(400.0))
            .unwrap();
        assert!((two_mode - traced).abs() < 1e-12, "{two_mode} vs {traced}");
    }

    #[test]
    fn multi_temperature_trace_interpolates() {
        use crate::equivalent::StressInterval;
        let m = model();
        let mk = |temp: f64| {
            [StressInterval {
                duration: Seconds(1000.0),
                temp: Kelvin(temp),
                stress_fraction: 0.5,
            }]
        };
        let cool = m
            .delta_vth_trace(Seconds(1.0e8), &mk(330.0), Kelvin(400.0))
            .unwrap();
        let mixed = [
            StressInterval {
                duration: Seconds(500.0),
                temp: Kelvin(330.0),
                stress_fraction: 0.5,
            },
            StressInterval {
                duration: Seconds(500.0),
                temp: Kelvin(400.0),
                stress_fraction: 0.5,
            },
        ];
        let mid = m
            .delta_vth_trace(Seconds(1.0e8), &mixed, Kelvin(400.0))
            .unwrap();
        let hot = m
            .delta_vth_trace(Seconds(1.0e8), &mk(400.0), Kelvin(400.0))
            .unwrap();
        assert!(cool < mid && mid < hot);
    }

    #[test]
    fn permanent_fraction_interpolates_upward() {
        let m = model();
        let s = schedule(330.0, 9.0);
        let stress = PmosStress::worst_case();
        let base = m
            .delta_vth_with_permanent(Seconds(1.0e8), &s, &stress, 0.0)
            .unwrap();
        let half = m
            .delta_vth_with_permanent(Seconds(1.0e8), &s, &stress, 0.5)
            .unwrap();
        let full = m
            .delta_vth_with_permanent(Seconds(1.0e8), &s, &stress, 1.0)
            .unwrap();
        let plain = m.delta_vth(Seconds(1.0e8), &s, &stress).unwrap();
        assert!((base - plain).abs() < 1e-15);
        assert!(base < half && half < full, "{base} {half} {full}");
        assert!(m
            .delta_vth_with_permanent(Seconds(1.0), &s, &stress, 1.5)
            .is_err());
    }

    #[test]
    fn non_finite_inputs_are_rejected_not_propagated() {
        // The degradation boundary: no NaN/∞ input reaches the power law,
        // and no non-finite ΔV_th escapes as an Ok value.
        let m = model();
        let s = schedule(330.0, 9.0);
        for bad in [f64::NAN, f64::INFINITY] {
            assert!(m.delta_vth_dc(Seconds(bad), Kelvin(400.0)).is_err());
            assert!(m.delta_vth_dc(Seconds(1.0), Kelvin(bad)).is_err());
            assert!(m
                .delta_vth(Seconds(bad), &s, &PmosStress::worst_case())
                .is_err());
        }
        assert!(crate::equivalent::PmosStress::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn rejects_invalid_vth0() {
        let m = model();
        let s = schedule(330.0, 9.0);
        assert!(m
            .delta_vth_with_vth0(Seconds(1.0), &s, &PmosStress::worst_case(), Volts(1.5))
            .is_err());
    }
}

//! Error type for the NBTI model crate.

use std::error::Error;
use std::fmt;

/// Error returned when model parameters or stress descriptions are invalid.
///
/// ```
/// use relia_core::{ModelError, Ras};
///
/// let err = Ras::new(-1.0, 9.0).unwrap_err();
/// assert!(matches!(err, ModelError::InvalidParameter { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A scalar parameter is outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// A temperature is non-positive or non-finite.
    InvalidTemperature {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value in kelvin.
        kelvin: f64,
    },
    /// The numerical reaction–diffusion solver failed to converge.
    SolverDiverged {
        /// Description of the failing stage.
        stage: &'static str,
    },
    /// A model evaluation produced a non-finite number (NaN or ±∞).
    ///
    /// This is the degradation boundary's structured replacement for letting
    /// a NaN propagate silently into caches, checkpoints, and reports.
    NonFinite {
        /// The quantity that came out non-finite (e.g. `"delta_vth"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(f, "invalid parameter {name} = {value}; expected {expected}"),
            ModelError::InvalidTemperature { name, kelvin } => {
                write!(f, "invalid temperature {name} = {kelvin} K; expected > 0 K")
            }
            ModelError::SolverDiverged { stage } => {
                write!(f, "reaction-diffusion solver diverged during {stage}")
            }
            ModelError::NonFinite { what, value } => {
                write!(f, "model produced a non-finite {what} ({value})")
            }
        }
    }
}

impl Error for ModelError {}

/// Validates that a value lies in `[lo, hi]`, producing a [`ModelError`]
/// otherwise.
pub(crate) fn check_range(
    name: &'static str,
    value: f64,
    lo: f64,
    hi: f64,
    expected: &'static str,
) -> Result<f64, ModelError> {
    if value.is_finite() && value >= lo && value <= hi {
        Ok(value)
    } else {
        Err(ModelError::InvalidParameter {
            name,
            value,
            expected,
        })
    }
}

/// Asserts that a computed output is finite, producing
/// [`ModelError::NonFinite`] otherwise.
pub(crate) fn check_finite(what: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NonFinite { what, value })
    }
}

/// Validates that a temperature is physical.
pub(crate) fn check_temp(
    name: &'static str,
    temp: crate::units::Kelvin,
) -> Result<crate::units::Kelvin, ModelError> {
    if temp.is_physical() {
        Ok(temp)
    } else {
        Err(ModelError::InvalidTemperature {
            name,
            kelvin: temp.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Kelvin;

    #[test]
    fn check_range_accepts_in_range() {
        assert_eq!(check_range("x", 0.5, 0.0, 1.0, "[0,1]"), Ok(0.5));
    }

    #[test]
    fn check_range_rejects_out_of_range() {
        assert!(check_range("x", 1.5, 0.0, 1.0, "[0,1]").is_err());
        assert!(check_range("x", f64::NAN, 0.0, 1.0, "[0,1]").is_err());
    }

    #[test]
    fn check_temp_rejects_nonphysical() {
        assert!(check_temp("t", Kelvin(300.0)).is_ok());
        assert!(check_temp("t", Kelvin(-5.0)).is_err());
    }

    #[test]
    fn check_finite_rejects_nan_and_infinities() {
        assert_eq!(check_finite("delta_vth", 0.03), Ok(0.03));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = check_finite("delta_vth", bad).unwrap_err();
            assert!(matches!(
                err,
                ModelError::NonFinite {
                    what: "delta_vth",
                    ..
                }
            ));
            assert!(err.to_string().contains("non-finite"));
        }
    }

    #[test]
    fn display_is_informative() {
        let err = ModelError::InvalidParameter {
            name: "duty",
            value: 2.0,
            expected: "[0, 1]",
        };
        let s = err.to_string();
        assert!(s.contains("duty") && s.contains('2'));
    }
}

//! Calibrated parameter set for the temperature-aware NBTI model.

use crate::error::{check_range, check_temp, ModelError};
use crate::units::{ElectronVolts, Kelvin, Volts};

/// Parameters of the temperature-aware NBTI model (eqs. 1–19 of the paper).
///
/// The defaults are calibrated to the paper's operating point: a PTM-90nm-like
/// bulk CMOS process with `V_dd = 1.0 V`, `|V_th0| = 220 mV`, and a DC-stress
/// threshold shift of ~35 mV after 10^8 s at 400 K (IBM's "~15% delay impact"
/// anchor). The diffusion activation energy is chosen so that the paper's
/// empirical observation — `T_standby ≈ 370 K` makes ΔV_th insensitive to the
/// active/standby ratio when the active duty cycle is 0.5 — is reproduced.
///
/// ```
/// use relia_core::NbtiParams;
///
/// let p = NbtiParams::ptm90().unwrap();
/// assert_eq!(p.vdd.0, 1.0);
/// assert_eq!(p.vth0.0, 0.22);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NbtiParams {
    /// Supply voltage.
    pub vdd: Volts,
    /// Nominal threshold-voltage magnitude of the PMOS devices.
    pub vth0: Volts,
    /// Velocity saturation index of the alpha-power-law delay model
    /// (1 ≤ α ≤ 2).
    pub alpha: f64,
    /// Pre-factor `K_v` of the threshold shift at the reference temperature,
    /// in `V / s^(1/4)`: `ΔV_th(t) = K_v · t^(1/4)` under DC stress.
    pub kv_ref: f64,
    /// Reference temperature at which [`NbtiParams::kv_ref`] was calibrated.
    pub temp_ref: Kelvin,
    /// Activation energy of the hydrogen diffusion coefficient `D_H`.
    ///
    /// The overall trap-generation activation energy is `E_A ≈ E_D/4`
    /// (eq. 16 with `E_f ≈ E_r`).
    pub e_d: ElectronVolts,
    /// Oxide-field sensitivity of the degradation rate (eq. 23's
    /// `exp(E_ox/E_0)` with the oxide thickness folded in): the rate scales
    /// by `exp(Δ(V_gs − V_th)/field_scale)` per volt of overdrive change.
    pub field_scale: Volts,
}

impl NbtiParams {
    /// The paper's calibration: PTM 90 nm bulk CMOS operating point.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`NbtiParams::validated`] so callers can treat all constructors
    /// uniformly.
    pub fn ptm90() -> Result<Self, ModelError> {
        NbtiParams {
            vdd: Volts(1.0),
            vth0: Volts(0.22),
            alpha: 1.3,
            // 35 mV after 1e8 s of DC stress at 400 K: 0.035 / (1e8)^(1/4).
            kv_ref: 3.5e-4,
            temp_ref: Kelvin(400.0),
            e_d: ElectronVolts(0.295),
            field_scale: Volts(0.26),
        }
        .validated()
    }

    /// Validates all fields, returning `self` on success.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] or
    /// [`ModelError::InvalidTemperature`] when a field is out of range.
    pub fn validated(self) -> Result<Self, ModelError> {
        check_range("vdd", self.vdd.0, 1e-3, 10.0, "(0, 10] V")?;
        check_range("vth0", self.vth0.0, 1e-3, self.vdd.0, "(0, vdd] V")?;
        check_range("alpha", self.alpha, 1.0, 2.0, "[1, 2]")?;
        check_range("kv_ref", self.kv_ref, 0.0, 1.0, "[0, 1] V/s^1/4")?;
        check_temp("temp_ref", self.temp_ref)?;
        check_range("e_d", self.e_d.0, 0.0, 5.0, "[0, 5] eV")?;
        check_range("field_scale", self.field_scale.0, 1e-3, 10.0, "(0, 10] V")?;
        Ok(self)
    }

    /// Gate overdrive `V_dd − V_th0` at the nominal threshold, in volts.
    pub fn overdrive(&self) -> f64 {
        self.vdd.0 - self.vth0.0
    }
}

impl Default for NbtiParams {
    fn default() -> Self {
        // ptm90() cannot fail; unwrap is safe on the built-in constants.
        // relia-lint: allow(unwrap-in-lib)
        Self::ptm90().expect("built-in calibration is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_ptm90() {
        assert_eq!(NbtiParams::default(), NbtiParams::ptm90().unwrap());
    }

    #[test]
    fn validation_rejects_bad_alpha() {
        let p = NbtiParams {
            alpha: 2.5,
            ..NbtiParams::default()
        };
        assert!(p.validated().is_err());
    }

    #[test]
    fn validation_rejects_vth_above_vdd() {
        let p = NbtiParams {
            vth0: Volts(1.5),
            ..NbtiParams::default()
        };
        assert!(p.validated().is_err());
    }

    #[test]
    fn overdrive_is_positive() {
        let p = NbtiParams::default();
        assert!((p.overdrive() - 0.78).abs() < 1e-12);
    }

    #[test]
    fn dc_calibration_anchor() {
        // K_v * (1e8)^(1/4) should be the 35 mV anchor.
        let p = NbtiParams::default();
        let dvth = p.kv_ref * 1.0e8_f64.powf(0.25);
        assert!((dvth - 0.035).abs() < 1e-6);
    }
}

//! Calibration fitting: recover model parameters from measured DC-stress
//! data.
//!
//! Given threshold-shift measurements `(t, T, ΔV_th)` under DC stress, the
//! power law `ΔV_th = K_v(T)·t^(1/4)` with the Arrhenius pre-factor
//! `K_v(T) = K_ref·exp(−(E_D/4k)(1/T − 1/T_ref))` is linear in
//! `(ln K_ref, E_D)` after taking logs:
//!
//! ```text
//! ln ΔV = ln K_ref + (1/4) ln t − (E_D/4k)(1/T − 1/T_ref)
//! ```
//!
//! so a plain least-squares solve recovers the calibration — the same knob
//! a user would turn to match their own silicon instead of the paper's
//! PTM-90nm anchor.

use crate::consts::BOLTZMANN_EV;
use crate::error::ModelError;
use crate::params::NbtiParams;
use crate::units::{ElectronVolts, Kelvin};

/// One DC-stress measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Stress time in seconds.
    pub time: f64,
    /// Stress temperature.
    pub temp: Kelvin,
    /// Measured threshold shift in volts.
    pub delta_vth: f64,
}

/// Result of a calibration fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationFit {
    /// The fitted parameter set (other fields taken from the base).
    pub params: NbtiParams,
    /// Root-mean-square relative residual of the fit.
    pub rms_residual: f64,
}

/// Fits `kv_ref` and `e_d` to DC-stress measurements, keeping every other
/// field of `base` (including `temp_ref`, which anchors the fit).
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when fewer than two
/// measurements are supplied, a measurement is non-physical, or the
/// temperatures are all identical (the activation energy is then
/// unidentifiable).
///
/// ```
/// use relia_core::calib::{fit_dc_measurements, Measurement};
/// use relia_core::{Kelvin, NbtiModel, NbtiParams, Seconds};
///
/// # fn main() -> Result<(), relia_core::ModelError> {
/// // Synthesize "measurements" from the built-in model, then re-fit.
/// let truth = NbtiModel::ptm90()?;
/// let mut meas = Vec::new();
/// for &t in &[1.0e4, 1.0e6, 1.0e8] {
///     for &temp in &[330.0, 370.0, 400.0] {
///         meas.push(Measurement {
///             time: t,
///             temp: Kelvin(temp),
///             delta_vth: truth.delta_vth_dc(Seconds(t), Kelvin(temp))?,
///         });
///     }
/// }
/// let fit = fit_dc_measurements(&NbtiParams::ptm90()?, &meas)?;
/// assert!((fit.params.kv_ref - truth.params().kv_ref).abs() / truth.params().kv_ref < 1e-6);
/// assert!((fit.params.e_d.0 - 0.295).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn fit_dc_measurements(
    base: &NbtiParams,
    measurements: &[Measurement],
) -> Result<CalibrationFit, ModelError> {
    if measurements.len() < 2 {
        return Err(ModelError::InvalidParameter {
            name: "measurements",
            value: measurements.len() as f64,
            expected: "at least 2 points",
        });
    }
    for m in measurements {
        if m.time <= 0.0
            || !m.time.is_finite()
            || !m.temp.is_physical()
            || m.delta_vth <= 0.0
            || !m.delta_vth.is_finite()
        {
            return Err(ModelError::InvalidParameter {
                name: "measurement",
                value: m.delta_vth,
                expected: "positive time/temperature/shift",
            });
        }
    }

    // Design matrix columns: [1, x] with x = −(1/4k)(1/T − 1/T_ref);
    // response y = ln ΔV − (1/4) ln t. Solve the 2x2 normal equations.
    let t_ref = base.temp_ref.0;
    let mut s11 = 0.0;
    let mut s1x = 0.0;
    let mut sxx = 0.0;
    let mut s1y = 0.0;
    let mut sxy = 0.0;
    for m in measurements {
        let x = -(1.0 / (4.0 * BOLTZMANN_EV)) * (1.0 / m.temp.0 - 1.0 / t_ref);
        let y = m.delta_vth.ln() - 0.25 * m.time.ln();
        s11 += 1.0;
        s1x += x;
        sxx += x * x;
        s1y += y;
        sxy += x * y;
    }
    let det = s11 * sxx - s1x * s1x;
    if det.abs() < 1e-18 {
        return Err(ModelError::InvalidParameter {
            name: "measurements",
            value: det,
            expected: "at least two distinct temperatures",
        });
    }
    let ln_kref = (s1y * sxx - s1x * sxy) / det;
    let e_d = (s11 * sxy - s1x * s1y) / det;

    let params = NbtiParams {
        kv_ref: ln_kref.exp(),
        e_d: ElectronVolts(e_d),
        ..base.clone()
    }
    .validated()?;

    // Relative residuals against the fitted model.
    let mut ss = 0.0;
    for m in measurements {
        let factor = (-(e_d / (4.0 * BOLTZMANN_EV)) * (1.0 / m.temp.0 - 1.0 / t_ref)).exp();
        let predicted = params.kv_ref * factor * m.time.powf(0.25);
        let rel = (predicted - m.delta_vth) / m.delta_vth;
        ss += rel * rel;
    }
    Ok(CalibrationFit {
        params,
        rms_residual: (ss / measurements.len() as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NbtiModel;
    use crate::units::Seconds;

    fn synthetic(noise: f64) -> Vec<Measurement> {
        let truth = NbtiModel::ptm90().unwrap();
        let mut out = Vec::new();
        let mut k = 0u32;
        for &t in &[1.0e3, 1.0e5, 1.0e7, 1.0e8] {
            for &temp in &[320.0, 350.0, 380.0, 400.0] {
                let dv = truth.delta_vth_dc(Seconds(t), Kelvin(temp)).unwrap();
                // Deterministic pseudo-noise, alternating sign.
                k += 1;
                let wiggle = 1.0 + noise * if k.is_multiple_of(2) { 1.0 } else { -1.0 };
                out.push(Measurement {
                    time: t,
                    temp: Kelvin(temp),
                    delta_vth: dv * wiggle,
                });
            }
        }
        out
    }

    #[test]
    fn exact_data_recovers_truth() {
        let fit = fit_dc_measurements(&NbtiParams::ptm90().unwrap(), &synthetic(0.0)).unwrap();
        assert!((fit.params.kv_ref - 3.5e-4).abs() / 3.5e-4 < 1e-9);
        assert!((fit.params.e_d.0 - 0.295).abs() < 1e-9);
        assert!(fit.rms_residual < 1e-12);
    }

    #[test]
    fn noisy_data_recovers_truth_approximately() {
        let fit = fit_dc_measurements(&NbtiParams::ptm90().unwrap(), &synthetic(0.05)).unwrap();
        assert!(
            (fit.params.kv_ref - 3.5e-4).abs() / 3.5e-4 < 0.1,
            "kv {}",
            fit.params.kv_ref
        );
        assert!(
            (fit.params.e_d.0 - 0.295).abs() < 0.08,
            "e_d {}",
            fit.params.e_d.0
        );
        assert!(fit.rms_residual > 0.0 && fit.rms_residual < 0.1);
    }

    #[test]
    fn single_temperature_is_rejected() {
        let truth = NbtiModel::ptm90().unwrap();
        let meas: Vec<Measurement> = [1.0e4, 1.0e6]
            .iter()
            .map(|&t| Measurement {
                time: t,
                temp: Kelvin(400.0),
                delta_vth: truth.delta_vth_dc(Seconds(t), Kelvin(400.0)).unwrap(),
            })
            .collect();
        // Same temperature everywhere: E_D unidentifiable... but the design
        // matrix is singular only when x is constant, which it is here.
        assert!(fit_dc_measurements(&NbtiParams::ptm90().unwrap(), &meas).is_err());
    }

    #[test]
    fn too_few_points_rejected() {
        let meas = [Measurement {
            time: 1.0e4,
            temp: Kelvin(400.0),
            delta_vth: 0.01,
        }];
        assert!(fit_dc_measurements(&NbtiParams::ptm90().unwrap(), &meas).is_err());
    }

    #[test]
    fn bad_measurement_rejected() {
        let meas = [
            Measurement {
                time: -1.0,
                temp: Kelvin(400.0),
                delta_vth: 0.01,
            },
            Measurement {
                time: 1.0e4,
                temp: Kelvin(350.0),
                delta_vth: 0.01,
            },
        ];
        assert!(fit_dc_measurements(&NbtiParams::ptm90().unwrap(), &meas).is_err());
    }
}

//! Multi-cycle AC-stress model (eqs. 7–11 of the paper, after Kumar et al.).
//!
//! Under periodic stress/recovery with duty cycle `c` and period `τ`, the
//! interface-trap density after `n` cycles is `N_it(n) = S_n · A·τ^(1/4)`,
//! where the dimensionless sequence `S_n` obeys
//!
//! ```text
//! S_1     = c^(1/4) / (1 + β)
//! S_{n+1} = S_n + c / (4 (1 + β) S_n^3)
//! β       = sqrt((1 − c) / 2)
//! ```
//!
//! For large `n` the recursion admits the closed form
//! `S_n = (S_1^4 + (n−1)·c/(1+β))^(1/4)`, which this module uses as its fast
//! path; the exact recursion remains available for validation.

use crate::error::{check_range, ModelError};
use crate::units::Seconds;

/// A periodic stress pattern: fraction `duty_cycle` of each `period` is
/// spent under stress.
///
/// ```
/// use relia_core::ac::AcStress;
/// use relia_core::units::Seconds;
///
/// let ac = AcStress::new(0.5, Seconds(1e-3)).unwrap();
/// assert_eq!(ac.duty_cycle(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcStress {
    duty_cycle: f64,
    period: Seconds,
}

impl AcStress {
    /// Creates a stress pattern with stress-phase duty cycle
    /// `duty_cycle ∈ [0, 1]` and a positive period.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a duty cycle outside
    /// `[0, 1]` or a non-positive period.
    pub fn new(duty_cycle: f64, period: Seconds) -> Result<Self, ModelError> {
        check_range("duty_cycle", duty_cycle, 0.0, 1.0, "[0, 1]")?;
        check_range(
            "period",
            period.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            "positive seconds",
        )?;
        Ok(AcStress { duty_cycle, period })
    }

    /// Stress-phase duty cycle `c`.
    pub fn duty_cycle(&self) -> f64 {
        self.duty_cycle
    }

    /// Cycle period `τ`.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Number of whole cycles in `total_time` (at least 1 when
    /// `total_time ≥ period`, clamped to 1 below that).
    pub fn cycles_in(&self, total_time: Seconds) -> u64 {
        ((total_time.0 / self.period.0).floor() as u64).max(1)
    }

    /// The dimensionless trap factor `S_n · τ^(1/4)` after `n` cycles, i.e.
    /// `N_it / A`. Multiplying by `K_v` instead of `A` yields `ΔV_th`.
    pub fn trap_factor(&self, n: u64) -> f64 {
        s_n(self.duty_cycle, n) * self.period.0.powf(0.25)
    }
}

/// The `β = sqrt((1 − c)/2)` term of the recursion.
pub fn beta(duty_cycle: f64) -> f64 {
    ((1.0 - duty_cycle) / 2.0).sqrt()
}

/// First-cycle value `S_1 = c^(1/4) / (1 + β)` (eq. 9).
pub fn s1(duty_cycle: f64) -> f64 {
    duty_cycle.powf(0.25) / (1.0 + beta(duty_cycle))
}

/// Exact evaluation of the recursion (eq. 10) by iterating `n − 1` steps.
///
/// Intended for validation and small `n`; use [`s_n_closed`] in production
/// paths. Returns 0 for `c = 0` (no stress at all).
///
/// ```
/// use relia_core::ac::{s_n_closed, s_n_exact};
///
/// let exact = s_n_exact(0.5, 10_000);
/// let fast = s_n_closed(0.5, 10_000);
/// assert!((exact - fast).abs() / exact < 1e-3);
/// ```
pub fn s_n_exact(duty_cycle: f64, n: u64) -> f64 {
    if duty_cycle == 0.0 || n == 0 {
        return 0.0;
    }
    let b = beta(duty_cycle);
    let mut s = s1(duty_cycle);
    for _ in 1..n {
        s += duty_cycle / (4.0 * (1.0 + b) * s * s * s);
    }
    s
}

/// Closed-form evaluation `S_n = (S_1^4 + (n−1)·c/(1+β))^(1/4)`.
///
/// This is the continuum limit of the recursion. It undershoots
/// [`s_n_exact`] for small `n` at low duty cycles (the first few recursion
/// steps are not infinitesimal); use [`s_n`] for an evaluator that is
/// accurate everywhere. Returns 0 for `c = 0`.
pub fn s_n_closed(duty_cycle: f64, n: u64) -> f64 {
    if duty_cycle == 0.0 || n == 0 {
        return 0.0;
    }
    let b = beta(duty_cycle);
    let s1 = s1(duty_cycle);
    (s1.powi(4) + (n - 1) as f64 * duty_cycle / (1.0 + b)).powf(0.25)
}

/// Number of recursion steps [`s_n`] runs exactly before switching to the
/// continuum closed form.
const EXACT_PREFIX: u64 = 4096;

/// Accurate fast evaluator: exact recursion for the first 4096 cycles,
/// then the continuum closed form anchored at the last exact value. Relative error versus [`s_n_exact`] stays below 0.1%
/// across the full `(c, n)` range.
///
/// ```
/// use relia_core::ac::{s_n, s_n_exact};
///
/// for &c in &[0.05, 0.5, 0.95] {
///     for &n in &[1u64, 2, 100, 100_000] {
///         let rel = (s_n(c, n) - s_n_exact(c, n)).abs() / s_n_exact(c, n).max(1e-30);
///         assert!(rel < 1e-3);
///     }
/// }
/// ```
pub fn s_n(duty_cycle: f64, n: u64) -> f64 {
    if duty_cycle == 0.0 || n == 0 {
        return 0.0;
    }
    if n <= EXACT_PREFIX {
        return s_n_exact(duty_cycle, n);
    }
    let b = beta(duty_cycle);
    let anchor = s_n_exact(duty_cycle, EXACT_PREFIX);
    (anchor.powi(4) + (n - EXACT_PREFIX) as f64 * duty_cycle / (1.0 + b)).powf(0.25)
}

/// Ratio of AC-stress to DC-stress degradation at the same elapsed time, in
/// the long-cycle-count limit: `(c / (1 + β))^(1/4)`.
///
/// ```
/// use relia_core::ac::ac_to_dc_ratio;
///
/// // A 50% duty cycle costs only ~76% of the DC degradation.
/// let r = ac_to_dc_ratio(0.5);
/// assert!((r - 0.7598).abs() < 1e-3);
/// ```
pub fn ac_to_dc_ratio(duty_cycle: f64) -> f64 {
    if duty_cycle == 0.0 {
        return 0.0;
    }
    (duty_cycle / (1.0 + beta(duty_cycle))).powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_limit_recovers_power_law() {
        // c = 1: β = 0, S_n = n^(1/4); N_it grows as (n τ)^(1/4) = t^(1/4).
        for n in [1u64, 10, 100, 1000] {
            let s = s_n_closed(1.0, n);
            assert!((s - (n as f64).powf(0.25)).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn exact_and_hybrid_agree_everywhere() {
        for &c in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            for &n in &[1u64, 2, 10, 100, 5_000, 50_000] {
                let e = s_n_exact(c, n);
                let f = s_n(c, n);
                let rel = (e - f).abs() / e.max(1e-30);
                assert!(rel < 1e-3, "c={c} n={n}: exact={e} hybrid={f}");
            }
        }
    }

    #[test]
    fn closed_form_matches_exact_for_large_n() {
        for &c in &[0.25, 0.5, 0.95] {
            let n = 100_000;
            let e = s_n_exact(c, n);
            let f = s_n_closed(c, n);
            let rel = (e - f).abs() / e;
            assert!(rel < 5e-3, "c={c}: exact={e} closed={f}");
        }
    }

    #[test]
    fn first_cycle_matches_s1() {
        for &c in &[0.1, 0.5, 0.9] {
            assert!((s_n_exact(c, 1) - s1(c)).abs() < 1e-15);
            assert!((s_n_closed(c, 1) - s1(c)).abs() < 1e-15);
        }
    }

    #[test]
    fn s_n_monotone_in_duty_cycle() {
        let n = 1000;
        let mut prev = 0.0;
        for k in 0..=10 {
            let c = k as f64 / 10.0;
            let s = s_n_closed(c, n);
            assert!(s >= prev, "c={c}");
            prev = s;
        }
    }

    #[test]
    fn s_n_monotone_in_n() {
        for &c in &[0.2, 0.8] {
            let mut prev = 0.0;
            for n in [1u64, 5, 50, 500, 50_000] {
                let s = s_n_closed(c, n);
                assert!(s > prev);
                prev = s;
            }
        }
    }

    #[test]
    fn zero_duty_cycle_means_no_damage() {
        assert_eq!(s_n_exact(0.0, 100), 0.0);
        assert_eq!(s_n_closed(0.0, 100), 0.0);
        assert_eq!(ac_to_dc_ratio(0.0), 0.0);
    }

    #[test]
    fn trap_factor_is_period_insensitive_at_fixed_total_time() {
        // The long-time limit N_it ≈ A (c t / (1+β))^(1/4) does not depend
        // on how the same total time is chopped into cycles.
        let total = Seconds(1.0e8);
        let a = AcStress::new(0.5, Seconds(100.0)).unwrap();
        let b = AcStress::new(0.5, Seconds(10_000.0)).unwrap();
        let fa = a.trap_factor(a.cycles_in(total));
        let fb = b.trap_factor(b.cycles_in(total));
        assert!((fa - fb).abs() / fa < 1e-2, "fa={fa} fb={fb}");
    }

    #[test]
    fn ac_stress_validation() {
        assert!(AcStress::new(1.5, Seconds(1.0)).is_err());
        assert!(AcStress::new(0.5, Seconds(0.0)).is_err());
        assert!(AcStress::new(0.5, Seconds(-1.0)).is_err());
    }

    #[test]
    fn cycles_in_clamps_to_one() {
        let a = AcStress::new(0.5, Seconds(100.0)).unwrap();
        assert_eq!(a.cycles_in(Seconds(5.0)), 1);
        assert_eq!(a.cycles_in(Seconds(250.0)), 2);
    }

    #[test]
    fn ac_dc_ratio_limits() {
        assert!((ac_to_dc_ratio(1.0) - 1.0).abs() < 1e-12);
        assert!(ac_to_dc_ratio(0.5) < 1.0);
    }
}

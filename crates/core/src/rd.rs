//! Analytical reaction–diffusion (R-D) expressions for a single stress or
//! recovery phase (eqs. 5–6 of the paper).
//!
//! Under DC stress with quasi-equilibrium and a thick oxide, the interface
//! trap density follows the quarter-power law
//! `N_it(t) = 1.16 (k_f N_0 / k_r)^(1/2) (D_H t)^(1/4) = A t^(1/4)`.
//! When the stress is removed after `t_stress`, traps anneal following
//! `N_it(t) = N_it0 / (1 + sqrt(t / t_stress))`.

use crate::error::{check_range, ModelError};

/// Interface-trap density after DC stress of duration `t` with power-law
/// pre-factor `a` (eq. 5).
///
/// ```
/// use relia_core::rd::dc_stress;
///
/// let n1 = dc_stress(1.0, 16.0);
/// assert!((n1 - 2.0).abs() < 1e-12); // 16^(1/4) = 2
/// ```
pub fn dc_stress(a: f64, t: f64) -> f64 {
    debug_assert!(t >= 0.0, "stress time must be non-negative");
    a * t.powf(0.25)
}

/// Fraction of interface traps remaining after a recovery of duration `t`
/// following a stress of duration `t_stress` (eq. 6).
///
/// Returns `N_it(t)/N_it0 = 1 / (1 + sqrt(t/t_stress))`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when `t` is negative or
/// `t_stress` is non-positive.
///
/// ```
/// use relia_core::rd::recovery_fraction;
///
/// // After recovering for as long as the stress lasted, half the traps
/// // remain.
/// let f = recovery_fraction(100.0, 100.0).unwrap();
/// assert!((f - 0.5).abs() < 1e-12);
/// ```
pub fn recovery_fraction(t: f64, t_stress: f64) -> Result<f64, ModelError> {
    check_range("t", t, 0.0, f64::MAX, "non-negative seconds")?;
    check_range(
        "t_stress",
        t_stress,
        f64::MIN_POSITIVE,
        f64::MAX,
        "positive seconds",
    )?;
    Ok(1.0 / (1.0 + (t / t_stress).sqrt()))
}

/// Power-law pre-factor `A = 1.16 sqrt(k_f N_0 / k_r) D_H^(1/4)` from the
/// microscopic R-D rate constants (eq. 5).
///
/// All quantities are in consistent (user-chosen) units; the result carries
/// units of `traps / time^(1/4)`.
pub fn power_law_prefactor(k_f: f64, k_r: f64, n_0: f64, d_h: f64) -> f64 {
    debug_assert!(k_f >= 0.0 && k_r > 0.0 && n_0 >= 0.0 && d_h >= 0.0);
    1.16 * (k_f * n_0 / k_r).sqrt() * d_h.powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_stress_quarter_power_scaling() {
        // Scaling time by 16x doubles the trap count.
        let n1 = dc_stress(2.0, 100.0);
        let n2 = dc_stress(2.0, 1600.0);
        assert!((n2 / n1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dc_stress_zero_time_gives_zero() {
        assert_eq!(dc_stress(3.0, 0.0), 0.0);
    }

    #[test]
    fn recovery_starts_at_unity() {
        assert!((recovery_fraction(0.0, 50.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_is_monotone_decreasing() {
        let mut prev = 1.0;
        for k in 1..=10 {
            let f = recovery_fraction(k as f64 * 10.0, 100.0).unwrap();
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn recovery_never_completes() {
        // Even after 1000x the stress duration a residual remains: the R-D
        // model's partial-recovery signature.
        let f = recovery_fraction(1.0e5, 100.0).unwrap();
        assert!(f > 0.0 && f < 0.05);
    }

    #[test]
    fn recovery_rejects_bad_inputs() {
        assert!(recovery_fraction(-1.0, 100.0).is_err());
        assert!(recovery_fraction(1.0, 0.0).is_err());
    }

    #[test]
    fn prefactor_combines_rates() {
        let a = power_law_prefactor(1.0, 4.0, 1.0, 16.0);
        // 1.16 * sqrt(1/4) * 2 = 1.16
        assert!((a - 1.16).abs() < 1e-12);
    }
}

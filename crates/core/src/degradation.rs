//! Alpha-power-law gate-delay degradation from a threshold shift
//! (eqs. 20–22 of the paper, after Sakurai–Newton).
//!
//! The gate delay is `d = K C_L V_dd / (V_g − V_th)^α`. A threshold shift
//! `ΔV_th` therefore multiplies the delay by
//! `(1 − ΔV_th/(V_g − V_th))^{−α}`; the paper's first-order expansion keeps
//! only the leading term, `Δd/d ≈ α·ΔV_th/(V_g − V_th)`.

use crate::error::{check_range, ModelError};
use crate::params::NbtiParams;

/// Converts PMOS threshold shifts into relative gate-delay degradation.
///
/// ```
/// use relia_core::{DelayDegradation, NbtiParams};
///
/// let dd = DelayDegradation::new(&NbtiParams::ptm90().unwrap());
/// // 30 mV of threshold shift costs ~5% of gate delay at the paper's
/// // operating point (α = 1.3, overdrive 0.78 V).
/// let frac = dd.linear(0.030).unwrap();
/// assert!((frac - 0.05).abs() < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayDegradation {
    alpha: f64,
    overdrive: f64,
}

impl DelayDegradation {
    /// Builds the converter from a model calibration (`V_g = V_dd`,
    /// nominal overdrive `V_dd − V_th0`).
    pub fn new(params: &NbtiParams) -> Self {
        DelayDegradation {
            alpha: params.alpha,
            overdrive: params.overdrive(),
        }
    }

    /// Builds the converter for a device with a non-nominal initial
    /// threshold: the overdrive becomes `V_dd − vth0`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `vth0 ≥ V_dd`.
    pub fn with_vth0(params: &NbtiParams, vth0: f64) -> Result<Self, ModelError> {
        let overdrive = params.vdd.0 - vth0;
        check_range(
            "overdrive",
            overdrive,
            f64::MIN_POSITIVE,
            10.0,
            "positive volts",
        )?;
        Ok(DelayDegradation {
            alpha: params.alpha,
            overdrive,
        })
    }

    /// First-order relative delay increase `Δd/d = α ΔV_th / (V_g − V_th0)`
    /// (eq. 22) — the form the paper uses for its circuit analysis.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a negative shift or a
    /// shift exceeding the overdrive.
    pub fn linear(&self, delta_vth: f64) -> Result<f64, ModelError> {
        check_range(
            "delta_vth",
            delta_vth,
            0.0,
            self.overdrive,
            "[0, overdrive]",
        )?;
        Ok(self.alpha * delta_vth / self.overdrive)
    }

    /// Exact relative delay increase
    /// `Δd/d = (1 − ΔV_th/(V_g − V_th0))^{−α} − 1` (eq. 21).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a negative shift or a
    /// shift reaching the overdrive (delay diverges).
    pub fn exact(&self, delta_vth: f64) -> Result<f64, ModelError> {
        check_range(
            "delta_vth",
            delta_vth,
            0.0,
            self.overdrive * (1.0 - 1e-9),
            "[0, overdrive)",
        )?;
        Ok((1.0 - delta_vth / self.overdrive).powf(-self.alpha) - 1.0)
    }

    /// The velocity saturation index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The gate overdrive `V_g − V_th0` in volts.
    pub fn overdrive(&self) -> f64 {
        self.overdrive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd() -> DelayDegradation {
        DelayDegradation::new(&NbtiParams::default())
    }

    #[test]
    fn zero_shift_means_zero_degradation() {
        assert_eq!(dd().linear(0.0).unwrap(), 0.0);
        assert_eq!(dd().exact(0.0).unwrap(), 0.0);
    }

    #[test]
    fn exact_dominates_linear() {
        let d = dd();
        for &v in &[0.005, 0.02, 0.05, 0.1] {
            let lin = d.linear(v).unwrap();
            let ex = d.exact(v).unwrap();
            assert!(ex > lin, "shift {v}: exact {ex} <= linear {lin}");
        }
    }

    #[test]
    fn exact_converges_to_linear_for_small_shifts() {
        let d = dd();
        let v = 1e-4;
        let lin = d.linear(v).unwrap();
        let ex = d.exact(v).unwrap();
        assert!((ex - lin).abs() / lin < 1e-3);
    }

    #[test]
    fn linear_is_exactly_proportional() {
        let d = dd();
        let a = d.linear(0.010).unwrap();
        let b = d.linear(0.020).unwrap();
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_negative_and_excessive_shifts() {
        let d = dd();
        assert!(d.linear(-0.01).is_err());
        assert!(d.linear(1.0).is_err());
        assert!(d.exact(d.overdrive()).is_err());
    }

    #[test]
    fn higher_vth_cell_degrades_less_per_millivolt() {
        // The overdrive shrinks but the *relative sensitivity* grows; what
        // matters to the paper is that a high-V_th cell accumulates a much
        // smaller ΔV_th in the first place (eq. 23), tested in model.rs.
        // Here we verify with_vth0 plumbs the overdrive through.
        let p = NbtiParams::default();
        let low = DelayDegradation::with_vth0(&p, 0.18).unwrap();
        assert!((low.overdrive() - 0.82).abs() < 1e-12);
        assert!(DelayDegradation::with_vth0(&p, 1.0).is_err());
    }
}

//! Physical constants used by the NBTI and leakage models.

/// Boltzmann constant in electron-volts per kelvin.
pub const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Thermal voltage `kT/q` in volts at the given temperature.
///
/// ```
/// use relia_core::consts::thermal_voltage;
/// use relia_core::units::Kelvin;
///
/// let vt = thermal_voltage(Kelvin(300.0));
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temp: crate::units::Kelvin) -> f64 {
    BOLTZMANN_EV * temp.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Kelvin;

    #[test]
    fn thermal_voltage_scales_linearly() {
        let v300 = thermal_voltage(Kelvin(300.0));
        let v400 = thermal_voltage(Kelvin(400.0));
        assert!((v400 / v300 - 400.0 / 300.0).abs() < 1e-12);
    }
}

//! Finite-difference solver for the full reaction–diffusion equation system
//! (eqs. 2–4 of the paper).
//!
//! The analytical model in [`crate::rd`] rests on the quasi-equilibrium
//! solution `N_it ∝ t^(1/4)`. This module integrates the underlying PDE/ODE
//! system directly —
//!
//! ```text
//! dN_it/dt = k_f (N_0 − N_it) − k_r N_it C_H(0, t)
//! ∂C_H/∂t  = D_H ∂²C_H/∂x²
//! D_H ∂C_H/∂x |_{x=0} = −dN_it/dt        (each new trap releases one H)
//! ```
//!
//! — so the power law can be *validated* rather than assumed. The solver uses
//! explicit diffusion with a semi-implicit interface reaction, which is
//! stable for `dt ≤ dx²/(2 D_H)`.

use crate::error::ModelError;
use crate::units::Seconds;

/// Dimensionless parameters of the R-D system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdSystem {
    /// Forward dissociation rate `k_f`.
    pub k_f: f64,
    /// Self-annealing rate `k_r`.
    pub k_r: f64,
    /// Initial interface defect concentration `N_0`.
    pub n_0: f64,
    /// Hydrogen diffusion coefficient `D_H`.
    pub d_h: f64,
}

impl Default for RdSystem {
    fn default() -> Self {
        // k_f/k_r chosen small so N_it stays far from the N_0 saturation
        // over the simulated window (the diffusion-limited regime of eq. 5).
        RdSystem {
            k_f: 1.0,
            k_r: 1.0e4,
            n_0: 1.0,
            d_h: 1.0,
        }
    }
}

/// One sampled point of the numerical trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdSample {
    /// Elapsed (dimensionless) time.
    pub time: f64,
    /// Interface trap density `N_it(t)`.
    pub n_it: f64,
    /// Interface hydrogen concentration `C_H(0, t)`.
    pub c_h0: f64,
}

/// Result of a numerical R-D integration.
#[derive(Debug, Clone, PartialEq)]
pub struct RdTrajectory {
    samples: Vec<RdSample>,
    hydrogen_integral: f64,
    final_n_it: f64,
}

impl RdTrajectory {
    /// Sampled `(t, N_it, C_H(0))` points, log-spaced in time.
    pub fn samples(&self) -> &[RdSample] {
        &self.samples
    }

    /// Total hydrogen in the oxide at the end of the run (`∫ C_H dx`).
    /// Conservation demands this equal [`RdTrajectory::final_n_it`].
    pub fn hydrogen_integral(&self) -> f64 {
        self.hydrogen_integral
    }

    /// `N_it` at the end of the run.
    pub fn final_n_it(&self) -> f64 {
        self.final_n_it
    }

    /// Least-squares slope of `log N_it` versus `log t` over samples with
    /// `t ∈ [t_lo, t_hi]` — the measured power-law exponent. The analytical
    /// model predicts 1/4 in the diffusion-limited regime.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SolverDiverged`] when fewer than two samples
    /// fall in the window.
    pub fn power_law_exponent(&self, t_lo: f64, t_hi: f64) -> Result<f64, ModelError> {
        let pts: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(|s| s.time >= t_lo && s.time <= t_hi && s.n_it > 0.0)
            .map(|s| (s.time.ln(), s.n_it.ln()))
            .collect();
        if pts.len() < 2 {
            return Err(ModelError::SolverDiverged {
                stage: "power-law fit window",
            });
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-30 {
            return Err(ModelError::SolverDiverged {
                stage: "degenerate fit window",
            });
        }
        Ok((n * sxy - sx * sy) / denom)
    }
}

/// One implicit backward-Euler step of the coupled interface equations.
///
/// With `c0 = c0_diff + (n_new − n)/dx` substituted into the semi-implicit
/// trap update, `n_new` satisfies the quadratic
/// `a n² + b n − (n_old + dt k_f N_0) = 0` with `a = dt k_r / dx` and
/// `b = 1 + dt k_f + dt k_r (c0_diff − n_old/dx)`; the positive root is
/// returned.
fn implicit_interface_step(
    n_old: f64,
    c0_diff: f64,
    k_f: f64,
    k_r: f64,
    n_0: f64,
    dt: f64,
    dx: f64,
) -> f64 {
    let a = dt * k_r / dx;
    let b = 1.0 + dt * k_f + dt * k_r * (c0_diff - n_old / dx);
    let rhs = n_old + dt * k_f * n_0;
    if a <= 0.0 {
        // k_r = 0: the update is linear.
        return rhs / b.max(1e-300);
    }
    (-b + (b * b + 4.0 * a * rhs).sqrt()) / (2.0 * a)
}

/// Integrates the R-D system under continuous (DC) stress until `t_end`.
///
/// `grid_points` cells of width `dx` discretize the oxide; the domain length
/// `grid_points · dx` must exceed the diffusion length `sqrt(4 D_H t_end)`
/// for the infinite-oxide assumption to hold.
///
/// # Errors
///
/// Returns [`ModelError::SolverDiverged`] when the state goes non-finite or
/// the parameters violate the stability bound.
pub fn integrate_dc(
    sys: &RdSystem,
    t_end: f64,
    grid_points: usize,
    dx: f64,
) -> Result<RdTrajectory, ModelError> {
    if grid_points < 8 || dx <= 0.0 || dx.is_nan() || t_end <= 0.0 || t_end.is_nan() {
        return Err(ModelError::SolverDiverged {
            stage: "grid setup",
        });
    }
    // Explicit-diffusion stability bound with headroom.
    let dt = 0.4 * dx * dx / sys.d_h;
    let steps = (t_end / dt).ceil() as usize;

    let mut c = vec![0.0f64; grid_points];
    let mut n_it = 0.0f64;
    let mut samples = Vec::new();
    let mut next_sample_t = dt;

    let lam = sys.d_h * dt / (dx * dx);
    for step in 0..steps {
        // Diffusion (explicit), with a zero-flux far boundary.
        let mut c_new = c.clone();
        for i in 1..grid_points - 1 {
            c_new[i] = c[i] + lam * (c[i + 1] - 2.0 * c[i] + c[i - 1]);
        }
        c_new[grid_points - 1] =
            c[grid_points - 1] + lam * (c[grid_points - 2] - c[grid_points - 1]);
        // Interface cell diffuses toward the bulk only; the trap-generation
        // source is added after the reaction step below.
        c_new[0] = c[0] + lam * (c[1] - c[0]);

        // Reaction at the interface, fully implicit in (N_it, C_H(0)):
        // the released hydrogen feeds back into the annealing term within
        // the same step, which removes the stiff oscillation an explicit
        // injection would cause. Eliminating C0 leaves a quadratic in n_new.
        let c0_diff = c_new[0];
        let n_new = implicit_interface_step(n_it, c0_diff, sys.k_f, sys.k_r, sys.n_0, dt, dx);
        c_new[0] = c0_diff + (n_new - n_it) / dx;
        n_it = n_new;
        c = c_new;

        if !n_it.is_finite() || !c[0].is_finite() {
            return Err(ModelError::SolverDiverged {
                stage: "time stepping",
            });
        }

        let t = (step + 1) as f64 * dt;
        if t >= next_sample_t {
            samples.push(RdSample {
                time: t,
                n_it,
                c_h0: c[0],
            });
            next_sample_t *= 1.25; // log-spaced sampling
        }
    }

    let hydrogen_integral = c.iter().sum::<f64>() * dx;
    Ok(RdTrajectory {
        samples,
        hydrogen_integral,
        final_n_it: n_it,
    })
}

/// Integrates a stress phase of `t_stress` followed by a recovery phase of
/// `t_recovery` (stress removed: `k_f = 0`), returning `N_it` at the end of
/// each phase.
///
/// # Errors
///
/// Returns [`ModelError::SolverDiverged`] on numerical failure.
pub fn integrate_stress_recovery(
    sys: &RdSystem,
    t_stress: f64,
    t_recovery: f64,
    grid_points: usize,
    dx: f64,
) -> Result<(f64, f64), ModelError> {
    if grid_points < 8
        || dx <= 0.0
        || dx.is_nan()
        || t_stress <= 0.0
        || t_stress.is_nan()
        || t_recovery < 0.0
        || t_recovery.is_nan()
    {
        return Err(ModelError::SolverDiverged {
            stage: "grid setup",
        });
    }
    let dt = 0.4 * dx * dx / sys.d_h;
    let lam = sys.d_h * dt / (dx * dx);
    let mut c = vec![0.0f64; grid_points];
    let mut n_it = 0.0f64;

    let advance = |k_f: f64, duration: f64, n_it: &mut f64, c: &mut Vec<f64>| {
        let steps = (duration / dt).ceil() as usize;
        for _ in 0..steps {
            let mut c_new = c.clone();
            for i in 1..grid_points - 1 {
                c_new[i] = c[i] + lam * (c[i + 1] - 2.0 * c[i] + c[i - 1]);
            }
            c_new[grid_points - 1] =
                c[grid_points - 1] + lam * (c[grid_points - 2] - c[grid_points - 1]);
            c_new[0] = c[0] + lam * (c[1] - c[0]);
            let c0_diff = c_new[0];
            let n_new = implicit_interface_step(*n_it, c0_diff, k_f, sys.k_r, sys.n_0, dt, dx);
            c_new[0] = c0_diff + (n_new - *n_it) / dx;
            *n_it = n_new;
            *c = c_new;
        }
    };

    advance(sys.k_f, t_stress, &mut n_it, &mut c);
    let after_stress = n_it;
    advance(0.0, t_recovery, &mut n_it, &mut c);
    if !n_it.is_finite() {
        return Err(ModelError::SolverDiverged {
            stage: "recovery stepping",
        });
    }
    Ok((after_stress, n_it))
}

/// Integrates `cycles` periods of AC stress (stress for `duty*period`, then
/// recovery for the rest), returning `N_it` at the end of each cycle.
///
/// This is the *numerical* counterpart of the analytical multi-cycle
/// recursion (eqs. 7-11): the analytical model's AC/DC ratio can be
/// validated against it.
///
/// # Errors
///
/// Returns [`ModelError::SolverDiverged`] on bad parameters or numerical
/// failure.
pub fn integrate_ac(
    sys: &RdSystem,
    duty: f64,
    period: Seconds,
    cycles: usize,
    grid_points: usize,
    dx: f64,
) -> Result<Vec<f64>, ModelError> {
    let period = period.0;
    if !(0.0..=1.0).contains(&duty) || period <= 0.0 || cycles == 0 || grid_points < 8 || dx <= 0.0
    {
        return Err(ModelError::SolverDiverged {
            stage: "ac grid setup",
        });
    }
    let dt = 0.4 * dx * dx / sys.d_h;
    let lam = sys.d_h * dt / (dx * dx);
    let mut c = vec![0.0f64; grid_points];
    let mut n_it = 0.0f64;
    let mut ends = Vec::with_capacity(cycles);

    let advance = |k_f: f64, duration: f64, n_it: &mut f64, c: &mut Vec<f64>| {
        let steps = (duration / dt).ceil() as usize;
        for _ in 0..steps {
            let mut c_new = c.clone();
            for i in 1..grid_points - 1 {
                c_new[i] = c[i] + lam * (c[i + 1] - 2.0 * c[i] + c[i - 1]);
            }
            c_new[grid_points - 1] =
                c[grid_points - 1] + lam * (c[grid_points - 2] - c[grid_points - 1]);
            c_new[0] = c[0] + lam * (c[1] - c[0]);
            let c0_diff = c_new[0];
            let n_new = implicit_interface_step(*n_it, c0_diff, k_f, sys.k_r, sys.n_0, dt, dx);
            c_new[0] = c0_diff + (n_new - *n_it) / dx;
            *n_it = n_new;
            *c = c_new;
        }
    };

    for _ in 0..cycles {
        if duty > 0.0 {
            advance(sys.k_f, duty * period, &mut n_it, &mut c);
        }
        if duty < 1.0 {
            advance(0.0, (1.0 - duty) * period, &mut n_it, &mut c);
        }
        if !n_it.is_finite() {
            return Err(ModelError::SolverDiverged {
                stage: "ac stepping",
            });
        }
        ends.push(n_it);
    }
    Ok(ends)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_default(t_end: f64) -> RdTrajectory {
        // Domain 40 units for diffusion length sqrt(4*1*100) = 20.
        integrate_dc(&RdSystem::default(), t_end, 200, 0.2).unwrap()
    }

    #[test]
    fn trap_generation_is_monotone() {
        let traj = run_default(50.0);
        let s = traj.samples();
        assert!(s.len() > 10);
        for w in s.windows(2) {
            assert!(w[1].n_it >= w[0].n_it);
        }
    }

    #[test]
    fn hydrogen_is_conserved() {
        let traj = run_default(50.0);
        let rel = (traj.hydrogen_integral() - traj.final_n_it()).abs() / traj.final_n_it();
        assert!(rel < 0.02, "conservation error {rel}");
    }

    #[test]
    fn power_law_exponent_is_one_quarter() {
        // The headline validation: the full R-D system reproduces the
        // analytical model's t^(1/4) law in the diffusion-limited regime.
        let traj = run_default(100.0);
        let slope = traj.power_law_exponent(5.0, 100.0).unwrap();
        assert!(
            (slope - 0.25).abs() < 0.05,
            "measured exponent {slope}, expected ~0.25"
        );
    }

    #[test]
    fn faster_diffusion_generates_more_traps() {
        let slow = integrate_dc(
            &RdSystem {
                d_h: 0.5,
                ..RdSystem::default()
            },
            20.0,
            200,
            0.2,
        )
        .unwrap();
        let fast = integrate_dc(
            &RdSystem {
                d_h: 2.0,
                ..RdSystem::default()
            },
            20.0,
            200,
            0.2,
        )
        .unwrap();
        assert!(fast.final_n_it() > slow.final_n_it());
    }

    #[test]
    fn recovery_anneals_traps_partially() {
        let sys = RdSystem::default();
        let (after_stress, after_recovery) =
            integrate_stress_recovery(&sys, 20.0, 20.0, 200, 0.2).unwrap();
        assert!(after_recovery < after_stress);
        // Recovery is partial: the analytical model says ~half the traps
        // remain after recovering for the stress duration.
        let frac = after_recovery / after_stress;
        assert!(frac > 0.3 && frac < 0.8, "recovered fraction {frac}");
    }

    #[test]
    fn bad_grid_is_rejected() {
        assert!(integrate_dc(&RdSystem::default(), 10.0, 4, 0.2).is_err());
        assert!(integrate_dc(&RdSystem::default(), 10.0, 100, -1.0).is_err());
        assert!(integrate_dc(&RdSystem::default(), -1.0, 100, 0.2).is_err());
    }

    #[test]
    fn exponent_fit_needs_samples() {
        let traj = run_default(10.0);
        assert!(traj.power_law_exponent(1.0e6, 2.0e6).is_err());
    }

    #[test]
    fn numeric_ac_matches_analytical_ratio() {
        // Validation of the multi-cycle recursion against the full PDE:
        // the numerically integrated 50%-duty AC trajectory lands near the
        // analytical (c/(1+beta))^(1/4) = 0.76 of the DC trajectory. The
        // Kumar recursion is itself an approximation (it under-counts
        // recovery's back-diffusion), so the PDE sits somewhat lower
        // (~0.62); both agree that AC stress is strongly sub-DC and far
        // above the no-recovery duty-only bound c^(1/4) = 0.84 scaled by
        // the *stress-time-only* prediction (0.5 t)^(1/4)/t^(1/4) = 0.84...
        // i.e. the recovery phases genuinely erase damage.
        let sys = RdSystem::default();
        let cycles = 25;
        let period = Seconds(4.0);
        let ac = integrate_ac(&sys, 0.5, period, cycles, 200, 0.2).unwrap();
        let dc = integrate_ac(&sys, 1.0, period, cycles, 200, 0.2).unwrap();
        let ratio = ac.last().unwrap() / dc.last().unwrap();
        let analytic = crate::ac::ac_to_dc_ratio(0.5);
        assert!(
            ratio < 0.85,
            "AC must be clearly below the stress-time bound"
        );
        assert!(
            (ratio - analytic).abs() < 0.2,
            "numeric {ratio} vs analytic {analytic}"
        );
    }

    #[test]
    fn numeric_ac_is_monotone_at_cycle_ends() {
        let sys = RdSystem::default();
        let ends = integrate_ac(&sys, 0.5, Seconds(4.0), 10, 200, 0.2).unwrap();
        for w in ends.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn numeric_ac_rejects_bad_params() {
        let sys = RdSystem::default();
        assert!(integrate_ac(&sys, 1.5, Seconds(4.0), 10, 200, 0.2).is_err());
        assert!(integrate_ac(&sys, 0.5, Seconds(-1.0), 10, 200, 0.2).is_err());
        assert!(integrate_ac(&sys, 0.5, Seconds(4.0), 0, 200, 0.2).is_err());
    }
}

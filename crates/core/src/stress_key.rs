//! Quantized stress-point keys for degradation memoization.
//!
//! A batch sweep evaluates [`NbtiModel::delta_vth`] for many (schedule,
//! stress, lifetime) combinations, and distinct jobs frequently land on the
//! same physical point (e.g. every gate whose PMOS sees signal probability
//! 0.5 under the same schedule). [`StressKey`] collapses such points onto an
//! integer key that is `Eq + Hash`, so a cache can memoize the model
//! evaluation.
//!
//! Two requirements shape the design:
//!
//! * **Determinism under concurrency.** If two *slightly* different floating
//!   point inputs quantize to the same key, a naive "first writer wins" cache
//!   would make results depend on thread scheduling. Instead,
//!   [`StressKey::evaluate`] recomputes the model at the *canonical
//!   dequantized point* of the key itself, so the cached value is a pure
//!   function of the key and sweep results are byte-identical for any worker
//!   count.
//! * **Negligible quantization error.** Probabilities are kept to 1e-9,
//!   temperatures to 1 mK, and times to 1 ms. For the paper's operating
//!   ranges this perturbs ΔV_th by parts in 1e10 — far below the micro-volt
//!   resolution of any report.

use crate::equivalent::{ModeSchedule, PmosStress, Ras};
use crate::error::ModelError;
use crate::model::NbtiModel;
use crate::units::{Seconds, Volts};

/// Probability quantum: 1e-9 (keys store `round(p * 1e9)`).
const PROB_SCALE: f64 = 1.0e9;
/// Temperature quantum: 1 mK (keys store millikelvin).
const TEMP_SCALE: f64 = 1.0e3;
/// Time quantum: 1 ms (keys store milliseconds).
const TIME_SCALE: f64 = 1.0e3;
/// Threshold-voltage quantum: 1 nV (keys store `round(v * 1e9)`).
const VTH_SCALE: f64 = 1.0e9;
/// Sentinel marking "nominal V_th0" (no per-device threshold override).
const VTH_NOMINAL: u32 = u32::MAX;

/// A stress evaluation point quantized onto an integer lattice.
///
/// Construct with [`StressKey::quantize`] (nominal threshold) or
/// [`StressKey::quantize_with_vth0`]; evaluate the NBTI model at the key's
/// canonical point with [`StressKey::evaluate`].
///
/// ```
/// use relia_core::{Kelvin, ModeSchedule, NbtiModel, PmosStress, Ras, Seconds, StressKey};
///
/// # fn main() -> Result<(), relia_core::ModelError> {
/// let schedule = ModeSchedule::new(
///     Ras::new(1.0, 9.0)?,
///     Seconds(1000.0),
///     Kelvin(400.0),
///     Kelvin(330.0),
/// )?;
/// let stress = PmosStress::worst_case();
/// let key = StressKey::quantize(&schedule, &stress, Seconds(1.0e8));
///
/// // Sub-quantum jitter maps to the same key...
/// let jittered = PmosStress::new(0.5 + 1e-12, 1.0)?;
/// assert_eq!(key, StressKey::quantize(&schedule, &jittered, Seconds(1.0e8)));
///
/// // ...and the canonical evaluation matches the direct model closely.
/// let model = NbtiModel::ptm90()?;
/// let direct = model.delta_vth(Seconds(1.0e8), &schedule, &stress)?;
/// let cached = key.evaluate(&model)?;
/// assert!((direct - cached).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StressKey {
    /// Active-mode stress probability, in units of 1e-9.
    p_active: u32,
    /// Standby-mode stress probability, in units of 1e-9.
    p_standby: u32,
    /// Active-mode temperature in millikelvin.
    temp_active_mk: u32,
    /// Standby-mode temperature in millikelvin.
    temp_standby_mk: u32,
    /// Active time per mode cycle in milliseconds.
    t_active_ms: u64,
    /// Standby time per mode cycle in milliseconds.
    t_standby_ms: u64,
    /// Total stress lifetime in milliseconds.
    lifetime_ms: u64,
    /// Initial threshold voltage in nanovolts, or [`VTH_NOMINAL`] for the
    /// calibration's nominal device.
    vth0_nv: u32,
}

impl StressKey {
    /// Quantizes a (schedule, stress, lifetime) point at the nominal
    /// threshold voltage.
    pub fn quantize(schedule: &ModeSchedule, stress: &PmosStress, lifetime: Seconds) -> Self {
        StressKey {
            p_active: (stress.active_stress_prob() * PROB_SCALE).round() as u32,
            p_standby: (stress.standby_stress_prob() * PROB_SCALE).round() as u32,
            temp_active_mk: (schedule.temp_active().0 * TEMP_SCALE).round() as u32,
            temp_standby_mk: (schedule.temp_standby().0 * TEMP_SCALE).round() as u32,
            t_active_ms: (schedule.t_active().0 * TIME_SCALE).round() as u64,
            t_standby_ms: (schedule.t_standby().0 * TIME_SCALE).round() as u64,
            lifetime_ms: (lifetime.0 * TIME_SCALE).round() as u64,
            vth0_nv: VTH_NOMINAL,
        }
    }

    /// Quantizes a point for a device with an explicit initial threshold
    /// (dual-V_th cells, process variation).
    pub fn quantize_with_vth0(
        schedule: &ModeSchedule,
        stress: &PmosStress,
        lifetime: Seconds,
        vth0: Volts,
    ) -> Self {
        let mut key = StressKey::quantize(schedule, stress, lifetime);
        // Clamp into the representable lattice; VTH_NOMINAL stays reserved.
        let nv = (vth0.0 * VTH_SCALE)
            .round()
            .clamp(0.0, (VTH_NOMINAL - 1) as f64);
        key.vth0_nv = nv as u32;
        key
    }

    /// True when the key carries an explicit (non-nominal) initial threshold.
    pub fn has_vth0(&self) -> bool {
        self.vth0_nv != VTH_NOMINAL
    }

    /// FNV-1a fingerprint of the key, for shard selection and stable
    /// spec/checkpoint identification.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.p_active as u64);
        mix(self.p_standby as u64);
        mix(self.temp_active_mk as u64);
        mix(self.temp_standby_mk as u64);
        mix(self.t_active_ms);
        mix(self.t_standby_ms);
        mix(self.lifetime_ms);
        mix(self.vth0_nv as u64);
        h
    }

    /// Evaluates the NBTI model at the key's canonical dequantized point.
    ///
    /// The result is a pure function of `(self, model)` — independent of the
    /// floating-point inputs that produced the key — which is what makes a
    /// concurrent memo cache scheduling-deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the dequantized point is degenerate
    /// (e.g. both mode times quantized to zero).
    pub fn evaluate(&self, model: &NbtiModel) -> Result<f64, ModelError> {
        let t_active = self.t_active_ms as f64 / TIME_SCALE;
        let t_standby = self.t_standby_ms as f64 / TIME_SCALE;
        let schedule = ModeSchedule::new(
            Ras::new(t_active, t_standby)?,
            Seconds(t_active + t_standby),
            crate::units::Kelvin(self.temp_active_mk as f64 / TEMP_SCALE),
            crate::units::Kelvin(self.temp_standby_mk as f64 / TEMP_SCALE),
        )?;
        let stress = PmosStress::new(
            (self.p_active as f64 / PROB_SCALE).min(1.0),
            (self.p_standby as f64 / PROB_SCALE).min(1.0),
        )?;
        let lifetime = Seconds(self.lifetime_ms as f64 / TIME_SCALE);
        if self.vth0_nv == VTH_NOMINAL {
            model.delta_vth(lifetime, &schedule, &stress)
        } else {
            model.delta_vth_with_vth0(
                lifetime,
                &schedule,
                &stress,
                Volts(self.vth0_nv as f64 / VTH_SCALE),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Kelvin;

    fn schedule() -> ModeSchedule {
        ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap()
    }

    #[test]
    fn equal_inputs_equal_keys() {
        let a = StressKey::quantize(&schedule(), &PmosStress::worst_case(), Seconds(1.0e8));
        let b = StressKey::quantize(&schedule(), &PmosStress::worst_case(), Seconds(1.0e8));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn sub_quantum_jitter_shares_a_key() {
        let base = StressKey::quantize(&schedule(), &PmosStress::worst_case(), Seconds(1.0e8));
        let jittered = PmosStress::new(0.5 + 1e-11, 1.0 - 1e-11).unwrap();
        let near = StressKey::quantize(&schedule(), &jittered, Seconds(1.0e8));
        assert_eq!(base, near);
    }

    #[test]
    fn super_quantum_changes_split_keys() {
        let base = StressKey::quantize(&schedule(), &PmosStress::worst_case(), Seconds(1.0e8));
        let shifted = PmosStress::new(0.5 + 1e-8, 1.0).unwrap();
        assert_ne!(
            base,
            StressKey::quantize(&schedule(), &shifted, Seconds(1.0e8))
        );
        assert_ne!(
            base,
            StressKey::quantize(&schedule(), &PmosStress::worst_case(), Seconds(1.0e8 + 1.0))
        );
        let warmer = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.01),
        )
        .unwrap();
        assert_ne!(
            base,
            StressKey::quantize(&warmer, &PmosStress::worst_case(), Seconds(1.0e8))
        );
    }

    #[test]
    fn vth0_distinguishes_keys_and_round_trips() {
        let s = schedule();
        let nominal = StressKey::quantize(&s, &PmosStress::worst_case(), Seconds(1.0e8));
        let dual = StressKey::quantize_with_vth0(
            &s,
            &PmosStress::worst_case(),
            Seconds(1.0e8),
            Volts(0.3),
        );
        assert!(!nominal.has_vth0());
        assert!(dual.has_vth0());
        assert_ne!(nominal, dual);

        let model = NbtiModel::ptm90().unwrap();
        let direct = model
            .delta_vth_with_vth0(Seconds(1.0e8), &s, &PmosStress::worst_case(), Volts(0.3))
            .unwrap();
        let via_key = dual.evaluate(&model).unwrap();
        assert!((direct - via_key).abs() < 1e-9, "{direct} vs {via_key}");
    }

    #[test]
    fn evaluate_matches_direct_model() {
        let model = NbtiModel::ptm90().unwrap();
        let s = schedule();
        for (p_a, p_s) in [(0.5, 1.0), (0.5, 0.0), (0.3, 0.7), (0.0, 0.0)] {
            let stress = PmosStress::new(p_a, p_s).unwrap();
            for lifetime in [1.0e4, 3.2e6, 1.0e8] {
                let direct = model.delta_vth(Seconds(lifetime), &s, &stress).unwrap();
                let key = StressKey::quantize(&s, &stress, Seconds(lifetime));
                let cached = key.evaluate(&model).unwrap();
                let tol = 1e-9 * direct.abs().max(1e-12);
                assert!(
                    (direct - cached).abs() <= tol.max(1e-15),
                    "p=({p_a},{p_s}) t={lifetime}: {direct} vs {cached}"
                );
            }
        }
    }

    #[test]
    fn fingerprints_spread() {
        // Different keys should land on different fingerprints (not a
        // collision-freeness proof, just a sanity check on the mixing).
        let s = schedule();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100u32 {
            let stress = PmosStress::new(0.001 * i as f64, 1.0 - 0.001 * i as f64).unwrap();
            let key = StressKey::quantize(&s, &stress, Seconds(1.0e8));
            assert!(seen.insert(key.fingerprint()), "collision at i={i}");
        }
    }
}

//! Arrhenius temperature dependence of the NBTI rate constants (eqs. 13–16).
//!
//! The interface-trap generation rate depends on the dissociation rate `k_f`,
//! the self-annealing rate `k_r`, and the hydrogen diffusion coefficient
//! `D_H`, each thermally activated. Because `E_f ≈ E_r`, the overall
//! activation energy collapses to `E_A ≈ E_D/4` and the temperature
//! dependence can be captured entirely through `D_H`.

use crate::consts::BOLTZMANN_EV;
use crate::units::{ElectronVolts, Kelvin};

/// Ratio of diffusion coefficients `D_H(temp) / D_H(temp_ref)` for an
/// activation energy `e_d`.
///
/// This is the factor by which stress time at `temp` is *rescaled into
/// equivalent stress time at `temp_ref`* (eq. 17): a second of stress at a
/// cooler standby temperature generates as many traps as
/// `diffusion_ratio(e_d, temp, temp_ref)` seconds at the reference
/// temperature.
///
/// ```
/// use relia_core::arrhenius::diffusion_ratio;
/// use relia_core::units::{ElectronVolts, Kelvin};
///
/// let r = diffusion_ratio(ElectronVolts(0.295), Kelvin(330.0), Kelvin(400.0));
/// assert!(r > 0.0 && r < 1.0); // cooler => slower diffusion
/// ```
pub fn diffusion_ratio(e_d: ElectronVolts, temp: Kelvin, temp_ref: Kelvin) -> f64 {
    // D(T) = D0 exp(-E_D / kT)  =>  D(T)/D(Tref) = exp(E_D/k (1/Tref - 1/T)).
    (e_d.0 / BOLTZMANN_EV * (1.0 / temp_ref.0 - 1.0 / temp.0)).exp()
}

/// Overall activation energy of the trap-generation power law,
/// `E_A = E_D/4 + (E_f − E_r)/2` (eq. 16).
///
/// With the paper's assumption `E_f ≈ E_r` this reduces to `E_D/4`.
pub fn overall_activation_energy(
    e_d: ElectronVolts,
    e_f: ElectronVolts,
    e_r: ElectronVolts,
) -> ElectronVolts {
    ElectronVolts(0.25 * e_d.0 + 0.5 * (e_f.0 - e_r.0))
}

/// Temperature scaling of the `K_v` pre-factor: because
/// `N_it ∝ (D_H t)^(1/4)`, the pre-factor scales with `D_H^(1/4)`,
/// i.e. with activation energy `E_D/4`.
///
/// ```
/// use relia_core::arrhenius::kv_temperature_factor;
/// use relia_core::units::{ElectronVolts, Kelvin};
///
/// let f = kv_temperature_factor(ElectronVolts(0.295), Kelvin(400.0), Kelvin(400.0));
/// assert!((f - 1.0).abs() < 1e-12);
/// ```
pub fn kv_temperature_factor(e_d: ElectronVolts, temp: Kelvin, temp_ref: Kelvin) -> f64 {
    diffusion_ratio(e_d, temp, temp_ref).powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    const E_D: ElectronVolts = ElectronVolts(0.295);

    #[test]
    fn ratio_is_one_at_reference() {
        let r = diffusion_ratio(E_D, Kelvin(400.0), Kelvin(400.0));
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_monotonic_in_temperature() {
        let r330 = diffusion_ratio(E_D, Kelvin(330.0), Kelvin(400.0));
        let r370 = diffusion_ratio(E_D, Kelvin(370.0), Kelvin(400.0));
        let r400 = diffusion_ratio(E_D, Kelvin(400.0), Kelvin(400.0));
        assert!(r330 < r370 && r370 < r400);
    }

    #[test]
    fn calibration_places_ras_neutral_point_near_370k() {
        // The paper's Table 1 shows ΔV_th insensitive to RAS at T_s = 370 K
        // with a 0.5 active duty cycle: D(370)/D(400) ≈ 0.5.
        let r = diffusion_ratio(E_D, Kelvin(370.0), Kelvin(400.0));
        assert!((r - 0.5).abs() < 0.01, "D ratio at 370K was {r}");
    }

    #[test]
    fn ratio_330k_is_strongly_suppressed() {
        let r = diffusion_ratio(E_D, Kelvin(330.0), Kelvin(400.0));
        assert!(r > 0.1 && r < 0.25, "D ratio at 330K was {r}");
    }

    #[test]
    fn overall_activation_energy_reduces_to_quarter() {
        let ea = overall_activation_energy(E_D, ElectronVolts(0.2), ElectronVolts(0.2));
        assert!((ea.0 - E_D.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn kv_factor_is_quarter_power() {
        let r = diffusion_ratio(E_D, Kelvin(330.0), Kelvin(400.0));
        let f = kv_temperature_factor(E_D, Kelvin(330.0), Kelvin(400.0));
        assert!((f - r.powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn inverse_ratios_multiply_to_one() {
        let up = diffusion_ratio(E_D, Kelvin(330.0), Kelvin(400.0));
        let down = diffusion_ratio(E_D, Kelvin(400.0), Kelvin(330.0));
        assert!((up * down - 1.0).abs() < 1e-12);
    }
}

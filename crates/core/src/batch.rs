//! Batch-friendly model entry points for fleet-scale statistical aging.
//!
//! [`NbtiModel::delta_vth_with_vth0`] is the right API for *one* device,
//! but a Monte-Carlo fleet query evaluates the same stress point for
//! thousands of devices that differ only in their initial threshold. The
//! expensive terms — the Arrhenius exponentials inside the equivalent-cycle
//! transform, the AC trap-factor recursion (up to 4096 exact steps), and
//! `K_v(T)` — depend on the `(schedule, stress, time)` point alone, so a
//! [`HoistedStress`] computes them **once** and reduces each device to a
//! square root and an exponential over its overdrive.
//!
//! The per-device arithmetic is kept expression-for-expression identical to
//! the scalar path, so a hoisted evaluation is bit-equal to
//! [`NbtiModel::delta_vth_with_vth0`] — the parity tests below and the
//! fig12 golden pin hold this to zero ulps.
//!
//! [`VariationKernel`] is the circuit-level sibling: the structure-of-arrays
//! per-gate fresh/aged delay math that `relia-flow`'s `VariationStudy` runs
//! per Monte-Carlo sample, hoisted here so the flow crate, the fleet engine,
//! and the benches all share one implementation.

use crate::equivalent::{EquivalentCycle, ModeSchedule, PmosStress};
use crate::error::{check_finite, check_range, ModelError};
use crate::model::NbtiModel;
use crate::units::{Seconds, Volts};

/// One `(schedule, stress, time)` point with every device-independent term
/// precomputed: evaluating a device costs one `sqrt` and one `exp` instead
/// of an equivalent-cycle rebuild and a trap-factor recursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoistedStress {
    /// `K_v(T_active) · S_n · τ^(1/4)` at the nominal threshold — exactly
    /// what [`NbtiModel::delta_vth`] returns for this point.
    base: f64,
    /// Supply voltage, for the per-device overdrive.
    vdd: f64,
    /// Nominal overdrive `V_dd − V_th0,nom`.
    od_nom: f64,
    /// Oxide-field scale `E_0`-equivalent in volts (eq. 23's exponential).
    field_scale: f64,
}

impl HoistedStress {
    /// The base shift at the nominal threshold (a plain
    /// [`NbtiModel::delta_vth`] value).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The nominal overdrive the scaling is referenced to.
    pub fn od_nom(&self) -> f64 {
        self.od_nom
    }

    /// ΔV_th for a device with initial threshold `vth0` volts.
    ///
    /// Same expression shape as [`NbtiModel::delta_vth_with_vth0`] — the
    /// result is bit-identical to the scalar call. `vth0` is **not**
    /// range-checked here (the hot loop); callers validate once per batch
    /// via [`HoistedStress::check_vth0`].
    #[inline]
    pub fn delta_vth_at(&self, vth0: f64) -> f64 {
        let overdrive = self.vdd - vth0;
        let scale =
            (overdrive / self.od_nom).sqrt() * ((overdrive - self.od_nom) / self.field_scale).exp();
        self.base * scale
    }

    /// Validates a threshold the way the scalar entry point does.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for a threshold outside `[0, vdd)`.
    pub fn check_vth0(&self, vth0: Volts) -> Result<(), ModelError> {
        check_range("vth0", vth0.0, 0.0, self.vdd - 1e-6, "[0, vdd)")?;
        Ok(())
    }

    /// Evaluates a whole structure-of-arrays batch: `out[i]` becomes the
    /// shift for `vth0[i]`. Only the slice lengths are checked; thresholds
    /// are assumed pre-validated.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] on a length mismatch.
    pub fn delta_vth_into(&self, vth0: &[f64], out: &mut [f64]) -> Result<(), ModelError> {
        if vth0.len() != out.len() {
            return Err(ModelError::InvalidParameter {
                name: "batch lengths",
                value: out.len() as f64,
                expected: "vth0 and out slices of equal length",
            });
        }
        for (o, &v) in out.iter_mut().zip(vth0) {
            *o = self.delta_vth_at(v);
        }
        Ok(())
    }
}

impl NbtiModel {
    /// Hoists every device-independent term of one
    /// `(schedule, stress, total_time)` point: the equivalent-cycle
    /// transform, the trap-factor recursion, and `K_v(T)` are evaluated
    /// once, and the returned [`HoistedStress`] serves per-device queries
    /// at a few flops each.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid times — the same failures as
    /// [`NbtiModel::delta_vth`].
    pub fn hoist(
        &self,
        total_time: Seconds,
        schedule: &ModeSchedule,
        stress: &PmosStress,
    ) -> Result<HoistedStress, ModelError> {
        check_range(
            "total_time",
            total_time.0,
            0.0,
            f64::MAX,
            "non-negative seconds",
        )?;
        let params = self.params();
        let base = if total_time.0 == 0.0 {
            0.0
        } else {
            let eq = EquivalentCycle::build(params, schedule, stress)?;
            if eq.stress.duty_cycle() == 0.0 {
                0.0
            } else {
                let n = ((total_time.0 / schedule.period().0).floor() as u64).max(1);
                check_finite(
                    "delta_vth",
                    self.kv(schedule.temp_active()) * eq.stress.trap_factor(n),
                )?
            }
        };
        Ok(HoistedStress {
            base,
            vdd: params.vdd.0,
            od_nom: params.overdrive(),
            field_scale: params.field_scale.0,
        })
    }
}

/// The structure-of-arrays per-gate variation kernel: the exact arithmetic
/// of the Fig. 12 Monte-Carlo inner loop, shared by `relia-flow`'s
/// `VariationStudy` and the fleet benches.
///
/// All three methods keep the original expression shapes, so a study ported
/// onto this kernel reproduces the scalar path byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationKernel {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Alpha-power delay exponent.
    pub alpha: f64,
    /// Nominal overdrive `V_dd − V_th0,nom`.
    pub od_nom: f64,
    /// Oxide-field scale in volts.
    pub field_scale: f64,
}

impl VariationKernel {
    /// A kernel over the model's calibration.
    pub fn new(params: &crate::params::NbtiParams) -> Self {
        VariationKernel {
            vdd: params.vdd.0,
            alpha: params.alpha,
            od_nom: params.overdrive(),
            field_scale: params.field_scale.0,
        }
    }

    /// Time-zero delays: `fresh[i] = nominal[i] · (od_nom / (vdd − vth0[i]))^α`
    /// (the alpha-power law).
    pub fn fresh_delays_into(&self, nominal: &[f64], vth0: &[f64], fresh: &mut [f64]) {
        for ((f, &d), &v) in fresh.iter_mut().zip(nominal).zip(vth0) {
            *f = d * (self.od_nom / (self.vdd - v)).powf(self.alpha);
        }
    }

    /// Aged delays: eq. 23 scales each gate's base shift by its overdrive,
    /// then the linearized alpha-power sensitivity turns ΔV_th into delay.
    pub fn aged_delays_into(
        &self,
        fresh: &[f64],
        base_shift: &[f64],
        vth0: &[f64],
        aged: &mut [f64],
    ) {
        for ((a, &d), (&dv_base, &v)) in aged.iter_mut().zip(fresh).zip(base_shift.iter().zip(vth0))
        {
            let od = self.vdd - v;
            // eq. 23 overdrive scaling of the degradation rate.
            let dv =
                dv_base * (od / self.od_nom).sqrt() * ((od - self.od_nom) / self.field_scale).exp();
            *a = d * (1.0 + self.alpha * dv / od);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalent::Ras;
    use crate::units::Kelvin;

    fn schedule() -> ModeSchedule {
        ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap()
    }

    #[test]
    fn hoisted_matches_scalar_bit_for_bit() {
        let m = NbtiModel::ptm90().unwrap();
        let s = schedule();
        let stress = PmosStress::worst_case();
        for t in [1.0e4, 1.0e6, 1.0e8, 3.0e8] {
            let hoisted = m.hoist(Seconds(t), &s, &stress).unwrap();
            for i in 0..200 {
                let vth0 = 0.15 + 0.10 * (i as f64) / 200.0;
                let scalar = m
                    .delta_vth_with_vth0(Seconds(t), &s, &stress, Volts(vth0))
                    .unwrap();
                let batched = hoisted.delta_vth_at(vth0);
                assert_eq!(
                    scalar.to_bits(),
                    batched.to_bits(),
                    "t={t} vth0={vth0}: {scalar} vs {batched}"
                );
            }
        }
    }

    #[test]
    fn hoisted_base_equals_plain_delta_vth() {
        let m = NbtiModel::ptm90().unwrap();
        let s = schedule();
        let stress = PmosStress::new(0.5, 1.0).unwrap();
        let hoisted = m.hoist(Seconds(1.0e8), &s, &stress).unwrap();
        let plain = m.delta_vth(Seconds(1.0e8), &s, &stress).unwrap();
        assert_eq!(hoisted.base().to_bits(), plain.to_bits());
    }

    #[test]
    fn zero_time_and_zero_duty_hoist_to_zero_base() {
        let m = NbtiModel::ptm90().unwrap();
        let s = schedule();
        let h = m
            .hoist(Seconds(0.0), &s, &PmosStress::worst_case())
            .unwrap();
        assert_eq!(h.base(), 0.0);
        assert_eq!(h.delta_vth_at(0.22), 0.0);
        let h = m
            .hoist(Seconds(1.0e8), &s, &PmosStress::new(0.0, 0.0).unwrap())
            .unwrap();
        assert_eq!(h.base(), 0.0);
    }

    #[test]
    fn batch_into_matches_pointwise_and_checks_lengths() {
        let m = NbtiModel::ptm90().unwrap();
        let s = schedule();
        let h = m
            .hoist(Seconds(1.0e8), &s, &PmosStress::worst_case())
            .unwrap();
        let vth0: Vec<f64> = (0..64).map(|i| 0.18 + 1e-3 * i as f64).collect();
        let mut out = vec![0.0; 64];
        h.delta_vth_into(&vth0, &mut out).unwrap();
        for (&v, &o) in vth0.iter().zip(&out) {
            assert_eq!(o.to_bits(), h.delta_vth_at(v).to_bits());
        }
        let mut short = vec![0.0; 3];
        assert!(h.delta_vth_into(&vth0, &mut short).is_err());
    }

    #[test]
    fn hoisted_validation_mirrors_scalar() {
        let m = NbtiModel::ptm90().unwrap();
        let s = schedule();
        assert!(m
            .hoist(Seconds(f64::NAN), &s, &PmosStress::worst_case())
            .is_err());
        let h = m
            .hoist(Seconds(1.0), &s, &PmosStress::worst_case())
            .unwrap();
        assert!(h.check_vth0(Volts(1.5)).is_err());
        assert!(h.check_vth0(Volts(0.22)).is_ok());
    }

    #[test]
    fn kernel_matches_handwritten_loop() {
        let params = crate::params::NbtiParams::ptm90().unwrap();
        let k = VariationKernel::new(&params);
        let nominal = [50.0, 75.0, 100.0];
        let vth0 = [0.21, 0.22, 0.24];
        let base = [0.02, 0.03, 0.01];
        let mut fresh = [0.0; 3];
        k.fresh_delays_into(&nominal, &vth0, &mut fresh);
        let mut aged = [0.0; 3];
        k.aged_delays_into(&fresh, &base, &vth0, &mut aged);
        for i in 0..3 {
            let expect_fresh = nominal[i] * (k.od_nom / (k.vdd - vth0[i])).powf(k.alpha);
            assert_eq!(fresh[i].to_bits(), expect_fresh.to_bits());
            let od = k.vdd - vth0[i];
            let dv = base[i] * (od / k.od_nom).sqrt() * ((od - k.od_nom) / k.field_scale).exp();
            let expect_aged = expect_fresh * (1.0 + k.alpha * dv / od);
            assert_eq!(aged[i].to_bits(), expect_aged.to_bits());
        }
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-core
//!
//! Temperature-aware Negative Bias Temperature Instability (NBTI) modeling,
//! reproducing the model of Wang et al., *"Temperature-aware NBTI modeling and
//! the impact of input vector control on performance degradation"* (DATE 2007;
//! journal version IEEE TDSC 2011).
//!
//! The crate provides, bottom-up:
//!
//! * [`units`] — strongly typed physical quantities ([`Kelvin`], [`Volts`],
//!   [`Seconds`]).
//! * [`rd`] — the reaction–diffusion (R-D) description of interface-trap
//!   generation: the DC-stress `t^(1/4)` power law and the analytical recovery
//!   expression.
//! * [`rd_numeric`] — a finite-difference solver for the full R-D equation
//!   system, used to validate the analytical power law.
//! * [`ac`] — the multi-cycle AC-stress recursion of Kumar et al. (exact
//!   recursion and the fast closed form used by the paper).
//! * [`arrhenius`] — temperature dependence of the hydrogen diffusion
//!   coefficient and the activation-energy split.
//! * [`equivalent`] — the paper's contribution: mapping an *active/standby*
//!   operating schedule with two temperatures onto an equivalent single
//!   temperature AC stress (equivalent stress time, duty cycle, and period).
//! * [`model`] — the [`NbtiModel`] front-end computing threshold-voltage
//!   shifts for arbitrary stress schedules.
//! * [`degradation`] — alpha-power-law gate-delay degradation from a
//!   threshold-voltage shift.
//! * [`stress_key`] — quantized stress-point keys ([`StressKey`]) for
//!   memoizing model evaluations in batch sweeps.
//! * [`cancel`] — the cooperative [`CancelToken`] that lets sweep watchdogs
//!   abandon straggling evaluations at safe boundaries.
//! * [`variation`] — process-variation hooks (gate-overdrive dependence of the
//!   degradation rate).
//!
//! ## Quick example
//!
//! ```
//! use relia_core::{Kelvin, ModeSchedule, NbtiModel, PmosStress, Ras, Seconds};
//!
//! # fn main() -> Result<(), relia_core::ModelError> {
//! let model = NbtiModel::ptm90()?;
//! // 10% of the time active at 400 K, 90% standby at 330 K.
//! let schedule = ModeSchedule::new(
//!     Ras::new(1.0, 9.0)?,
//!     Seconds(1000.0),
//!     Kelvin(400.0),
//!     Kelvin(330.0),
//! )?;
//! // Signal probability 0.5 while active; gate input forced low in standby
//! // (the worst case: the PMOS is under stress the whole standby time).
//! let stress = PmosStress::new(0.5, 1.0)?;
//! let dvth = model.delta_vth(Seconds(1.0e8), &schedule, &stress)?;
//! assert!(dvth > 0.0 && dvth < 0.1);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod arrhenius;
pub mod batch;
pub mod calib;
pub mod cancel;
pub mod consts;
pub mod degradation;
pub mod equivalent;
pub mod error;
pub mod model;
pub mod params;
pub mod rd;
pub mod rd_numeric;
pub mod stress_key;
pub mod units;
pub mod variation;

pub use ac::AcStress;
pub use arrhenius::diffusion_ratio;
pub use batch::{HoistedStress, VariationKernel};
pub use calib::{fit_dc_measurements, CalibrationFit, Measurement};
pub use cancel::{CancelToken, Deadline};
pub use degradation::DelayDegradation;
pub use equivalent::{EquivalentCycle, ModeSchedule, PmosStress, Ras, StressInterval};
pub use error::ModelError;
pub use model::NbtiModel;
pub use params::NbtiParams;
pub use stress_key::StressKey;
pub use units::{ElectronVolts, Kelvin, Seconds, Volts};
pub use variation::VthDistribution;

//! Cooperative cancellation for long-running evaluations.
//!
//! A [`CancelToken`] is a cheaply clonable flag shared between a supervisor
//! (e.g. a worker pool's watchdog) and a computation. The computation polls
//! [`CancelToken::is_cancelled`] at its natural loop boundaries and returns
//! early when the flag is set; the supervisor flips the flag with
//! [`CancelToken::cancel`] when a deadline passes. Cancellation is purely
//! cooperative: nothing is interrupted preemptively, so a computation that
//! never polls is never cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cancellation flag.
///
/// Clones observe the same flag; once cancelled, a token stays cancelled.
///
/// ```
/// use relia_core::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Sets the flag; every clone of this token observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A [`CancelToken`] paired with the wall-clock instant at which it should
/// fire.
///
/// Supervisors (a worker-pool watchdog, a server's request-deadline
/// sweeper) hold a set of deadlines and call [`Deadline::fire_if_due`]
/// periodically; the owning computation polls the token as usual. The pair
/// is intentionally dumb — no thread of its own — so any ticking strategy
/// (scan loop, condvar wait, test clock) can drive it.
#[derive(Debug, Clone)]
pub struct Deadline {
    token: CancelToken,
    at: Instant,
}

impl Deadline {
    /// A deadline firing `token` at instant `at`.
    pub fn new(token: CancelToken, at: Instant) -> Self {
        Deadline { token, at }
    }

    /// The instant this deadline is due.
    pub fn at(&self) -> Instant {
        self.at
    }

    /// The token this deadline fires.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// True once `now` has reached the deadline.
    pub fn is_due(&self, now: Instant) -> bool {
        now >= self.at
    }

    /// Cancels the token if the deadline has passed; returns whether the
    /// token is now cancelled (due to this call or an earlier one).
    pub fn fire_if_due(&self, now: Instant) -> bool {
        if self.is_due(now) {
            self.token.cancel();
        }
        self.token.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancellation_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn distinct_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("no panic");
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_fires_only_once_due() {
        let now = Instant::now();
        let d = Deadline::new(CancelToken::new(), now + Duration::from_secs(60));
        assert!(!d.is_due(now));
        assert!(!d.fire_if_due(now));
        assert!(!d.token().is_cancelled());
        let later = now + Duration::from_secs(61);
        assert!(d.is_due(later));
        assert!(d.fire_if_due(later));
        assert!(d.token().is_cancelled());
        // Sticky: still reported as fired for any later poll.
        assert!(d.fire_if_due(now));
    }

    #[test]
    fn deadline_reports_externally_cancelled_tokens() {
        let token = CancelToken::new();
        let d = Deadline::new(token.clone(), Instant::now() + Duration::from_secs(60));
        token.cancel();
        assert!(d.fire_if_due(Instant::now()));
    }
}

//! Cooperative cancellation for long-running evaluations.
//!
//! A [`CancelToken`] is a cheaply clonable flag shared between a supervisor
//! (e.g. a worker pool's watchdog) and a computation. The computation polls
//! [`CancelToken::is_cancelled`] at its natural loop boundaries and returns
//! early when the flag is set; the supervisor flips the flag with
//! [`CancelToken::cancel`] when a deadline passes. Cancellation is purely
//! cooperative: nothing is interrupted preemptively, so a computation that
//! never polls is never cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones observe the same flag; once cancelled, a token stays cancelled.
///
/// ```
/// use relia_core::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Sets the flag; every clone of this token observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancellation_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn distinct_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("no panic");
        assert!(token.is_cancelled());
    }
}

//! Strongly typed physical quantities used across the NBTI model.
//!
//! Newtypes keep temperatures, voltages, times and energies from being mixed
//! up at API boundaries; arithmetic on the raw `f64` stays available through
//! the public tuple field.
//!
//! ```
//! use relia_core::units::{Kelvin, Volts};
//!
//! let t = Kelvin(400.0);
//! assert!(t.is_physical());
//! let v = Volts(1.0);
//! assert_eq!(format!("{v}"), "1 V");
//! ```

use std::fmt;

/// Absolute temperature in kelvin.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(pub f64);

impl Kelvin {
    /// Converts from degrees Celsius.
    ///
    /// ```
    /// use relia_core::units::Kelvin;
    /// assert!((Kelvin::from_celsius(27.0).0 - 300.15).abs() < 1e-9);
    /// ```
    pub fn from_celsius(c: f64) -> Self {
        Kelvin(c + 273.15)
    }

    /// Converts to degrees Celsius.
    pub fn to_celsius(self) -> f64 {
        self.0 - 273.15
    }

    /// Returns `true` when the temperature is finite and above absolute zero.
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K", self.0)
    }
}

/// Electric potential in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(pub f64);

impl Volts {
    /// Converts to millivolts.
    pub fn to_millivolts(self) -> f64 {
        self.0 * 1e3
    }

    /// Converts from millivolts.
    pub fn from_millivolts(mv: f64) -> Self {
        Volts(mv * 1e-3)
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} V", self.0)
    }
}

/// Time duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub f64);

impl Seconds {
    /// One Julian year expressed in seconds.
    pub const YEAR: f64 = 365.25 * 24.0 * 3600.0;

    /// Converts from years.
    ///
    /// ```
    /// use relia_core::units::Seconds;
    /// assert!(Seconds::from_years(10.0).0 > 3.0e8);
    /// ```
    pub fn from_years(years: f64) -> Self {
        Seconds(years * Self::YEAR)
    }

    /// Converts to years.
    pub fn to_years(self) -> f64 {
        self.0 / Self::YEAR
    }

    /// Returns `true` when the duration is finite and non-negative.
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s", self.0)
    }
}

/// Energy in electron-volts (activation energies and barrier heights).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ElectronVolts(pub f64);

impl fmt::Display for ElectronVolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} eV", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trip() {
        let t = Kelvin::from_celsius(85.0);
        assert!((t.to_celsius() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn kelvin_physicality() {
        assert!(Kelvin(300.0).is_physical());
        assert!(!Kelvin(0.0).is_physical());
        assert!(!Kelvin(-1.0).is_physical());
        assert!(!Kelvin(f64::NAN).is_physical());
        assert!(!Kelvin(f64::INFINITY).is_physical());
    }

    #[test]
    fn years_round_trip() {
        let t = Seconds::from_years(3.17);
        assert!((t.to_years() - 3.17).abs() < 1e-12);
        // The paper's 1e8 s lifetime is close to 3.17 years.
        assert!((Seconds(1.0e8).to_years() - 3.168).abs() < 0.01);
    }

    #[test]
    fn seconds_physicality() {
        assert!(Seconds(0.0).is_physical());
        assert!(Seconds(1.0e8).is_physical());
        assert!(!Seconds(-1.0).is_physical());
        assert!(!Seconds(f64::NAN).is_physical());
    }

    #[test]
    fn millivolt_conversions() {
        assert_eq!(Volts(0.22).to_millivolts(), 220.0);
        assert!((Volts::from_millivolts(220.0).0 - 0.22).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Kelvin(400.0)), "400 K");
        assert_eq!(format!("{}", Seconds(10.0)), "10 s");
        assert_eq!(format!("{}", ElectronVolts(0.295)), "0.295 eV");
    }
}

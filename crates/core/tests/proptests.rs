//! Property-based tests for the NBTI model invariants.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_core::ac::{ac_to_dc_ratio, s_n, s_n_exact};
use relia_core::arrhenius::diffusion_ratio;
use relia_core::rd::recovery_fraction;
use relia_core::units::{ElectronVolts, Kelvin, Seconds, Volts};
use relia_core::{
    DelayDegradation, EquivalentCycle, ModeSchedule, NbtiModel, NbtiParams, PmosStress, Ras,
    VthDistribution,
};

proptest! {
    /// The hybrid S_n evaluator tracks the exact recursion everywhere.
    #[test]
    fn s_n_matches_exact(c in 0.01f64..1.0, n in 1u64..20_000) {
        let e = s_n_exact(c, n);
        let h = s_n(c, n);
        prop_assert!((e - h).abs() / e.max(1e-30) < 2e-3, "c={c} n={n} e={e} h={h}");
    }

    /// Damage is monotone in the number of cycles.
    #[test]
    fn s_n_monotone_in_cycles(c in 0.01f64..1.0, n in 1u64..10_000) {
        prop_assert!(s_n(c, n + 1) >= s_n(c, n));
    }

    /// Damage is monotone in the duty cycle.
    #[test]
    fn s_n_monotone_in_duty(c in 0.01f64..0.99, n in 1u64..10_000) {
        prop_assert!(s_n(c + 0.01, n) >= s_n(c, n));
    }

    /// AC damage never exceeds DC damage at the same elapsed time.
    #[test]
    fn ac_never_exceeds_dc(c in 0.0f64..1.0) {
        prop_assert!(ac_to_dc_ratio(c) <= 1.0 + 1e-12);
    }

    /// Recovery fraction stays within (0, 1].
    #[test]
    fn recovery_fraction_bounded(t in 0.0f64..1e12, ts in 1e-6f64..1e12) {
        let f = recovery_fraction(t, ts).unwrap();
        prop_assert!(f > 0.0 && f <= 1.0);
    }

    /// Diffusion slows monotonically as the temperature drops.
    #[test]
    fn diffusion_ratio_monotone(t in 250.0f64..399.0) {
        let lo = diffusion_ratio(ElectronVolts(0.295), Kelvin(t), Kelvin(400.0));
        let hi = diffusion_ratio(ElectronVolts(0.295), Kelvin(t + 1.0), Kelvin(400.0));
        prop_assert!(lo < hi && hi <= 1.0 + 1e-12);
    }

    /// ΔV_th is monotone in total stress time for any schedule.
    #[test]
    fn delta_vth_monotone_in_time(
        standby_weight in 0.0f64..20.0,
        temp_s in 300.0f64..400.0,
        p_a in 0.0f64..1.0,
        p_s in 0.0f64..1.0,
        t in 1.0e4f64..1.0e8,
    ) {
        let m = NbtiModel::ptm90().unwrap();
        let s = ModeSchedule::new(
            Ras::new(1.0, standby_weight).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(temp_s),
        ).unwrap();
        let stress = PmosStress::new(p_a, p_s).unwrap();
        let d1 = m.delta_vth(Seconds(t), &s, &stress).unwrap();
        let d2 = m.delta_vth(Seconds(2.0 * t), &s, &stress).unwrap();
        prop_assert!(d2 >= d1);
    }

    /// ΔV_th is monotone in the standby temperature when standby stresses.
    #[test]
    fn delta_vth_monotone_in_standby_temp(temp_s in 300.0f64..395.0) {
        let m = NbtiModel::ptm90().unwrap();
        let mk = |temp: f64| ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(temp),
        ).unwrap();
        let cool = m.delta_vth(Seconds(1.0e8), &mk(temp_s), &PmosStress::worst_case()).unwrap();
        let warm = m.delta_vth(Seconds(1.0e8), &mk(temp_s + 5.0), &PmosStress::worst_case()).unwrap();
        prop_assert!(warm >= cool);
    }

    /// A degraded delay is never negative, and exact >= linear.
    #[test]
    fn delay_degradation_ordering(dvth in 0.0f64..0.2) {
        let dd = DelayDegradation::new(&NbtiParams::ptm90().unwrap());
        let lin = dd.linear(dvth).unwrap();
        let ex = dd.exact(dvth).unwrap();
        prop_assert!(lin >= 0.0);
        prop_assert!(ex + 1e-15 >= lin);
    }

    /// Celsius↔kelvin conversion round-trips across the full practical
    /// range (cryogenic to die-melting), so the `Kelvin` newtype boundary
    /// never drifts a temperature.
    #[test]
    fn kelvin_celsius_round_trip(c in -273.0f64..1000.0) {
        let k = Kelvin::from_celsius(c);
        prop_assert!((k.to_celsius() - c).abs() < 1e-9, "c={c} k={}", k.0);
        prop_assert!((Kelvin(k.0).to_celsius() - c).abs() < 1e-9);
    }

    /// At a fixed RAS split, the equivalent stress time per mode cycle is
    /// monotone in the standby temperature: a hotter standby mode diffuses
    /// hydrogen faster, so its seconds count for more (eq. 17).
    #[test]
    fn equivalent_stress_monotone_in_standby_temp(
        temp_s in 280.0f64..395.0,
        standby_weight in 0.1f64..20.0,
        p_s in 0.05f64..1.0,
    ) {
        let params = NbtiParams::ptm90().unwrap();
        let ras = Ras::new(1.0, standby_weight).unwrap();
        let stress = PmosStress::new(0.5, p_s).unwrap();
        let mk = |t: f64| ModeSchedule::new(
            ras,
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(t),
        ).unwrap();
        let cool = EquivalentCycle::build(&params, &mk(temp_s), &stress).unwrap();
        let warm = EquivalentCycle::build(&params, &mk(temp_s + 5.0), &stress).unwrap();
        prop_assert!(
            warm.t_eq_stress > cool.t_eq_stress,
            "t_s={temp_s} w={standby_weight} p_s={p_s}: {} !> {}",
            warm.t_eq_stress,
            cool.t_eq_stress
        );
        prop_assert!(warm.diffusion_ratio > cool.diffusion_ratio);
    }

    /// Box–Muller samples respect the 3.5-sigma clamp.
    #[test]
    fn variation_samples_bounded(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let d = VthDistribution::new(Volts(0.22), Volts(0.01)).unwrap();
        let v = d.sample_box_muller(u1, u2).0;
        prop_assert!((0.22 - 0.036..=0.22 + 0.036).contains(&v));
    }

    /// The hoisted batch evaluator matches the scalar per-device entry
    /// point sample-for-sample — not "close", the same bits (≤ 0 ulp) —
    /// over random schedules, stress vectors, times, and thresholds.
    #[test]
    fn hoisted_batch_matches_scalar_bit_for_bit(
        standby_weight in 0.0f64..20.0,
        temp_s in 300.0f64..400.0,
        p_a in 0.0f64..1.0,
        p_s in 0.0f64..1.0,
        t in 1.0f64..3.2e8,
        vth0 in 0.16f64..0.30,
    ) {
        let model = NbtiModel::ptm90().unwrap();
        let schedule = ModeSchedule::new(
            Ras::new(1.0, standby_weight).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(temp_s),
        ).unwrap();
        let stress = PmosStress::new(p_a, p_s).unwrap();
        let hoisted = model.hoist(Seconds(t), &schedule, &stress).unwrap();
        let scalar = model
            .delta_vth_with_vth0(Seconds(t), &schedule, &stress, Volts(vth0))
            .unwrap();
        prop_assert_eq!(hoisted.delta_vth_at(vth0).to_bits(), scalar.to_bits());
    }

    /// The batched slice entry point equals the per-element call for every
    /// lane, so chunked SoA evaluation cannot drift from pointwise.
    #[test]
    fn batch_slices_equal_pointwise(
        t in 1.0f64..3.2e8,
        vals in prop::collection::vec(0.16f64..0.30, 1..64),
    ) {
        let model = NbtiModel::ptm90().unwrap();
        let schedule = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        ).unwrap();
        let stress = PmosStress::new(0.5, 1.0).unwrap();
        let hoisted = model.hoist(Seconds(t), &schedule, &stress).unwrap();
        let mut out = vec![0.0; vals.len()];
        hoisted.delta_vth_into(&vals, &mut out).unwrap();
        for (v, o) in vals.iter().zip(&out) {
            prop_assert_eq!(hoisted.delta_vth_at(*v).to_bits(), o.to_bits());
        }
    }
}

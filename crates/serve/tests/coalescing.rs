//! End-to-end coalescing: N identical concurrent `/v1/degrade` requests
//! must trigger exactly ONE model evaluation, and every response must be
//! byte-identical. The evaluator is gated so all requests are provably
//! concurrent (no request can finish before the others have joined the
//! single-flight slot), which makes the 1-evaluation assertion
//! deterministic rather than probabilistic.

#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use relia_core::{CancelToken, Deadline, Kelvin, StressKey};
use relia_jobs::ShardedCache;
use relia_serve::{handle, Action, DegradeQuery, ModelEval, Request, ServeState};

/// Counts evaluations and blocks each one until the test opens the gate.
struct GatedEval {
    calls: AtomicUsize,
    gate: Mutex<bool>,
    open: Condvar,
}

impl GatedEval {
    fn new() -> Self {
        GatedEval {
            calls: AtomicUsize::new(0),
            gate: Mutex::new(false),
            open: Condvar::new(),
        }
    }

    fn open_gate(&self) {
        *self.gate.lock().unwrap() = true;
        self.open.notify_all();
    }
}

impl ModelEval for GatedEval {
    fn delta_vth(&self, _key: StressKey) -> Result<f64, String> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.open.wait(open).unwrap();
        }
        Ok(0.0145)
    }
}

fn degrade_request() -> Request {
    let query = DegradeQuery {
        ras: (1.0, 9.0),
        t_standby_k: Kelvin(330.0),
        lifetime_s: 1.0e8,
        p_active: 0.5,
        p_standby: 1.0,
    };
    Request {
        method: "POST".to_owned(),
        target: "/v1/degrade".to_owned(),
        http11: true,
        headers: vec![],
        body: query.to_body().into_bytes(),
    }
}

#[test]
fn n_identical_concurrent_requests_evaluate_once() {
    const N: usize = 8;
    let eval = Arc::new(GatedEval::new());
    let state = Arc::new(
        ServeState::with_eval(
            Arc::new(ShardedCache::default()),
            Arc::clone(&eval) as Arc<dyn ModelEval>,
            Duration::from_secs(30),
        )
        .unwrap(),
    );

    let workers: Vec<_> = (0..N)
        .map(|_| {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let deadline =
                    Deadline::new(CancelToken::new(), Instant::now() + Duration::from_secs(30));
                handle(&state, &degrade_request(), &deadline)
            })
        })
        .collect();

    // Hold the gate shut until every non-leader thread is parked in the
    // single-flight slot, so all N requests are in flight simultaneously.
    let patience = Instant::now() + Duration::from_secs(20);
    loop {
        let snap = state.snapshot();
        let joins = snap.counter("serve_coalesce_joins").unwrap();
        if joins >= (N - 1) as u64 {
            break;
        }
        assert!(
            Instant::now() < patience,
            "only {joins} of {} joiners arrived",
            N - 1
        );
        thread::yield_now();
    }
    eval.open_gate();

    let mut bodies = Vec::with_capacity(N);
    for worker in workers {
        let (response, action) = worker.join().unwrap();
        assert_eq!(response.status, 200, "{:?}", response.body);
        assert_eq!(action, Action::Continue);
        bodies.push(response.body);
    }

    assert_eq!(
        eval.calls.load(Ordering::SeqCst),
        1,
        "coalescing must collapse {N} identical queries into one evaluation"
    );
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "responses differ");

    let snap = state.snapshot();
    assert_eq!(snap.counter("serve_coalesce_leads"), Some(1));
    assert_eq!(snap.counter("serve_coalesce_joins"), Some((N - 1) as u64));
}

#[test]
fn distinct_queries_do_not_coalesce() {
    let eval = Arc::new(GatedEval::new());
    eval.open_gate(); // no concurrency needed here; let evaluations flow
    let state = ServeState::with_eval(
        Arc::new(ShardedCache::default()),
        Arc::clone(&eval) as Arc<dyn ModelEval>,
        Duration::from_secs(30),
    )
    .unwrap();

    for (i, standby) in [320.0, 340.0, 360.0].iter().enumerate() {
        let query = DegradeQuery {
            ras: (1.0, 9.0),
            t_standby_k: Kelvin(*standby),
            lifetime_s: 1.0e8,
            p_active: 0.5,
            p_standby: 1.0,
        };
        let request = Request {
            method: "POST".to_owned(),
            target: "/v1/degrade".to_owned(),
            http11: true,
            headers: vec![],
            body: query.to_body().into_bytes(),
        };
        let deadline = Deadline::new(CancelToken::new(), Instant::now() + Duration::from_secs(30));
        let (response, _) = handle(&state, &request, &deadline);
        assert_eq!(response.status, 200);
        assert_eq!(eval.calls.load(Ordering::SeqCst), i + 1);
    }
}

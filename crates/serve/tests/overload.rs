//! Overload-control integration: the circuit breaker, brownout mode, and
//! the health state machine, driven through the real `handle` router with
//! an evaluator whose failures the test controls.

#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use relia_core::{CancelToken, Deadline, Kelvin, StressKey};
use relia_jobs::ShardedCache;
use relia_serve::{
    handle, BreakerState, DegradeQuery, Endpoint, HealthState, ModelEval, OverloadConfig, Request,
    Response, ServeState,
};

/// An evaluator that fails while `broken` is set and heals on demand.
struct FlakyEval {
    broken: AtomicBool,
    calls: AtomicUsize,
}

impl FlakyEval {
    fn new(broken: bool) -> Self {
        FlakyEval {
            broken: AtomicBool::new(broken),
            calls: AtomicUsize::new(0),
        }
    }

    fn heal(&self) {
        self.broken.store(false, Ordering::SeqCst);
    }

    fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl ModelEval for FlakyEval {
    fn delta_vth(&self, _key: StressKey) -> Result<f64, String> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.broken.load(Ordering::SeqCst) {
            Err("injected evaluator failure".to_owned())
        } else {
            Ok(0.0145)
        }
    }
}

fn query(t_standby: f64) -> DegradeQuery {
    DegradeQuery {
        ras: (1.0, 9.0),
        t_standby_k: Kelvin(t_standby),
        lifetime_s: 1.0e8,
        p_active: 0.5,
        p_standby: 1.0,
    }
}

fn degrade_request(t_standby: f64) -> Request {
    Request {
        method: "POST".to_owned(),
        target: "/v1/degrade".to_owned(),
        http11: true,
        headers: vec![],
        body: query(t_standby).to_body().into_bytes(),
    }
}

fn get(path: &str) -> Request {
    Request {
        method: "GET".to_owned(),
        target: path.to_owned(),
        http11: true,
        headers: vec![],
        body: Vec::new(),
    }
}

fn send(state: &ServeState, request: &Request) -> Response {
    let deadline = Deadline::new(CancelToken::new(), Instant::now() + Duration::from_secs(30));
    handle(state, request, &deadline).0
}

fn flaky_state(eval: &Arc<FlakyEval>, config: OverloadConfig) -> ServeState {
    ServeState::with_eval(
        Arc::new(ShardedCache::default()),
        Arc::clone(eval) as Arc<dyn ModelEval>,
        Duration::from_secs(30),
    )
    .unwrap()
    .with_overload(config)
}

#[test]
fn consecutive_failures_open_the_breaker_and_shed_cold_work() {
    let eval = Arc::new(FlakyEval::new(true));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(3600),
            ..OverloadConfig::default()
        },
    );

    // Three failures burn the budget; each is answered 500.
    for i in 0..3 {
        let response = send(&state, &degrade_request(330.0 + f64::from(i)));
        assert_eq!(response.status, 500, "failure {i}");
    }
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Open
    );

    // Open breaker, cold key, cooldown far away: fast 503 + Retry-After,
    // with no evaluator call.
    let calls_before = eval.calls();
    let response = send(&state, &degrade_request(400.0));
    assert_eq!(response.status, 503);
    let retry_after = response.retry_after.expect("shed advertises Retry-After");
    assert!((1..=3).contains(&retry_after), "default jitter is 1..=3");
    assert_eq!(eval.calls(), calls_before, "shed without evaluating");

    let snapshot = state.snapshot();
    assert_eq!(snapshot.counter("serve_breaker_opens"), Some(1));
    assert_eq!(snapshot.counter("serve_brownout_sheds"), Some(1));
    assert_eq!(
        snapshot.gauge("serve_breaker_state_degrade"),
        Some(2.0),
        "open encodes as gauge 2"
    );
    assert_eq!(snapshot.gauge("serve_breaker_state_sweep"), Some(0.0));
}

#[test]
fn open_breaker_still_serves_memoized_answers() {
    let eval = Arc::new(FlakyEval::new(true));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..OverloadConfig::default()
        },
    );
    // Warm the memo cache directly (the evaluator itself is broken).
    let warm = query(330.0);
    let key = warm.stress_key().unwrap();
    state.cache.insert_checked(key, 0.0145).unwrap();

    assert_eq!(send(&state, &degrade_request(360.0)).status, 500);
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Open
    );

    // The warmed key gets a full 200 through the brownout gate...
    let calls_before = eval.calls();
    let hit = send(&state, &degrade_request(330.0));
    assert_eq!(hit.status, 200);
    assert!(String::from_utf8(hit.body.clone())
        .unwrap()
        .contains("\"delta_vth_v\":0.0145"));
    assert_eq!(eval.calls(), calls_before, "served from the cache");
    // ...while a cold key is shed.
    assert_eq!(send(&state, &degrade_request(390.0)).status, 503);
}

#[test]
fn half_open_probe_recovers_a_healed_service() {
    let eval = Arc::new(FlakyEval::new(true));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(50),
            ..OverloadConfig::default()
        },
    );
    assert_eq!(send(&state, &degrade_request(330.0)).status, 500);
    assert_eq!(send(&state, &degrade_request(331.0)).status, 500);
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Open
    );

    eval.heal();
    thread::sleep(Duration::from_millis(80));

    // First post-cooldown request is the probe; its success closes the
    // breaker and normal service resumes.
    assert_eq!(send(&state, &degrade_request(332.0)).status, 200);
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Closed
    );
    assert_eq!(send(&state, &degrade_request(333.0)).status, 200);
}

#[test]
fn a_failed_probe_reopens_the_breaker() {
    let eval = Arc::new(FlakyEval::new(true));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(50),
            ..OverloadConfig::default()
        },
    );
    assert_eq!(send(&state, &degrade_request(330.0)).status, 500);
    thread::sleep(Duration::from_millis(80));
    // Still broken: the probe fails, the breaker reopens, the next
    // request (inside the restarted cooldown) is shed without evaluating.
    assert_eq!(send(&state, &degrade_request(331.0)).status, 500);
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Open
    );
    let calls_before = eval.calls();
    assert_eq!(send(&state, &degrade_request(332.0)).status, 503);
    assert_eq!(eval.calls(), calls_before);
    assert_eq!(state.snapshot().counter("serve_breaker_opens"), Some(2));
}

#[test]
fn queue_congestion_engages_brownout_with_closed_breakers() {
    let eval = Arc::new(FlakyEval::new(false));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            brownout_high_water: 0,
            ..OverloadConfig::default()
        },
    );
    let warm = query(330.0);
    state
        .cache
        .insert_checked(warm.stress_key().unwrap(), 0.0145)
        .unwrap();

    // Past the (zero) high-water mark: cache hits answer, cold work sheds.
    state.overload.conn_enqueued();
    assert_eq!(send(&state, &degrade_request(330.0)).status, 200);
    assert_eq!(send(&state, &degrade_request(360.0)).status, 503);
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Closed,
        "brownout here is queue pressure, not breaker state"
    );

    // Back under the mark: cold work evaluates again.
    state.overload.conn_dequeued();
    assert_eq!(send(&state, &degrade_request(360.0)).status, 200);
}

#[test]
fn healthz_reports_degraded_with_retry_after_and_recovers() {
    let eval = Arc::new(FlakyEval::new(true));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..OverloadConfig::default()
        },
    );
    let healthy = send(&state, &get("/healthz"));
    assert_eq!(healthy.status, 200);
    assert_eq!(healthy.body, b"{\"status\":\"ok\"}");
    assert_eq!(state.health.current(), HealthState::Healthy);

    assert_eq!(send(&state, &degrade_request(330.0)).status, 500);
    let degraded = send(&state, &get("/healthz"));
    assert_eq!(degraded.status, 203);
    let body = String::from_utf8(degraded.body.clone()).unwrap();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"breaker\":\"open\""), "{body}");
    assert!(
        degraded.retry_after.is_some(),
        "degraded advertises a retry"
    );
    assert_eq!(state.health.current(), HealthState::Degraded);

    // Recovery: close the breaker via a successful settle, and health
    // walks back to Healthy on the next observation.
    eval.heal();
    state.overload.breaker(Endpoint::Degrade).record_success();
    let healthy_again = send(&state, &get("/healthz"));
    assert_eq!(healthy_again.status, 200);
    assert_eq!(healthy_again.body, b"{\"status\":\"ok\"}");
    assert_eq!(state.health.transitions(), 2, "Healthy→Degraded→Healthy");
    assert_eq!(
        state.snapshot().counter("serve_health_transitions"),
        Some(2)
    );
    let log = state.health.log();
    assert_eq!(log[0].from, HealthState::Healthy);
    assert_eq!(log[0].to, HealthState::Degraded);
    assert_eq!(log[1].to, HealthState::Healthy);
}

#[test]
fn endpoint_breakers_are_independent() {
    let eval = Arc::new(FlakyEval::new(true));
    let state = flaky_state(
        &eval,
        OverloadConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..OverloadConfig::default()
        },
    );
    assert_eq!(send(&state, &degrade_request(330.0)).status, 500);
    assert_eq!(
        state.overload.breaker(Endpoint::Degrade).state(),
        BreakerState::Open
    );
    // Sweep and fleet still run: their breakers never tripped. (The sweep
    // here is a parse failure — a 400 — which must NOT burn their budget.)
    let mut sweep = Request {
        method: "POST".to_owned(),
        target: "/v1/sweep".to_owned(),
        http11: true,
        headers: vec![],
        body: b"{\"nonsense\":true}".to_vec(),
    };
    assert_eq!(send(&state, &sweep).status, 400);
    assert_eq!(
        state.overload.breaker(Endpoint::Sweep).state(),
        BreakerState::Closed,
        "4xx answers do not burn the error budget"
    );
    sweep.body = b"not json at all".to_vec();
    assert_eq!(send(&state, &sweep).status, 400);
    assert_eq!(
        state.overload.breaker(Endpoint::Sweep).state(),
        BreakerState::Closed
    );
}

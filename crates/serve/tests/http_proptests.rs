//! Property-based fuzzing of the HTTP/1.1 request parser.
//!
//! The parser sits directly on untrusted socket bytes, so the bar is: it
//! never panics, and every rejection maps to the documented status class —
//! 400 for malformed syntax, 413 for exceeded limits, quiet close for a
//! clean EOF before a request starts. Random inputs here are adversarial
//! by construction (raw bytes, truncations, oversized fields, pipelined
//! garbage); the deterministic unit tests in `src/http.rs` pin the exact
//! cases.

#![allow(clippy::unwrap_used)]

use std::io::Cursor;

use proptest::collection::vec;
use proptest::prelude::*;
use relia_serve::{read_request, Limits, ParseError};

fn small_limits() -> Limits {
    Limits {
        max_request_line: 128,
        max_header_line: 128,
        max_headers: 8,
        max_body: 256,
    }
}

/// Drains a byte stream through the parser until it errors or the stream
/// is exhausted, returning every outcome. Never more than `cap` rounds, so
/// a pathological accept-everything bug cannot loop forever.
fn parse_all(bytes: &[u8], limits: &Limits) -> Vec<Result<(), ParseError>> {
    let mut reader = Cursor::new(bytes.to_vec());
    let mut outcomes = Vec::new();
    for _ in 0..64 {
        match read_request(&mut reader, limits) {
            Ok(_) => outcomes.push(Ok(())),
            Err(e) => {
                let stop = matches!(e, ParseError::Closed | ParseError::Io(_));
                outcomes.push(Err(e));
                if stop {
                    break;
                }
            }
        }
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the parser, and every error carries a
    /// defined mapping (400 / 413 / 408, or a quiet close).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..=300)) {
        for outcome in parse_all(&bytes, &small_limits()) {
            if let Err(e) = outcome {
                let ok = matches!(e.status(), Some(400 | 413 | 408) | None);
                prop_assert!(ok, "unexpected mapping for {e:?}");
            }
        }
    }

    /// Printable garbage lines are rejected as 400 (or parse as a valid
    /// request if the generator happens to spell one), never a panic.
    #[test]
    fn garbage_text_maps_to_400_or_parses(line in "[ -~]{0,120}") {
        let mut bytes = line.clone().into_bytes();
        bytes.extend_from_slice(b"\r\n\r\n");
        let mut reader = Cursor::new(bytes);
        match read_request(&mut reader, &small_limits()) {
            Ok(req) => drop(req),
            Err(e) => prop_assert!(
                matches!(e.status(), Some(400 | 413) | None),
                "line {line:?} mapped to {e:?}"
            ),
        }
    }

    /// A syntactically valid request round-trips regardless of the target
    /// and body the generator picks. (The vendored proptest ignores regex
    /// classes, so the path segment is mapped onto `[a-z]` explicitly.)
    #[test]
    fn valid_requests_round_trip(
        seg in vec(0u8..26, 1..=24)
            .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect::<String>()),
        body in vec(any::<u8>(), 0..=200),
    ) {
        let raw = format!(
            "POST /v1/{seg} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);
        let mut reader = Cursor::new(bytes);
        let req = read_request(&mut reader, &small_limits()).unwrap();
        prop_assert_eq!(req.method.as_str(), "POST");
        let want = format!("/v1/{seg}");
        prop_assert_eq!(req.path(), want.as_str());
        prop_assert_eq!(&req.body, &body);
    }

    /// A declared body longer than `max_body` is 413 before any body byte
    /// is trusted; a longer-than-declared stream does not leak extra bytes
    /// into the request.
    #[test]
    fn oversized_declared_bodies_are_413(extra in 1usize..=4096) {
        let limits = small_limits();
        let n = limits.max_body + extra;
        let raw = format!("POST /v1/degrade HTTP/1.1\r\ncontent-length: {n}\r\n\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&vec![b'x'; n]);
        let mut reader = Cursor::new(bytes);
        let e = read_request(&mut reader, &limits).unwrap_err();
        prop_assert_eq!(e.status(), Some(413), "{e:?}");
    }

    /// Truncating a valid request at any byte yields a clean close or a
    /// 400/408-class error — never a panic, never a phantom request.
    #[test]
    fn truncation_never_panics(cut in 0usize..=64) {
        let raw = b"POST /v1/degrade HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let cut = cut.min(raw.len());
        let mut reader = Cursor::new(raw[..cut].to_vec());
        match read_request(&mut reader, &small_limits()) {
            Ok(req) => prop_assert_eq!(&req.body, b"hello", "full request at cut={cut}"),
            Err(e) => prop_assert!(
                matches!(e.status(), Some(400 | 408) | None),
                "cut={cut} mapped to {e:?}"
            ),
        }
    }

    /// Pipelined valid requests followed by garbage: the valid prefix
    /// parses request-by-request, then the garbage is rejected without
    /// affecting the already-parsed ones.
    #[test]
    fn pipelined_prefix_survives_trailing_garbage(
        count in 1usize..=4,
        junk in vec(any::<u8>(), 1..=64),
    ) {
        let mut bytes = Vec::new();
        for _ in 0..count {
            bytes.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        }
        bytes.extend_from_slice(&junk);
        let outcomes = parse_all(&bytes, &small_limits());
        let parsed = outcomes.iter().take_while(|o| o.is_ok()).count();
        prop_assert!(parsed >= count, "{parsed} < {count}: {outcomes:?}");
    }
}

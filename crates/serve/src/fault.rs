//! Deterministic socket-level fault injection (feature `fault-inject`
//! only — the module does not exist in normal builds).
//!
//! The batch engine's fault plan (`relia_jobs::fault`) breaks *jobs*;
//! this module breaks *connections*. A [`ChaosPlan`] maps connection
//! indices to [`ConnFault`]s using the same seeded
//! [`FaultRng`](relia_jobs::FaultRng) stream, so one seed fully
//! determines the fault sequence of a chaos run — rerunning with the
//! same seed replays the exact same abuse.
//!
//! [`FaultStream`] wraps a *client-side* stream and misbehaves on the
//! peer's behalf:
//!
//! | fault | wire behavior | what the server must do |
//! |---|---|---|
//! | [`ConnFault::Clean`] | normal request | answer it (control group) |
//! | [`ConnFault::Dribble`] | bytes arrive in tiny delayed chunks | fast dribble: answer; slow dribble: `408` via the arrival budget |
//! | [`ConnFault::ShortWrite`] | every write syscall is partial | answer — partial writes are normal TCP |
//! | [`ConnFault::Disconnect`] | connection reset mid-message | recycle the worker, count the error |
//! | [`ConnFault::Truncate`] | FIN after a byte prefix | `400 truncated`, keep the read side alive |
//! | [`ConnFault::StallKeepAlive`] | completed exchange, then silence | reap the idle peer within the timeout |
//!
//! The severing behaviors go through the [`Severable`] trait rather than
//! `TcpStream` directly so unit tests can drive the injector against an
//! in-memory stream and assert exactly which bytes made it out.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::thread;
use std::time::Duration;

use relia_jobs::FaultRng;

/// A stream that can end one or both directions early — the two ways a
/// real peer disappears.
pub trait Severable {
    /// Half-close: no more bytes will be written (TCP FIN), but the read
    /// side stays open so the server's error response can still arrive.
    fn sever_write(&mut self) -> io::Result<()>;
    /// Full close of both directions, as abruptly as the transport
    /// allows.
    fn sever_both(&mut self) -> io::Result<()>;
}

impl Severable for TcpStream {
    fn sever_write(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Write)
    }

    fn sever_both(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

/// One connection-level fault, applied by [`FaultStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// No fault — the control group keeping a chaos run honest.
    Clean,
    /// Write at most `chunk` bytes per call, sleeping `delay_ms` after
    /// each. A fast dribble stays inside the server's arrival budget; a
    /// slow one (1 byte every few tens of ms) is a slowloris.
    Dribble { chunk: usize, delay_ms: u64 },
    /// Write at most `max` bytes per call, back to back. Exercises every
    /// partial-write path without changing timing.
    ShortWrite { max: usize },
    /// After `after` bytes, sever both directions and fail further
    /// writes — a peer reset mid-message.
    Disconnect { after: usize },
    /// After `keep` bytes, half-close the write side and silently swallow
    /// the rest — the server sees a truncated message but can still
    /// deliver its `400`.
    Truncate { keep: usize },
    /// Complete the exchange normally, then hold the keep-alive
    /// connection open in silence for `ms` before closing.
    StallKeepAlive { ms: u64 },
}

/// A seeded schedule of connection faults. `fault_for` is a pure function
/// of `(seed, index)` — connections can be launched in any order, or
/// concurrently, and still replay the same schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    seed: u64,
}

impl ChaosPlan {
    /// A plan fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed }
    }

    /// The seed, for reporting.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault for connection `index`.
    pub fn fault_for(&self, index: u64) -> ConnFault {
        // Mix the index into the seed (SplitMix-style multiplier) so each
        // connection gets an independent draw position.
        let mut rng =
            FaultRng::new(self.seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match rng.pick(8) {
            // Weight Clean at 2/8: enough control connections that the
            // suite also proves the server still answers normal traffic.
            0 | 1 => ConnFault::Clean,
            2 => ConnFault::Dribble {
                chunk: 16,
                delay_ms: 1,
            },
            3 => ConnFault::Dribble {
                chunk: 1,
                delay_ms: 30,
            },
            4 => ConnFault::ShortWrite {
                max: 1 + rng.pick(7) as usize,
            },
            5 => ConnFault::Disconnect {
                after: rng.pick(40) as usize,
            },
            6 => ConnFault::Truncate {
                keep: 1 + rng.pick(40) as usize,
            },
            _ => ConnFault::StallKeepAlive {
                ms: 20 + rng.pick(80),
            },
        }
    }
}

/// Wraps a client stream and applies one [`ConnFault`] to its write path.
/// Reads pass through untouched — the injector corrupts what the server
/// *receives*, then observes what it answers.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    fault: ConnFault,
    written: usize,
    severed: bool,
}

impl<S: Read + Write + Severable> FaultStream<S> {
    /// Applies `fault` to writes on `inner`.
    pub fn new(inner: S, fault: ConnFault) -> Self {
        FaultStream {
            inner,
            fault,
            written: 0,
            severed: false,
        }
    }

    /// The fault being injected.
    pub fn fault(&self) -> ConnFault {
        self.fault
    }

    /// Total bytes actually forwarded to the peer.
    pub fn forwarded(&self) -> usize {
        self.written
    }

    /// Runs the post-exchange phase of the fault: a
    /// [`ConnFault::StallKeepAlive`] peer lingers in silence for its
    /// configured time, then closes. Every other fault is a no-op.
    pub fn finish(&mut self) {
        if let ConnFault::StallKeepAlive { ms } = self.fault {
            if ms > 0 {
                // Chaos client code, not a request handler: the stall *is*
                // the fault being injected.
                // relia-lint: allow(blocking-in-handler)
                thread::sleep(Duration::from_millis(ms));
            }
            let _ = self.inner.sever_both();
        }
    }

    /// The inner stream, for response reads after faulted writes.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: Read + Write + Severable> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Read + Write + Severable> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.fault {
            ConnFault::Clean | ConnFault::StallKeepAlive { .. } => self.inner.write(buf),
            ConnFault::Dribble { chunk, delay_ms } => {
                let n = buf.len().min(chunk.max(1));
                let n = self.inner.write(&buf[..n])?;
                self.written += n;
                if delay_ms > 0 {
                    // The injected slowloris delay itself.
                    // relia-lint: allow(blocking-in-handler)
                    thread::sleep(Duration::from_millis(delay_ms));
                }
                Ok(n)
            }
            ConnFault::ShortWrite { max } => {
                let n = buf.len().min(max.max(1));
                let n = self.inner.write(&buf[..n])?;
                self.written += n;
                Ok(n)
            }
            ConnFault::Disconnect { after } => {
                if self.written >= after {
                    if !self.severed {
                        self.severed = true;
                        let _ = self.inner.sever_both();
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected disconnect",
                    ));
                }
                let n = buf.len().min(after - self.written);
                let n = self.inner.write(&buf[..n])?;
                self.written += n;
                Ok(n)
            }
            ConnFault::Truncate { keep } => {
                if self.written >= keep {
                    if !self.severed {
                        self.severed = true;
                        let _ = self.inner.sever_write();
                    }
                    // Swallow the rest: the caller's write_all completes
                    // and moves on to reading the server's 400.
                    return Ok(buf.len());
                }
                let n = buf.len().min(keep - self.written);
                let n = self.inner.write(&buf[..n])?;
                self.written += n;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory stand-in for a socket: records what was written and
    /// which directions were severed.
    #[derive(Debug, Default)]
    struct MemStream {
        sent: Vec<u8>,
        write_severed: bool,
        both_severed: bool,
    }

    impl Read for MemStream {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.sent.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Severable for MemStream {
        fn sever_write(&mut self) -> io::Result<()> {
            self.write_severed = true;
            Ok(())
        }

        fn sever_both(&mut self) -> io::Result<()> {
            self.both_severed = true;
            Ok(())
        }
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a: Vec<_> = (0..32).map(|i| ChaosPlan::new(7).fault_for(i)).collect();
        let b: Vec<_> = (0..32).map(|i| ChaosPlan::new(7).fault_for(i)).collect();
        let c: Vec<_> = (0..32).map(|i| ChaosPlan::new(8).fault_for(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn plans_cover_every_fault_kind() {
        let plan = ChaosPlan::new(42);
        let faults: Vec<_> = (0..256).map(|i| plan.fault_for(i)).collect();
        assert!(faults.iter().any(|f| matches!(f, ConnFault::Clean)));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ConnFault::Dribble { chunk: 1, .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ConnFault::Dribble { chunk: 16, .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ConnFault::ShortWrite { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ConnFault::Disconnect { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ConnFault::Truncate { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, ConnFault::StallKeepAlive { .. })));
    }

    #[test]
    fn dribble_chunks_but_delivers_everything() {
        let mut s = FaultStream::new(
            MemStream::default(),
            ConnFault::Dribble {
                chunk: 3,
                delay_ms: 0,
            },
        );
        s.write_all(b"0123456789").unwrap();
        assert_eq!(s.get_mut().sent, b"0123456789");
        assert_eq!(s.forwarded(), 10);
    }

    #[test]
    fn short_writes_are_partial_but_complete() {
        let mut s = FaultStream::new(MemStream::default(), ConnFault::ShortWrite { max: 2 });
        assert_eq!(s.write(b"abcdef").unwrap(), 2);
        s.write_all(b"cdef").unwrap();
        assert_eq!(s.get_mut().sent, b"abcdef");
    }

    #[test]
    fn disconnect_severs_both_directions_after_its_budget() {
        let mut s = FaultStream::new(MemStream::default(), ConnFault::Disconnect { after: 4 });
        let err = s.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.get_mut().sent, b"0123");
        assert!(s.get_mut().both_severed);
        assert!(!s.get_mut().write_severed);
    }

    #[test]
    fn truncate_half_closes_and_swallows_the_tail() {
        let mut s = FaultStream::new(MemStream::default(), ConnFault::Truncate { keep: 5 });
        s.write_all(b"0123456789").unwrap();
        assert_eq!(s.get_mut().sent, b"01234");
        assert!(s.get_mut().write_severed, "FIN on the write side only");
        assert!(
            !s.get_mut().both_severed,
            "read side stays open for the 400"
        );
    }

    #[test]
    fn stall_finish_lingers_then_closes_both() {
        let mut s = FaultStream::new(MemStream::default(), ConnFault::StallKeepAlive { ms: 0 });
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(s.get_mut().sent, b"GET / HTTP/1.1\r\n\r\n");
        s.finish();
        assert!(s.get_mut().both_severed);
    }

    #[test]
    fn clean_passes_bytes_through_untouched() {
        let mut s = FaultStream::new(MemStream::default(), ConnFault::Clean);
        s.write_all(b"hello").unwrap();
        s.finish();
        assert_eq!(s.get_mut().sent, b"hello");
        assert!(!s.get_mut().both_severed);
    }
}

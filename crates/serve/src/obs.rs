//! Server-side observability: the span ring behind `GET /debug/trace`,
//! per-phase latency histograms surfaced on `/metrics`, the process
//! uptime gauge, and the slow-request log.
//!
//! One [`ServeObs`] lives on [`ServeState`](crate::service::ServeState).
//! The connection loop opens a `request` span per message and records the
//! `read`, `queue_wait`, and `write` phases; the degrade handler nests
//! `coalesce`, `evaluate`, and `serialize` under it. Every phase also
//! feeds a [`LatencyHist`], so `/metrics` carries the full latency
//! breakdown as Prometheus histograms while `/debug/trace` shows the most
//! recent individual spans.
//!
//! Recording is always cheap: histograms are relaxed atomics, and a
//! tracer built with capacity 0 allocates ids but stores nothing — the
//! `--trace 0` configuration costs a handful of atomic increments per
//! request.

use std::sync::Mutex;
use std::time::Instant;

use relia_jobs::MetricsSnapshot;
use relia_obs::{fmt_ns, LatencyHist, Tracer};

use crate::json;

/// Default span-ring capacity (`--trace` overrides; 0 disables).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Where slow-request lines go: the CLI passes stderr, tests pass a
/// collector.
pub type SlowSink = Box<dyn Fn(&str) + Send + Sync>;

/// Per-server observability state: span ring, phase histograms, slow-log
/// threshold, and the start instant behind `process_uptime_seconds`.
pub struct ServeObs {
    /// The span ring behind `GET /debug/trace`.
    pub tracer: Tracer,
    /// Whole-request latency (first byte read → response written).
    pub request: LatencyHist,
    /// Request arrival: first byte → fully parsed.
    pub read: LatencyHist,
    /// Connection queue wait: accepted → claimed by a worker.
    pub queue: LatencyHist,
    /// Surface-tier interpolated lookups on `/v1/degrade`.
    pub surface: LatencyHist,
    /// Single-flight wait on `/v1/degrade` (leader and joiners both).
    pub coalesce: LatencyHist,
    /// Leader-side model evaluations.
    pub eval: LatencyHist,
    /// Response-body rendering.
    pub serialize: LatencyHist,
    /// Response write to the socket.
    pub write: LatencyHist,
    slow_ns: u64,
    sink: Mutex<SlowSink>,
    started: Instant,
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("tracer", &self.tracer)
            .field("slow_ns", &self.slow_ns)
            .finish()
    }
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new()
    }
}

impl ServeObs {
    /// Observability at the defaults: a [`DEFAULT_TRACE_CAPACITY`]-slot
    /// span ring, slow-request log off.
    pub fn new() -> Self {
        ServeObs {
            tracer: Tracer::new(DEFAULT_TRACE_CAPACITY),
            request: LatencyHist::new(),
            read: LatencyHist::new(),
            queue: LatencyHist::new(),
            surface: LatencyHist::new(),
            coalesce: LatencyHist::new(),
            eval: LatencyHist::new(),
            serialize: LatencyHist::new(),
            write: LatencyHist::new(),
            slow_ns: 0,
            sink: Mutex::new(Box::new(|_| {})),
            started: Instant::now(),
        }
    }

    /// Replaces the tracer (builder style) — the CLI sizes the ring from
    /// `--trace N`, tests inject a deterministic clock.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enables the slow-request log: requests slower than `slow_ms` are
    /// reported through `sink` (builder style; 0 disables).
    #[must_use]
    pub fn with_slow_log(mut self, slow_ms: u64, sink: SlowSink) -> Self {
        self.slow_ns = slow_ms.saturating_mul(1_000_000);
        self.sink = Mutex::new(sink);
        self
    }

    /// The slow-request threshold in milliseconds (0 = off).
    pub fn slow_ms(&self) -> u64 {
        self.slow_ns / 1_000_000
    }

    /// Records a finished request into the request histogram and, when it
    /// crossed the slow threshold, emits one slow-log line.
    pub fn observe_request(&self, method: &str, path: &str, status: u16, dur_ns: u64) {
        self.request.record_ns(dur_ns);
        if self.slow_ns > 0 && dur_ns >= self.slow_ns {
            let line = format!(
                "slow request: {method} {path} -> {status} in {} (threshold {} ms)",
                fmt_ns(dur_ns as f64),
                self.slow_ns / 1_000_000
            );
            // relia-lint: allow(unwrap-in-lib)
            let sink = self.sink.lock().expect("slow-log sink poisoned");
            sink(&line);
        }
    }

    /// Seconds since this state was built (the `process_uptime_seconds`
    /// gauge).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The observability slice of `/metrics`: uptime gauge, dropped-span
    /// counter, and every phase histogram (present even when empty, so
    /// dashboards see stable series).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("serve_spans_dropped", self.tracer.dropped())],
            gauges: vec![("process_uptime_seconds", self.uptime_seconds())],
            histograms: vec![
                ("serve_request_seconds", self.request.snapshot()),
                ("serve_read_seconds", self.read.snapshot()),
                ("serve_queue_seconds", self.queue.snapshot()),
                ("serve_surface_seconds", self.surface.snapshot()),
                ("serve_coalesce_seconds", self.coalesce.snapshot()),
                ("serve_eval_seconds", self.eval.snapshot()),
                ("serve_serialize_seconds", self.serialize.snapshot()),
                ("serve_write_seconds", self.write.snapshot()),
            ],
        }
    }

    /// The `GET /debug/trace` body: the ring's current spans, oldest
    /// first, each with alphabetically ordered keys —
    /// `{"dropped":N,"spans":[{"dur_ns":…,"id":…,"name":…,"parent":…,"start_ns":…}]}`.
    pub fn trace_json(&self) -> String {
        let spans: Vec<String> = self
            .tracer
            .recent()
            .iter()
            .map(|s| {
                format!(
                    "{{\"dur_ns\":{},\"id\":{},\"name\":\"{}\",\"parent\":{},\"start_ns\":{}}}",
                    s.dur_ns,
                    s.id,
                    json::escape(s.name),
                    s.parent,
                    s.start_ns
                )
            })
            .collect();
        format!(
            "{{\"dropped\":{},\"spans\":[{}]}}",
            self.tracer.dropped(),
            spans.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_exposes_uptime_and_every_phase_histogram() {
        let obs = ServeObs::new();
        obs.eval.record_ns(1000);
        let s = obs.snapshot();
        assert!(s.gauge("process_uptime_seconds").is_some());
        assert_eq!(s.counter("serve_spans_dropped"), Some(0));
        assert_eq!(s.histograms.len(), 8);
        assert_eq!(
            s.histogram("serve_surface_seconds").map(|h| h.count),
            Some(0)
        );
        assert_eq!(s.histogram("serve_eval_seconds").map(|h| h.count), Some(1));
        assert_eq!(
            s.histogram("serve_request_seconds").map(|h| h.count),
            Some(0),
            "empty phases still publish a series"
        );
    }

    #[test]
    fn trace_json_is_schema_stable_and_parses() {
        let clock = Arc::new(relia_obs::TestClock::new());
        let obs = ServeObs::new().with_tracer(Tracer::with_clock(8, clock.clone()));
        let root = obs.tracer.span("request");
        clock.advance(50);
        drop(obs.tracer.child("evaluate", root.id()));
        clock.advance(25);
        drop(root);

        let body = obs.trace_json();
        assert_eq!(
            body,
            "{\"dropped\":0,\"spans\":[\
             {\"dur_ns\":75,\"id\":1,\"name\":\"request\",\"parent\":0,\"start_ns\":0},\
             {\"dur_ns\":0,\"id\":2,\"name\":\"evaluate\",\"parent\":1,\"start_ns\":50}]}"
        );
        let parsed = json::parse(body.as_bytes()).unwrap();
        let spans = parsed
            .get("spans")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn slow_requests_are_logged_past_the_threshold_only() {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        let obs = ServeObs::new().with_slow_log(
            10,
            Box::new(move |line| sink.lock().unwrap().push(line.to_owned())),
        );
        obs.observe_request("POST", "/v1/degrade", 200, 9_999_999);
        assert!(lines.lock().unwrap().is_empty());
        obs.observe_request("POST", "/v1/degrade", 200, 12_000_000);
        let logged = lines.lock().unwrap();
        assert_eq!(logged.len(), 1);
        assert!(logged[0].contains("POST /v1/degrade -> 200"));
        assert!(logged[0].contains("12"), "duration rendered: {}", logged[0]);
        assert_eq!(obs.request.count(), 2);
    }
}

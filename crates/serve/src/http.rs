//! A hardened HTTP/1.1 request reader and response writer over any
//! buffered byte stream.
//!
//! This is deliberately a *subset* of HTTP/1.1 — exactly what an offline
//! JSON API needs and nothing a parser bug can hide in:
//!
//! * request line + headers + `Content-Length` body; no chunked *request*
//!   bodies, no trailers, no upgrades, no continuation lines (responses
//!   may stream with chunked transfer encoding — see
//!   [`write_chunked_head`]);
//! * every dimension is bounded ([`Limits`]): request-line bytes, header
//!   count and line bytes, body bytes — oversize input maps to **413**;
//! * malformed input (bad request line, bad header syntax, bad
//!   `Content-Length`, truncated message) maps to **400**;
//! * a read that times out mid-message maps to **408** — but a timeout (or
//!   clean close) *between* messages on a keep-alive connection is a
//!   normal end of connection, not an error;
//! * reads are incremental and exact: there is no `read_to_end` anywhere a
//!   hostile peer could stall (relia-lint R7 enforces this for serve
//!   code).
//!
//! The reader/writer are pure functions of the stream, so property tests
//! drive them with in-memory cursors and the server drives them with
//! `TcpStream`s — same code path.

use std::io::{self, BufRead, Write};

/// Upper bounds on one request's dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most headers accepted.
    pub max_headers: usize,
    /// Largest accepted body, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 64 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path, query string included).
    pub target: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }

    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 defaults to keep-alive, 1.0 to close).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// How reading a request failed, mapped to the response status the server
/// must send (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically invalid request → **400**.
    Bad(&'static str),
    /// A limit was exceeded → **413**.
    TooLarge(&'static str),
    /// The read timed out mid-message → **408**.
    Timeout,
    /// The peer closed (or timed out) between messages: normal end of a
    /// keep-alive connection. No response is owed.
    Closed,
    /// Transport failure; the connection is unusable.
    Io(io::ErrorKind),
}

impl ParseError {
    /// The HTTP status the server should answer with, or `None` when the
    /// connection just ends.
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::Bad(_) => Some(400),
            ParseError::TooLarge(_) => Some(413),
            ParseError::Timeout => Some(408),
            ParseError::Closed | ParseError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Bad(what) => write!(f, "bad request: {what}"),
            ParseError::TooLarge(what) => write!(f, "request too large: {what}"),
            ParseError::Timeout => write!(f, "timed out reading the request"),
            ParseError::Closed => write!(f, "connection closed"),
            ParseError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one line (terminated by `\n`; a trailing `\r` is stripped) with a
/// byte cap. `started` reports whether any bytes had already been consumed
/// for the current message — it decides whether EOF/timeouts mean a clean
/// connection end ([`ParseError::Closed`]) or a damaged message.
fn read_line(
    reader: &mut impl BufRead,
    cap: usize,
    started: bool,
    too_large: &'static str,
) -> Result<String, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if is_timeout(&e) => {
                return Err(if started || !line.is_empty() {
                    ParseError::Timeout
                } else {
                    ParseError::Closed
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        };
        if available.is_empty() {
            // EOF: clean between messages, truncation inside one.
            return Err(if started || !line.is_empty() {
                ParseError::Bad("truncated message")
            } else {
                ParseError::Closed
            });
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |p| p + 1);
        if line.len() + take > cap + 2 {
            // +2 tolerates the \r\n itself on an exactly-cap-sized line.
            return Err(ParseError::TooLarge(too_large));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| ParseError::Bad("non-utf-8 header bytes"));
        }
    }
}

fn valid_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"-!#$%&'*+.^_`|~".contains(&b))
}

/// Reads one request from `reader`.
///
/// # Errors
///
/// [`ParseError::Closed`] when the peer ended the connection cleanly
/// before sending anything; the other variants as documented on
/// [`ParseError`].
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, ParseError> {
    // Tolerate one empty line before the request line (robustness against
    // sloppy pipelining), per RFC 9112 §2.2.
    let mut request_line = read_line(reader, limits.max_request_line, false, "request line")?;
    if request_line.is_empty() {
        request_line = read_line(reader, limits.max_request_line, false, "request line")?;
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Bad("malformed request line")),
    };
    if !valid_token(method) {
        return Err(ParseError::Bad("invalid method token"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Bad("unsupported http version")),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, limits.max_header_line, true, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Bad("header without ':'"))?;
        if !valid_token(name) {
            // Also rejects leading whitespace, i.e. obsolete line folding.
            return Err(ParseError::Bad("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method: method.to_owned(),
        target: target.to_owned(),
        http11,
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Bad("transfer-encoding is not supported"));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => {
            if request
                .headers
                .iter()
                .filter(|(n, _)| n == "content-length")
                .count()
                > 1
            {
                return Err(ParseError::Bad("duplicate content-length"));
            }
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad("invalid content-length"))?
        }
    };
    if content_length > limits.max_body {
        return Err(ParseError::TooLarge("body exceeds limit"));
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        let mut filled = 0;
        while filled < content_length {
            match reader.read(&mut body[filled..]) {
                Ok(0) => return Err(ParseError::Bad("truncated body")),
                Ok(n) => filled += n,
                Err(e) if is_timeout(&e) => return Err(ParseError::Timeout),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ParseError::Io(e.kind())),
            }
        }
        request.body = body;
    }
    Ok(request)
}

/// One response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Adds `Retry-After: <secs>` (load shedding).
    pub retry_after: Option<u32>,
    /// Forces `Connection: close`.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
            close: false,
        }
    }

    /// A JSON error response `{"error":"<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":\"{}\"}}", crate::json::escape(message)),
        )
    }

    /// A plain-text response (the Prometheus exposition format).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
            retry_after: None,
            close: false,
        }
    }
}

/// Canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        203 => "Non-Authoritative Information",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `response` (HTTP/1.1 framing, explicit `Content-Length`).
///
/// # Errors
///
/// Returns the underlying transport error, which the caller treats as a
/// dead connection.
pub fn write_response(w: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    if response.close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&response.body)?;
    w.flush()
}

/// Writes the head of a streamed response: status line, `content-type`,
/// and `transfer-encoding: chunked` instead of a `Content-Length`. The
/// caller then emits body pieces with [`write_chunk`] and terminates with
/// [`write_chunked_end`]. HTTP/1.1 only — 1.0 peers cannot parse chunked
/// framing, so callers fall back to a buffered [`write_response`].
///
/// # Errors
///
/// Returns the underlying transport error (a dead connection).
pub fn write_chunked_head(
    w: &mut impl Write,
    status: u16,
    content_type: &'static str,
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n",
        status,
        reason(status),
    );
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Writes one chunk: hex size, CRLF, data, CRLF — flushed so the peer sees
/// progress immediately. Empty slices are skipped (a zero-length chunk
/// would terminate the body; that is [`write_chunked_end`]'s job).
///
/// # Errors
///
/// Returns the underlying transport error (a dead connection).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    w.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked body (`0\r\n\r\n`, no trailers).
///
/// # Errors
///
/// Returns the underlying transport error (a dead connection).
pub fn write_chunked_end(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Read};

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse(b"POST /v1/degrade HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/v1/degrade");
        assert!(r.http11);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive());
    }

    #[test]
    fn parses_bare_lf_and_query_strings() {
        let r = parse(b"GET /metrics?verbose=1 HTTP/1.0\n\n").unwrap();
        assert_eq!(r.path(), "/metrics");
        assert!(!r.http11);
        assert!(!r.keep_alive(), "1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_default() {
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
        let r = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive());
    }

    #[test]
    fn clean_eof_is_closed() {
        assert_eq!(parse(b"").unwrap_err(), ParseError::Closed);
        assert_eq!(parse(b"").unwrap_err().status(), None);
    }

    #[test]
    fn malformed_requests_map_to_400() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"G<ET / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            b"GET / HTTP/1.1\r\n:empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n12345",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET / HTTP/1.1\r\ntrunc",
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.status(), Some(400), "{bad:?} → {e:?}");
        }
    }

    #[test]
    fn oversized_requests_map_to_413() {
        let limits = Limits {
            max_request_line: 64,
            max_header_line: 64,
            max_headers: 2,
            max_body: 8,
        };
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        let e = read_request(&mut Cursor::new(long_target.into_bytes()), &limits).unwrap_err();
        assert_eq!(e.status(), Some(413));

        let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "y".repeat(100));
        let e = read_request(&mut Cursor::new(long_header.into_bytes()), &limits).unwrap_err();
        assert_eq!(e.status(), Some(413));

        let many = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        let e = read_request(&mut Cursor::new(many.to_vec()), &limits).unwrap_err();
        assert_eq!(e.status(), Some(413));

        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let e = read_request(&mut Cursor::new(big_body.to_vec()), &limits).unwrap_err();
        assert_eq!(e.status(), Some(413));
    }

    /// A reader that yields its prefix then times out, like a socket with
    /// `read_timeout` set and a stalled peer.
    struct Stall {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Stall {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn stalled(prefix: &[u8]) -> Result<Request, ParseError> {
        let mut reader = io::BufReader::new(Stall {
            data: prefix.to_vec(),
            pos: 0,
        });
        read_request(&mut reader, &Limits::default())
    }

    #[test]
    fn timeouts_mid_message_map_to_408() {
        for prefix in [
            &b"POST / HT"[..],
            b"POST / HTTP/1.1\r\nContent-",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n123",
        ] {
            let e = stalled(prefix).unwrap_err();
            assert_eq!(e.status(), Some(408), "{prefix:?} → {e:?}");
        }
    }

    #[test]
    fn timeout_between_messages_is_a_clean_close() {
        assert_eq!(stalled(b"").unwrap_err(), ParseError::Closed);
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let two = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/degrade HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut cursor = Cursor::new(two.to_vec());
        let a = read_request(&mut cursor, &Limits::default()).unwrap();
        assert_eq!(a.path(), "/healthz");
        let b = read_request(&mut cursor, &Limits::default()).unwrap();
        assert_eq!(b.path(), "/v1/degrade");
        assert_eq!(b.body, b"{}");
        assert_eq!(
            read_request(&mut cursor, &Limits::default()).unwrap_err(),
            ParseError::Closed
        );
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        let mut r = Response::json(200, br#"{"ok":true}"#.to_vec());
        r.close = true;
        r.retry_after = Some(2);
        write_response(&mut out, &r).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_response_escapes_the_message() {
        let r = Response::error(400, "bad \"x\"");
        assert_eq!(r.body, br#"{"error":"bad \"x\""}"#);
        assert_eq!(reason(203), "Non-Authoritative Information");
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(503), "Service Unavailable");
    }

    #[test]
    fn chunked_writer_frames_hex_sizes_and_terminates() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/json", false).unwrap();
        write_chunk(&mut out, b"hello").unwrap();
        // 26 bytes → hex "1a".
        write_chunk(&mut out, &[b'x'; 26]).unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunked_end(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(!text.contains("content-length"));
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        assert_eq!(
            &text[body_at..],
            format!("5\r\nhello\r\n1a\r\n{}\r\n0\r\n\r\n", "x".repeat(26))
        );
    }

    #[test]
    fn chunked_head_can_demand_close() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/json", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}

//! A minimal, std-only JSON reader/writer for the service's wire format.
//!
//! The service's schemas are small and fully known, so this module
//! implements exactly the JSON subset they need: UTF-8 text, objects,
//! arrays, strings with the standard escapes, finite numbers, booleans and
//! `null`. Parsing is recursive-descent with a hard depth bound, so hostile
//! bodies cannot blow the stack.
//!
//! Float formatting uses Rust's shortest-round-trip `Display`, the same
//! convention as the checkpoint format in `relia-jobs` — a value computed
//! by the library and one decoded from a response body are bit-equal,
//! which is what lets `loadgen` compare responses byte-for-byte against
//! direct library calls.

use std::fmt::Write as _;

/// Deepest permitted nesting of arrays/objects in a request body.
const MAX_DEPTH: u32 = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: last wins on lookup of
    /// the first match — the service rejects none, matching its schemas'
    /// tolerance).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `name` of an object (first match).
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a body failed to parse (all map to HTTP 400 at the service layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`JsonError`] for malformed input, non-UTF-8 text, non-finite
/// numbers, or nesting deeper than the internal bound.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
        at: e.valid_up_to(),
        what: "body is not valid utf-8",
    })?;
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.i, what }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                None
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input validated as UTF-8).
                    let rest = &self.s[self.i..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).map_err(|_| JsonError {
            at: start,
            what: "bad number",
        })?;
        // Rust's f64 parser accepts a superset of JSON numbers ("inf",
        // "1."), but everything it accepts here is digits/./e/±, so the
        // practical difference is leniency JSON clients won't exercise.
        let v: f64 = text.parse().map_err(|_| JsonError {
            at: start,
            what: "bad number",
        })?;
        if !v.is_finite() {
            return Err(JsonError {
                at: start,
                what: "number out of range",
            });
        }
        Ok(Json::Num(v))
    }
}

/// Formats a finite `f64` in shortest-round-trip form (`1` for `1.0`),
/// matching the checkpoint serialization convention. Non-finite values are
/// a bug upstream; they render as `null` rather than emitting invalid
/// JSON.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // relia-lint: allow(unwrap-in-lib)
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_degrade_schema() {
        let v =
            parse(br#"{"ras":[1,9],"t_standby_k":330.5,"years":3.2,"p_active":0.5,"p_standby":1}"#)
                .unwrap();
        assert_eq!(v.get("t_standby_k").unwrap().as_f64(), Some(330.5));
        let ras = v.get("ras").unwrap().as_arr().unwrap();
        assert_eq!(ras[0].as_f64(), Some(1.0));
        assert_eq!(ras[1].as_f64(), Some(9.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_strings_escapes_and_nesting() {
        let v = parse(br#"{"a":"x\n\"y\"\u00e9","b":[true,false,null],"c":{"d":-1.5e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\n\"y\"é"));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-1500.0)
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(br#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse(br#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(br#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"{\"a\":}",
            b"nul",
            b"\"unterminated",
            b"1 2",
            b"{\"a\" 1}",
            b"[1e999]",
            b"\xff\xfe",
            b"",
            b"{\"a\":\"\\x\"}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = b"[".repeat(64);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0, 1.0, -1.5, 0.031_415_926_535, 1e-300, f64::MAX] {
            let text = fmt_f64(v);
            let back = parse(text.as_bytes()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}

//! Adaptive overload control: a per-endpoint circuit breaker around model
//! evaluation, a brownout gate, and the server's health state machine.
//!
//! ## Circuit breaker
//!
//! Each evaluation-bearing endpoint (`/v1/degrade`, `/v1/sweep`,
//! `/v1/fleet`) owns a [`CircuitBreaker`]:
//!
//! ```text
//!            threshold consecutive 5xx/504
//!   Closed ───────────────────────────────▶ Open
//!     ▲                                      │ cooldown elapses
//!     │ probe succeeds          probe fails  ▼
//!     └────────────────── HalfOpen ◀─────────┘
//!                          (one probe at a time)
//! ```
//!
//! The hot path is lock-free: while the breaker is closed, [`admit`]
//! reads one atomic and returns. Only state *transitions* take the mutex,
//! so a healthy server pays nanoseconds per request for the protection.
//!
//! ## Brownout
//!
//! [`OverloadControl::gate`] combines the breaker with a queue-depth
//! high-water mark: when the breaker is open or too many connections are
//! in flight, evaluation is gated to **cache-hit-only** — a memoized
//! answer is still served, a cold evaluation becomes a fast
//! `503 + Retry-After` (with deterministic bounded jitter so a
//! synchronized client fleet doesn't retry in lockstep).
//!
//! ## Health
//!
//! [`HealthMachine`] folds the overload signals into the
//! `Healthy → Degraded → Draining` state behind `/healthz`, counting and
//! logging every transition. Draining is absorbing; Healthy ↔ Degraded
//! follow the brownout signal.
//!
//! [`admit`]: CircuitBreaker::admit

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Overload-control knobs, all CLI-settable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Consecutive evaluation failures (5xx/504) that open a breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker waits before admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// In-flight connections (queued + handling) beyond which brownout
    /// engages even with the breakers closed.
    pub brownout_high_water: u64,
    /// Smallest `Retry-After` a brownout shed advertises, seconds.
    pub retry_after_base: u32,
    /// Jitter span added to the base: advertised values are uniform in
    /// `base..=base + jitter`, from a deterministic sequence.
    pub retry_after_jitter: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(1),
            brownout_high_water: 48,
            retry_after_base: 1,
            retry_after_jitter: 2,
        }
    }
}

/// The three breaker states (also the `/metrics` gauge encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation (gauge 0).
    Closed,
    /// Cooldown elapsed; one probe may test the water (gauge 1).
    HalfOpen,
    /// Shedding; evaluation is not attempted (gauge 2).
    Open,
}

impl BreakerState {
    /// The `/metrics` gauge value.
    pub fn gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }

    /// The `/healthz` body token.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Open => "open",
        }
    }
}

const TAG_CLOSED: u8 = 0;
const TAG_HALF_OPEN: u8 = 1;
const TAG_OPEN: u8 = 2;

/// What [`CircuitBreaker::admit`] decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: evaluate normally.
    Normal,
    /// Breaker half-open and this request won the probe slot: evaluate,
    /// and the reported outcome decides Closed vs Open.
    Probe,
    /// Breaker open (or the probe slot is taken): do not evaluate.
    Shed,
}

/// Fields only touched on state transitions (never on the closed-state
/// hot path).
#[derive(Debug)]
struct BreakerSlow {
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A consecutive-failure circuit breaker with half-open probes. All
/// methods take the caller's `Instant` so tests drive time explicitly.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    tag: AtomicU8,
    failures: AtomicU32,
    opens: AtomicU64,
    slow: Mutex<BreakerSlow>,
}

impl CircuitBreaker {
    /// A closed breaker opening after `threshold` consecutive failures
    /// (min 1) and probing after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            tag: AtomicU8::new(TAG_CLOSED),
            failures: AtomicU32::new(0),
            opens: AtomicU64::new(0),
            slow: Mutex::new(BreakerSlow {
                opened_at: None,
                probe_in_flight: false,
            }),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        match self.tag.load(Ordering::Acquire) {
            TAG_OPEN => BreakerState::Open,
            TAG_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Closed → Open transitions so far.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Gate one request at time `now`. Lock-free while closed.
    pub fn admit(&self, now: Instant) -> Admission {
        if self.tag.load(Ordering::Acquire) == TAG_CLOSED {
            return Admission::Normal;
        }
        // relia-lint: allow(unwrap-in-lib)
        let mut slow = self.slow.lock().expect("breaker state poisoned");
        match self.tag.load(Ordering::Acquire) {
            TAG_CLOSED => Admission::Normal, // raced a probe close
            TAG_OPEN => {
                let cooled = slow
                    .opened_at
                    .is_none_or(|at| now.duration_since(at) >= self.cooldown);
                if cooled && !slow.probe_in_flight {
                    slow.probe_in_flight = true;
                    self.tag.store(TAG_HALF_OPEN, Ordering::Release);
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
            _ => {
                // Half-open: one probe at a time.
                if slow.probe_in_flight {
                    Admission::Shed
                } else {
                    slow.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Reports a successful evaluation: resets the failure run; a probe
    /// success closes the breaker.
    pub fn record_success(&self) {
        if self.tag.load(Ordering::Acquire) == TAG_CLOSED {
            self.failures.store(0, Ordering::Relaxed);
            return;
        }
        // relia-lint: allow(unwrap-in-lib)
        let mut slow = self.slow.lock().expect("breaker state poisoned");
        if self.tag.load(Ordering::Acquire) != TAG_CLOSED {
            slow.probe_in_flight = false;
            slow.opened_at = None;
            self.failures.store(0, Ordering::Relaxed);
            self.tag.store(TAG_CLOSED, Ordering::Release);
        }
    }

    /// Reports a failed evaluation (5xx/504) at time `now`: extends the
    /// failure run (opening the breaker at the threshold); a probe
    /// failure reopens immediately.
    pub fn record_failure(&self, now: Instant) {
        match self.tag.load(Ordering::Acquire) {
            TAG_CLOSED => {
                let run = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
                if run >= self.threshold {
                    // relia-lint: allow(unwrap-in-lib)
                    let mut slow = self.slow.lock().expect("breaker state poisoned");
                    if self.tag.load(Ordering::Acquire) == TAG_CLOSED {
                        slow.opened_at = Some(now);
                        slow.probe_in_flight = false;
                        self.opens.fetch_add(1, Ordering::Relaxed);
                        self.tag.store(TAG_OPEN, Ordering::Release);
                    }
                }
            }
            TAG_HALF_OPEN => {
                // relia-lint: allow(unwrap-in-lib)
                let mut slow = self.slow.lock().expect("breaker state poisoned");
                if self.tag.load(Ordering::Acquire) == TAG_HALF_OPEN {
                    slow.opened_at = Some(now);
                    slow.probe_in_flight = false;
                    self.opens.fetch_add(1, Ordering::Relaxed);
                    self.tag.store(TAG_OPEN, Ordering::Release);
                }
            }
            _ => {} // already open; the clock keeps running from opened_at
        }
    }
}

/// The evaluation-bearing endpoints, each with its own breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/degrade`.
    Degrade,
    /// `POST /v1/sweep`.
    Sweep,
    /// `POST /v1/fleet`.
    Fleet,
}

/// What the overload gate decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalGate {
    /// Evaluate normally.
    Normal,
    /// Half-open probe: evaluate, outcome decides the breaker.
    Probe,
    /// Brownout: serve only from the cache; a miss is a fast 503.
    CacheOnly,
}

/// Decrements the in-flight gauge on drop, so a panicking handler still
/// releases its slot.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    gauge: &'a AtomicU64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The server-wide overload controller: three per-endpoint breakers, the
/// in-flight gauge the brownout high-water mark watches, and the shed
/// counters behind `/metrics`.
#[derive(Debug)]
pub struct OverloadControl {
    config: OverloadConfig,
    degrade: CircuitBreaker,
    sweep: CircuitBreaker,
    fleet: CircuitBreaker,
    inflight: AtomicU64,
    brownout_sheds: AtomicU64,
    jitter_seq: AtomicU64,
}

impl Default for OverloadControl {
    fn default() -> Self {
        OverloadControl::new(OverloadConfig::default())
    }
}

impl OverloadControl {
    /// A controller with every breaker closed and nothing in flight.
    pub fn new(config: OverloadConfig) -> Self {
        let breaker = || CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        OverloadControl {
            config,
            degrade: breaker(),
            sweep: breaker(),
            fleet: breaker(),
            inflight: AtomicU64::new(0),
            brownout_sheds: AtomicU64::new(0),
            jitter_seq: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// The breaker guarding `endpoint`.
    pub fn breaker(&self, endpoint: Endpoint) -> &CircuitBreaker {
        match endpoint {
            Endpoint::Degrade => &self.degrade,
            Endpoint::Sweep => &self.sweep,
            Endpoint::Fleet => &self.fleet,
        }
    }

    /// Connections currently queued or being handled.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Accounts a connection entering the queue (accept loop side).
    pub fn conn_enqueued(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Reverses [`conn_enqueued`](Self::conn_enqueued) for a connection
    /// that was shed before a handler adopted it.
    pub fn conn_dequeued(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adopts an enqueued connection into a drop guard: the handler holds
    /// it for the connection's lifetime and the gauge self-corrects even
    /// if the handler panics.
    pub fn adopt_inflight(&self) -> InflightGuard<'_> {
        InflightGuard {
            gauge: &self.inflight,
        }
    }

    /// True when the queue is past the brownout high-water mark.
    pub fn queue_congested(&self) -> bool {
        self.inflight() > self.config.brownout_high_water
    }

    /// True when the server should advertise degraded service: any
    /// breaker not closed, or the queue past its high-water mark.
    pub fn degraded(&self) -> bool {
        self.queue_congested()
            || [Endpoint::Degrade, Endpoint::Sweep, Endpoint::Fleet]
                .iter()
                .any(|&e| self.breaker(e).state() != BreakerState::Closed)
    }

    /// Gate one request for `endpoint` at time `now`.
    pub fn gate(&self, endpoint: Endpoint, now: Instant) -> EvalGate {
        match self.breaker(endpoint).admit(now) {
            Admission::Probe => EvalGate::Probe,
            Admission::Shed => EvalGate::CacheOnly,
            Admission::Normal => {
                if self.queue_congested() {
                    EvalGate::CacheOnly
                } else {
                    EvalGate::Normal
                }
            }
        }
    }

    /// Reports the final status of a gated request to its breaker: 5xx
    /// and 504 burn the error budget, everything else (including 4xx —
    /// the service answered, the request was wrong) counts as healthy.
    /// Always settles a probe, so the slot cannot leak.
    pub fn settle(&self, endpoint: Endpoint, status: u16, now: Instant) {
        if status >= 500 {
            self.breaker(endpoint).record_failure(now);
        } else {
            self.breaker(endpoint).record_success();
        }
    }

    /// Counts one brownout shed (cache miss answered with a fast 503).
    pub fn count_brownout_shed(&self) {
        self.brownout_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Brownout sheds so far.
    pub fn brownout_sheds(&self) -> u64 {
        self.brownout_sheds.load(Ordering::Relaxed)
    }

    /// The next `Retry-After` value: `base..=base + jitter`, drawn from a
    /// deterministic SplitMix-style hash of a sequence counter — bounded
    /// jitter without ambient entropy, so chaos runs stay reproducible.
    pub fn retry_after(&self) -> u32 {
        let span = u64::from(self.config.retry_after_jitter) + 1;
        let seq = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
        let mut z = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        self.config.retry_after_base + (z % span) as u32
    }

    /// Total Closed → Open transitions across every endpoint.
    pub fn breaker_opens(&self) -> u64 {
        self.degrade.opens() + self.sweep.opens() + self.fleet.opens()
    }
}

/// The `/healthz` states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Full service.
    Healthy,
    /// Overload control is active (breaker open/half-open or brownout).
    Degraded,
    /// Graceful drain in progress; this state is absorbing.
    Draining,
}

impl HealthState {
    /// The `/healthz` body token.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }
}

/// One recorded health transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Monotonic transition number (1-based).
    pub seq: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
}

/// Most recent transitions the in-memory log retains.
const HEALTH_LOG_CAP: usize = 64;

type HealthLogger = Box<dyn Fn(&HealthTransition) + Send + Sync>;

struct HealthInner {
    current: HealthState,
    log: Vec<HealthTransition>,
    seq: u64,
    logger: Option<HealthLogger>,
}

/// The observed health state machine: each [`observe`](HealthMachine::observe)
/// folds the drain flag and the overload signal into the current state,
/// recording (and optionally logging) every transition.
pub struct HealthMachine {
    inner: Mutex<HealthInner>,
    transitions: AtomicU64,
}

impl std::fmt::Debug for HealthMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMachine")
            .field("transitions", &self.transitions.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for HealthMachine {
    fn default() -> Self {
        HealthMachine {
            inner: Mutex::new(HealthInner {
                current: HealthState::Healthy,
                log: Vec::new(),
                seq: 0,
                logger: None,
            }),
            transitions: AtomicU64::new(0),
        }
    }
}

impl HealthMachine {
    /// A machine starting Healthy.
    pub fn new() -> Self {
        HealthMachine::default()
    }

    /// Installs a transition logger (the CLI prints transitions to
    /// stderr; the library itself never prints).
    pub fn set_logger(&self, logger: HealthLogger) {
        // relia-lint: allow(unwrap-in-lib)
        let mut inner = self.inner.lock().expect("health state poisoned");
        inner.logger = Some(logger);
    }

    /// Folds the current signals into the state machine and returns the
    /// resulting state. `draining` is absorbing; otherwise `degraded`
    /// selects between Degraded and Healthy.
    pub fn observe(&self, draining: bool, degraded: bool) -> HealthState {
        let next = if draining {
            HealthState::Draining
        } else if degraded {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        // relia-lint: allow(unwrap-in-lib)
        let mut inner = self.inner.lock().expect("health state poisoned");
        if inner.current == HealthState::Draining {
            return HealthState::Draining; // absorbing
        }
        if next != inner.current {
            inner.seq += 1;
            let transition = HealthTransition {
                seq: inner.seq,
                from: inner.current,
                to: next,
            };
            inner.current = next;
            if inner.log.len() == HEALTH_LOG_CAP {
                inner.log.remove(0);
            }
            inner.log.push(transition);
            self.transitions.fetch_add(1, Ordering::Relaxed);
            if let Some(logger) = &inner.logger {
                logger(&transition);
            }
        }
        inner.current
    }

    /// The state as of the last observation.
    pub fn current(&self) -> HealthState {
        // relia-lint: allow(unwrap-in-lib)
        self.inner.lock().expect("health state poisoned").current
    }

    /// Total transitions recorded.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// The retained transition log (the most recent 64 entries), oldest
    /// first.
    pub fn log(&self) -> Vec<HealthTransition> {
        // relia-lint: allow(unwrap-in-lib)
        let inner = self.inner.lock().expect("health state poisoned");
        inner.log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(1));
        let now = t0();
        assert_eq!(b.admit(now), Admission::Normal);
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed, "under threshold");
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.admit(now), Admission::Shed, "open sheds immediately");
    }

    #[test]
    fn a_success_resets_the_failure_run() {
        let b = CircuitBreaker::new(3, Duration::from_secs(1));
        let now = t0();
        b.record_failure(now);
        b.record_failure(now);
        b.record_success();
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed, "run was reset");
    }

    #[test]
    fn half_open_admits_exactly_one_probe_and_success_closes() {
        let b = CircuitBreaker::new(1, Duration::from_millis(100));
        let now = t0();
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        // Before the cooldown: shed.
        assert_eq!(b.admit(now + Duration::from_millis(50)), Admission::Shed);
        // After the cooldown: one probe, others shed behind it.
        let later = now + Duration::from_millis(150);
        assert_eq!(b.admit(later), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(later), Admission::Shed, "probe slot is taken");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(later), Admission::Normal);
    }

    #[test]
    fn a_failed_probe_reopens_and_restarts_the_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_millis(100));
        let now = t0();
        b.record_failure(now);
        let probe_at = now + Duration::from_millis(150);
        assert_eq!(b.admit(probe_at), Admission::Probe);
        b.record_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // The cooldown restarts from the probe failure.
        assert_eq!(
            b.admit(probe_at + Duration::from_millis(50)),
            Admission::Shed
        );
        assert_eq!(
            b.admit(probe_at + Duration::from_millis(150)),
            Admission::Probe
        );
    }

    #[test]
    fn gate_goes_cache_only_past_the_high_water_mark() {
        let control = OverloadControl::new(OverloadConfig {
            brownout_high_water: 2,
            ..OverloadConfig::default()
        });
        let now = t0();
        assert_eq!(control.gate(Endpoint::Degrade, now), EvalGate::Normal);
        control.conn_enqueued();
        control.conn_enqueued();
        control.conn_enqueued();
        assert!(control.queue_congested());
        assert!(control.degraded());
        assert_eq!(control.gate(Endpoint::Degrade, now), EvalGate::CacheOnly);
        {
            let _a = control.adopt_inflight();
            let _b = control.adopt_inflight();
        }
        control.conn_dequeued();
        assert_eq!(control.inflight(), 0);
        assert_eq!(control.gate(Endpoint::Degrade, now), EvalGate::Normal);
        assert!(!control.degraded());
    }

    #[test]
    fn settle_burns_budget_only_on_5xx() {
        let control = OverloadControl::new(OverloadConfig {
            breaker_threshold: 2,
            ..OverloadConfig::default()
        });
        let now = t0();
        control.settle(Endpoint::Sweep, 500, now);
        control.settle(Endpoint::Sweep, 400, now);
        control.settle(Endpoint::Sweep, 500, now);
        assert_eq!(
            control.breaker(Endpoint::Sweep).state(),
            BreakerState::Closed,
            "the 400 reset the run"
        );
        control.settle(Endpoint::Sweep, 504, now);
        assert_eq!(control.breaker(Endpoint::Sweep).state(), BreakerState::Open);
        assert_eq!(control.breaker_opens(), 1);
        // The other endpoints are independent.
        assert_eq!(
            control.breaker(Endpoint::Degrade).state(),
            BreakerState::Closed
        );
        assert_eq!(control.gate(Endpoint::Degrade, now), EvalGate::Normal);
        assert_eq!(control.gate(Endpoint::Sweep, now), EvalGate::CacheOnly);
    }

    #[test]
    fn retry_after_is_bounded_and_deterministic() {
        let a = OverloadControl::new(OverloadConfig {
            retry_after_base: 1,
            retry_after_jitter: 2,
            ..OverloadConfig::default()
        });
        let b = OverloadControl::new(OverloadConfig {
            retry_after_base: 1,
            retry_after_jitter: 2,
            ..OverloadConfig::default()
        });
        let seq_a: Vec<u32> = (0..64).map(|_| a.retry_after()).collect();
        let seq_b: Vec<u32> = (0..64).map(|_| b.retry_after()).collect();
        assert_eq!(seq_a, seq_b, "jitter is a deterministic sequence");
        assert!(seq_a.iter().all(|&v| (1..=3).contains(&v)));
        assert!(seq_a.windows(2).any(|w| w[0] != w[1]), "jitter varies");
        // Zero jitter degenerates to the base.
        let c = OverloadControl::new(OverloadConfig {
            retry_after_base: 7,
            retry_after_jitter: 0,
            ..OverloadConfig::default()
        });
        assert!((0..16).all(|_| c.retry_after() == 7));
    }

    #[test]
    fn health_machine_walks_healthy_degraded_draining() {
        let h = HealthMachine::new();
        assert_eq!(h.current(), HealthState::Healthy);
        assert_eq!(h.observe(false, false), HealthState::Healthy);
        assert_eq!(h.transitions(), 0, "no-op observations record nothing");
        assert_eq!(h.observe(false, true), HealthState::Degraded);
        assert_eq!(h.observe(false, false), HealthState::Healthy);
        assert_eq!(h.observe(true, false), HealthState::Draining);
        assert_eq!(h.transitions(), 3);
        // Draining absorbs every later signal.
        assert_eq!(h.observe(false, false), HealthState::Draining);
        assert_eq!(h.observe(false, true), HealthState::Draining);
        assert_eq!(h.transitions(), 3);
        let log = h.log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].from, HealthState::Healthy);
        assert_eq!(log[0].to, HealthState::Degraded);
        assert_eq!(log[2].to, HealthState::Draining);
        assert_eq!(log[2].seq, 3);
    }

    #[test]
    fn health_logger_sees_every_transition() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let h = HealthMachine::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_by_logger = Arc::clone(&seen);
        h.set_logger(Box::new(move |t| {
            assert!(t.seq >= 1);
            seen_by_logger.fetch_add(1, Ordering::Relaxed);
        }));
        h.observe(false, true);
        h.observe(false, true);
        h.observe(false, false);
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }
}

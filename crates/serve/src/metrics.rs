//! Service-side counters and the Prometheus text exposition.
//!
//! The server's own counters (requests, responses by class, shed load,
//! coalescing) become a [`MetricsSnapshot`] and are merged with the shared
//! memo cache's snapshot from relia-jobs — one typed pipeline from atomic
//! counter to `/metrics` body, no renderer-specific formatting of internal
//! structs.

use std::sync::atomic::{AtomicU64, Ordering};

use relia_jobs::MetricsSnapshot;
use relia_obs::{hist, HistSnapshot};

use crate::json::fmt_f64;

/// Monotonic counters of one server instance. All methods are `Relaxed`
/// atomics: these are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused with 503 because the task queue was full.
    pub shed: AtomicU64,
    /// Requests parsed and routed.
    pub requests: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_client_error: AtomicU64,
    /// Responses with a 5xx status (the shed 503s included).
    pub responses_server_error: AtomicU64,
    /// Requests that blew their evaluation deadline (504).
    pub deadline_exceeded: AtomicU64,
    /// Requests that never parsed but were answered (400/408/413).
    pub parse_errors: AtomicU64,
    /// Reads that timed out mid-message (the 408s, slow dribbles
    /// included).
    pub read_timeouts: AtomicU64,
    /// Response writes that timed out against a stalled peer.
    pub write_timeouts: AtomicU64,
    /// Connections whose peer quit mid-message (truncated request line,
    /// headers, or body).
    pub conn_truncated: AtomicU64,
    /// Connections lost to transport errors (resets, broken pipes).
    pub conn_io_errors: AtomicU64,
    /// Connections dropped because a socket option (read/write timeout)
    /// could not be set — serving such a peer would be unbounded.
    pub sockopt_failures: AtomicU64,
}

impl ServeMetrics {
    /// Bumps `counter` by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished response by status class.
    pub fn record_status(&self, status: u16) {
        match status {
            200..=299 => Self::bump(&self.responses_ok),
            400..=499 => Self::bump(&self.responses_client_error),
            _ => Self::bump(&self.responses_server_error),
        }
        if status == 504 {
            Self::bump(&self.deadline_exceeded);
        }
    }

    /// Typed snapshot of every counter, in declaration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            counters: vec![
                ("serve_connections", c(&self.connections)),
                ("serve_shed", c(&self.shed)),
                ("serve_requests", c(&self.requests)),
                ("serve_responses_ok", c(&self.responses_ok)),
                (
                    "serve_responses_client_error",
                    c(&self.responses_client_error),
                ),
                (
                    "serve_responses_server_error",
                    c(&self.responses_server_error),
                ),
                ("serve_deadline_exceeded", c(&self.deadline_exceeded)),
                ("serve_parse_errors", c(&self.parse_errors)),
                ("serve_read_timeouts", c(&self.read_timeouts)),
                ("serve_write_timeouts", c(&self.write_timeouts)),
                ("serve_conn_truncated", c(&self.conn_truncated)),
                ("serve_conn_io_errors", c(&self.conn_io_errors)),
                ("serve_sockopt_failures", c(&self.sockopt_failures)),
            ],
            gauges: vec![],
            histograms: vec![],
        }
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` line then `relia_<name> <value>` per series.
/// Histograms render cumulative `_bucket{le="…"}` lines (upper edges in
/// seconds — samples are stored as nanoseconds), `_sum`, and `_count`.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        out.push_str(&format!(
            "# TYPE relia_{name} counter\nrelia_{name} {value}\n"
        ));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!(
            "# TYPE relia_{name} gauge\nrelia_{name} {}\n",
            fmt_f64(*value)
        ));
    }
    for (name, h) in &snapshot.histograms {
        render_histogram(&mut out, name, h);
    }
    out
}

/// Appends one Prometheus histogram: cumulative buckets at each *occupied*
/// log2 edge (valid exposition — scrapers only require cumulative counts
/// to be non-decreasing with `le`), then the mandatory `+Inf`/sum/count.
fn render_histogram(out: &mut String, name: &str, h: &HistSnapshot) {
    out.push_str(&format!("# TYPE relia_{name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &b) in h.buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        cumulative += b;
        let (_, hi_ns) = hist::bucket_bounds(i);
        out.push_str(&format!(
            "relia_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            fmt_f64(hi_ns as f64 / 1e9)
        ));
    }
    out.push_str(&format!("relia_{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!(
        "relia_{name}_sum {}\n",
        fmt_f64(h.sum_ns as f64 / 1e9)
    ));
    out.push_str(&format!("relia_{name}_count {}\n", h.count));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_every_counter() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.connections);
        m.record_status(200);
        m.record_status(404);
        m.record_status(503);
        m.record_status(504);
        let s = m.snapshot();
        assert_eq!(s.counter("serve_connections"), Some(1));
        assert_eq!(s.counter("serve_responses_ok"), Some(1));
        assert_eq!(s.counter("serve_responses_client_error"), Some(1));
        assert_eq!(s.counter("serve_responses_server_error"), Some(2));
        assert_eq!(s.counter("serve_deadline_exceeded"), Some(1));
        ServeMetrics::bump(&m.read_timeouts);
        ServeMetrics::bump(&m.sockopt_failures);
        assert_eq!(
            s.counter("serve_read_timeouts"),
            Some(0),
            "pre-bump snapshot"
        );
        let s = m.snapshot();
        assert_eq!(s.counter("serve_read_timeouts"), Some(1));
        assert_eq!(s.counter("serve_sockopt_failures"), Some(1));
        assert_eq!(s.counter("serve_conn_truncated"), Some(0));
        assert_eq!(s.counters.len(), 13, "every declared counter is exposed");
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_values() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.requests);
        let merged = m
            .snapshot()
            .merged(relia_jobs::CacheStats::default().snapshot());
        let text = render_prometheus(&merged);
        assert!(text.contains("# TYPE relia_serve_requests counter\nrelia_serve_requests 1\n"));
        assert!(text.contains("# TYPE relia_cache_hits counter\nrelia_cache_hits 0\n"));
        assert!(text.contains("# TYPE relia_cache_hit_rate gauge\nrelia_cache_hit_rate 0\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn prometheus_histograms_pin_cumulative_bucket_counts() {
        let h = relia_obs::LatencyHist::new();
        for ns in [1u64, 3, 3, 1000] {
            h.record_ns(ns);
        }
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![("serve_request_seconds", h.snapshot())],
        };
        // 1 ns → bucket [1,2), 3+3 ns → [2,4), 1000 ns → [512,1024):
        // cumulative counts 1, 3, 4 at edges 2 ns, 4 ns, 1024 ns.
        let expected = "# TYPE relia_serve_request_seconds histogram\n\
             relia_serve_request_seconds_bucket{le=\"0.000000002\"} 1\n\
             relia_serve_request_seconds_bucket{le=\"0.000000004\"} 3\n\
             relia_serve_request_seconds_bucket{le=\"0.000001024\"} 4\n\
             relia_serve_request_seconds_bucket{le=\"+Inf\"} 4\n\
             relia_serve_request_seconds_sum 0.000001007\n\
             relia_serve_request_seconds_count 4\n";
        assert_eq!(render_prometheus(&snap), expected);
    }

    #[test]
    fn empty_histogram_still_renders_inf_sum_and_count() {
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![("serve_eval_seconds", HistSnapshot::default())],
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("relia_serve_eval_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("relia_serve_eval_seconds_sum 0\n"));
        assert!(text.contains("relia_serve_eval_seconds_count 0\n"));
    }
}

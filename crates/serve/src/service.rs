//! The service layer: request routing, wire schemas, and the degradation
//! handlers — everything between a parsed [`Request`] and a [`Response`],
//! with no sockets in sight (so tests drive it directly).
//!
//! ## Endpoints
//!
//! | Endpoint            | Meaning                                         |
//! |---------------------|-------------------------------------------------|
//! | `POST /v1/degrade`  | one stress point → ΔV_th and delay degradation  |
//! | `POST /v1/sweep`    | a small inline grid (bounded, canonical order)  |
//! | `POST /v1/fleet`    | a bounded Monte Carlo fleet aging study         |
//! | `GET /healthz`      | liveness and drain state                        |
//! | `GET /metrics`      | Prometheus text exposition                      |
//! | `GET /debug/trace`  | most recent request spans (JSON)                |
//! | `POST /admin/shutdown` | begin graceful drain                         |
//!
//! ## Parity with the batch engine
//!
//! `/v1/degrade` evaluates through the *same* canonical path as the sweep
//! engine's model workload: `ModeSchedule` at the engine's fixed period and
//! active temperature, [`StressKey::quantize`], then the shared memo cache.
//! A value served over HTTP is bit-equal to the one a batch sweep or a
//! direct library call produces; responses render floats with the
//! shortest-round-trip convention so the bytes match too.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use relia_core::{
    Deadline, Kelvin, ModeSchedule, NbtiModel, NbtiParams, PmosStress, Ras, Seconds, StressKey,
    Volts, VthDistribution,
};
use relia_fleet::{ChunkAccum, FleetError, FleetEvaluator, FleetSpec, FleetSummary, DEFAULT_CHUNK};
use relia_flow::{AgingAnalysis, AnalysisPrep, DeltaVthCache, FlowConfig, FlowError};
use relia_jobs::{
    builtin_resolver, MetricsSnapshot, PolicySpec, ShardedCache, SweepSpec, Workload,
    SWEEP_PERIOD_S, SWEEP_TEMP_ACTIVE_K,
};
use relia_netlist::Circuit;
use relia_surface::{Surface, SurfaceQuery};

use crate::breaker::{
    BreakerState, Endpoint, EvalGate, HealthMachine, HealthState, OverloadConfig, OverloadControl,
};
use crate::coalesce::SingleFlight;
use crate::http::{write_chunk, write_chunked_end, write_chunked_head, Request, Response};
use crate::json::{self, fmt_f64, Json};
use crate::metrics::{render_prometheus, ServeMetrics};
use crate::obs::ServeObs;

/// Largest grid `/v1/sweep` accepts inline; bigger grids belong to the
/// batch engine (`relia sweep`), and get a 413 telling the caller so.
pub const MAX_SWEEP_POINTS: usize = 256;

/// Largest Monte Carlo fleet `/v1/fleet` accepts inline; bigger studies
/// belong to the batch engine (`relia fleet`), and get a 413.
pub const MAX_FLEET_SAMPLES: usize = 100_000;

/// Most evaluation times one `/v1/fleet` request may carry.
pub const MAX_FLEET_TIMES: usize = 16;

/// How one model evaluation is produced. The production implementation is
/// [`CachedEval`] (shared memo cache); tests inject gated/counting
/// implementations to observe coalescing deterministically.
pub trait ModelEval: Send + Sync {
    /// ΔV_th in volts for the canonical point of `key`.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the service maps it to HTTP 500.
    fn delta_vth(&self, key: StressKey) -> Result<f64, String>;
}

/// The production evaluator: the process-wide sharded memo cache in front
/// of the NBTI model.
pub struct CachedEval {
    cache: Arc<ShardedCache>,
    model: NbtiModel,
}

impl ModelEval for CachedEval {
    fn delta_vth(&self, key: StressKey) -> Result<f64, String> {
        self.cache
            .delta_vth(key, &self.model)
            .map_err(|e| e.to_string())
    }
}

/// The precomputed response surface mounted under `/v1/degrade`, plus its
/// serving ledger. In-domain lookups with a known stress pair answer by
/// interpolation (a *hit*); everything the surface declines — an unknown
/// pair, an out-of-domain *clamp* — is a *miss* and falls back to exact
/// evaluation; *fallbacks* counts every request that took the exact path
/// while the surface was mounted (misses plus explicit `?mode=exact`), so
/// `clamps ≤ misses ≤ fallbacks` always holds.
pub struct SurfaceTier {
    surface: Surface,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
    clamps: AtomicU64,
}

impl SurfaceTier {
    /// Mounts a bound-checked surface with a zeroed ledger.
    pub fn new(surface: Surface) -> Self {
        SurfaceTier {
            surface,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            clamps: AtomicU64::new(0),
        }
    }

    /// The mounted surface.
    pub fn surface(&self) -> &Surface {
        &self.surface
    }

    /// Lookups answered by interpolation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups the surface declined (unknown pair or out-of-domain clamp).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Degrade requests that took the exact path while the surface was
    /// mounted: every miss, plus explicit `?mode=exact` requests.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// The out-of-domain subset of misses (clamped interpolations are
    /// never served; the documented error bound holds only in-domain).
    pub fn clamps(&self) -> u64 {
        self.clamps.load(Ordering::Relaxed)
    }
}

/// Everything the handlers share: evaluator, memo cache, single-flight
/// gate, prepared circuits, counters, and limits.
pub struct ServeState {
    /// The process-wide ΔV_th memo table (also handed to batch sweeps via
    /// [`relia_jobs::SweepOptions::shared_cache`]).
    pub cache: Arc<ShardedCache>,
    /// Service counters.
    pub metrics: ServeMetrics,
    /// Per-endpoint circuit breakers, the brownout gate, and the
    /// in-flight gauge.
    pub overload: OverloadControl,
    /// The `Healthy → Degraded → Draining` machine behind `/healthz`.
    pub health: HealthMachine,
    /// Span ring, phase latency histograms, and the slow-request log.
    pub obs: ServeObs,
    surface: Option<SurfaceTier>,
    eval: Arc<dyn ModelEval>,
    flight: SingleFlight<StressKey, Result<f64, String>>,
    degradation: relia_core::DelayDegradation,
    preps: Mutex<HashMap<String, Arc<(Circuit, AnalysisPrep)>>>,
    base_config: FlowConfig,
    request_timeout: Duration,
    draining: AtomicBool,
}

impl ServeState {
    /// Production state: built-in PTM 90 nm calibration, a fresh shared
    /// cache, `request_timeout` as every request's evaluation deadline.
    ///
    /// # Errors
    ///
    /// Only if the built-in calibration fails to validate (it cannot).
    pub fn new(request_timeout: Duration) -> Result<Self, String> {
        let cache = Arc::new(ShardedCache::default());
        let model = NbtiModel::ptm90().map_err(|e| e.to_string())?;
        let eval = Arc::new(CachedEval {
            cache: Arc::clone(&cache),
            model,
        });
        ServeState::with_eval(cache, eval, request_timeout)
    }

    /// State with an injected evaluator (tests observe or gate evaluations
    /// through this seam; everything else is the production wiring).
    ///
    /// # Errors
    ///
    /// Only if the built-in calibration fails to validate (it cannot).
    pub fn with_eval(
        cache: Arc<ShardedCache>,
        eval: Arc<dyn ModelEval>,
        request_timeout: Duration,
    ) -> Result<Self, String> {
        let params = NbtiParams::ptm90().map_err(|e| e.to_string())?;
        Ok(ServeState {
            cache,
            metrics: ServeMetrics::default(),
            overload: OverloadControl::default(),
            health: HealthMachine::new(),
            obs: ServeObs::new(),
            surface: None,
            eval,
            flight: SingleFlight::new(),
            degradation: relia_core::DelayDegradation::new(&params),
            preps: Mutex::new(HashMap::new()),
            base_config: FlowConfig::paper_defaults().map_err(|e| e.to_string())?,
            request_timeout,
            draining: AtomicBool::new(false),
        })
    }

    /// Replaces the overload-control configuration (builder style; meant
    /// for construction time, before traffic — the counters reset).
    pub fn with_overload(mut self, config: OverloadConfig) -> Self {
        self.overload = OverloadControl::new(config);
        self
    }

    /// Replaces the observability state (builder style; construction
    /// time) — the CLI sizes the span ring and slow-log threshold here.
    pub fn with_obs(mut self, obs: ServeObs) -> Self {
        self.obs = obs;
        self
    }

    /// Mounts a precomputed response surface (builder style; construction
    /// time): `/v1/degrade` then answers in-domain queries with a known
    /// stress pair by multilinear interpolation and falls back to exact
    /// evaluation for everything else (and for `?mode=exact`). The caller
    /// is expected to have [`Surface::verify_model`]-checked the artifact
    /// against the serving calibration.
    pub fn with_surface(mut self, surface: Surface) -> Self {
        self.surface = Some(SurfaceTier::new(surface));
        self
    }

    /// The mounted surface tier, if any.
    pub fn surface(&self) -> Option<&SurfaceTier> {
        self.surface.as_ref()
    }

    /// The per-request evaluation deadline.
    pub fn request_timeout(&self) -> Duration {
        self.request_timeout
    }

    /// True once a graceful drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Begins draining: subsequent requests are shed with 503.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// The merged metrics snapshot behind `GET /metrics`: service counters,
    /// single-flight counters, and the shared memo cache.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let breaker_gauge = |e| self.overload.breaker(e).state().gauge();
        // The surface ledger is published even when no surface is mounted
        // (all zeros, gauge 0), so dashboards see stable series.
        let tier = |f: fn(&SurfaceTier) -> u64| self.surface.as_ref().map_or(0, f);
        self.metrics
            .snapshot()
            .merged(MetricsSnapshot {
                counters: vec![
                    ("serve_coalesce_leads", self.flight.leads()),
                    ("serve_coalesce_joins", self.flight.joins()),
                    ("serve_breaker_opens", self.overload.breaker_opens()),
                    ("serve_brownout_sheds", self.overload.brownout_sheds()),
                    ("serve_health_transitions", self.health.transitions()),
                    ("surface_hits", tier(SurfaceTier::hits)),
                    ("surface_misses", tier(SurfaceTier::misses)),
                    ("surface_fallbacks", tier(SurfaceTier::fallbacks)),
                    ("surface_clamps", tier(SurfaceTier::clamps)),
                ],
                gauges: vec![
                    (
                        "serve_breaker_state_degrade",
                        breaker_gauge(Endpoint::Degrade),
                    ),
                    ("serve_breaker_state_sweep", breaker_gauge(Endpoint::Sweep)),
                    ("serve_breaker_state_fleet", breaker_gauge(Endpoint::Fleet)),
                    ("serve_inflight", self.overload.inflight() as f64),
                    (
                        "surface_active",
                        if self.surface.is_some() { 1.0 } else { 0.0 },
                    ),
                ],
                histograms: vec![],
            })
            .merged(self.obs.snapshot())
            .merged(self.cache.stats().snapshot())
    }

    fn prep_for(&self, name: &str) -> Result<Arc<(Circuit, AnalysisPrep)>, Response> {
        // relia-lint: allow(unwrap-in-lib)
        let mut preps = self.preps.lock().expect("prep table poisoned");
        if let Some(found) = preps.get(name) {
            return Ok(Arc::clone(found));
        }
        let circuit = builtin_resolver(name)
            .map_err(|e| Response::error(400, &format!("unknown circuit {name:?}: {e}")))?;
        let prep = AgingAnalysis::prep(&self.base_config, &circuit)
            .map_err(|e| Response::error(500, &format!("cannot prepare {name:?}: {e}")))?;
        let pair = Arc::new((circuit, prep));
        preps.insert(name.to_owned(), Arc::clone(&pair));
        Ok(pair)
    }
}

/// What the connection loop must do after writing the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Begin the graceful drain (stop accepting, finish in-flight work).
    Shutdown,
}

/// One degradation query: the paper's operating schedule (RAS split,
/// standby temperature, lifetime) plus the device's stress probabilities.
/// The mode-cycle period and active temperature are fixed at the sweep
/// engine's baseline so served values match batch results exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeQuery {
    /// `(active, standby)` RAS weights.
    pub ras: (f64, f64),
    /// Standby temperature.
    pub t_standby_k: Kelvin,
    /// Operating lifetime in seconds.
    pub lifetime_s: f64,
    /// Active-mode stress probability.
    pub p_active: f64,
    /// Standby-mode stress probability.
    pub p_standby: f64,
}

impl DegradeQuery {
    /// The canonical JSON body for this query (what `loadgen` sends).
    pub fn to_body(&self) -> String {
        format!(
            "{{\"ras\":[{},{}],\"t_standby_k\":{},\"lifetime_s\":{},\
             \"p_active\":{},\"p_standby\":{}}}",
            fmt_f64(self.ras.0),
            fmt_f64(self.ras.1),
            fmt_f64(self.t_standby_k.0),
            fmt_f64(self.lifetime_s),
            fmt_f64(self.p_active),
            fmt_f64(self.p_standby)
        )
    }

    /// The quantized stress key this query evaluates — the *same*
    /// construction as the sweep engine's model workload.
    ///
    /// # Errors
    ///
    /// A parameter-validation message (maps to HTTP 400).
    pub fn stress_key(&self) -> Result<StressKey, String> {
        let ras = Ras::new(self.ras.0, self.ras.1).map_err(|e| e.to_string())?;
        let schedule = ModeSchedule::new(
            ras,
            Seconds(SWEEP_PERIOD_S),
            Kelvin(SWEEP_TEMP_ACTIVE_K),
            self.t_standby_k,
        )
        .map_err(|e| e.to_string())?;
        let stress = PmosStress::new(self.p_active, self.p_standby).map_err(|e| e.to_string())?;
        Ok(StressKey::quantize(
            &schedule,
            &stress,
            Seconds(self.lifetime_s),
        ))
    }
}

fn require_f64(obj: &Json, name: &'static str) -> Result<f64, Response> {
    obj.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| Response::error(400, &format!("missing or non-numeric field {name:?}")))
}

fn parse_ras_pair(value: &Json) -> Result<(f64, f64), Response> {
    match value.as_arr() {
        Some([a, s]) => match (a.as_f64(), s.as_f64()) {
            (Some(a), Some(s)) => Ok((a, s)),
            _ => Err(Response::error(400, "ras entries must be numbers")),
        },
        _ => Err(Response::error(400, "ras must be a two-element array")),
    }
}

/// Parses a `/v1/degrade` body.
///
/// # Errors
///
/// The 400 response describing what is malformed.
pub fn parse_degrade(body: &[u8]) -> Result<DegradeQuery, Response> {
    let root = json::parse(body).map_err(|e| Response::error(400, &e.to_string()))?;
    let ras = parse_ras_pair(
        root.get("ras")
            .ok_or_else(|| Response::error(400, "missing field \"ras\""))?,
    )?;
    Ok(DegradeQuery {
        ras,
        t_standby_k: Kelvin(require_f64(&root, "t_standby_k")?),
        lifetime_s: require_f64(&root, "lifetime_s")?,
        p_active: require_f64(&root, "p_active")?,
        p_standby: require_f64(&root, "p_standby")?,
    })
}

/// Renders the `/v1/degrade` response body. Public so load generators can
/// compute the expected bytes from direct library calls.
pub fn degrade_body(delta_vth_v: f64, delay_degradation: f64) -> String {
    format!(
        "{{\"delta_vth_v\":{},\"delay_degradation\":{}}}",
        fmt_f64(delta_vth_v),
        fmt_f64(delay_degradation)
    )
}

/// The brownout answer for cold work: a fast 503 with jittered
/// `Retry-After`, counted, and `Connection` left open (the peer is
/// welcome back after the advertised delay).
fn brownout_shed(state: &ServeState, what: &str) -> Response {
    state.overload.count_brownout_shed();
    let mut response = Response::error(
        503,
        &format!("overloaded: {what} shed, retry after the advertised delay"),
    );
    response.retry_after = Some(state.overload.retry_after());
    response
}

fn render_degrade(state: &ServeState, delta_vth: f64) -> Response {
    match state.degradation.linear(delta_vth) {
        Ok(frac) => Response::json(200, degrade_body(delta_vth, frac)),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// How `/v1/degrade` should answer: through the surface tier when one is
/// mounted (the default), or forced down the exact evaluation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DegradeMode {
    Surface,
    Exact,
}

/// Reads the optional `mode` query parameter off the request target.
/// Unknown parameters are ignored (they always were — the router strips
/// the query string); an unknown `mode` *value* is a 400.
fn degrade_mode(target: &str) -> Result<DegradeMode, Response> {
    let Some((_, query)) = target.split_once('?') else {
        return Ok(DegradeMode::Surface);
    };
    let mut mode = DegradeMode::Surface;
    for param in query.split('&') {
        match param.split_once('=') {
            Some(("mode", "surface")) => mode = DegradeMode::Surface,
            Some(("mode", "exact")) => mode = DegradeMode::Exact,
            Some(("mode", other)) => {
                return Err(Response::error(
                    400,
                    &format!("unknown mode {other:?} (want surface|exact)"),
                ))
            }
            _ => {}
        }
    }
    Ok(mode)
}

/// Tries to answer a degrade query from the surface tier. `Some` is a hit
/// (interpolated, in-domain, unclamped — the documented error bound
/// applies); `None` means the surface declined and the caller must take
/// the exact path, with the ledger already updated.
fn surface_answer(
    state: &ServeState,
    tier: &SurfaceTier,
    query: &DegradeQuery,
    parent: u64,
) -> Option<Response> {
    let span = state.obs.tracer.child("surface", parent);
    let t_lookup = Instant::now();
    let hit = tier.surface.lookup(&SurfaceQuery {
        t_active_k: Kelvin(SWEEP_TEMP_ACTIVE_K),
        t_standby_k: query.t_standby_k,
        ras_fraction: query.ras.0 / (query.ras.0 + query.ras.1),
        lifetime_s: query.lifetime_s,
        p_active: query.p_active,
        p_standby: query.p_standby,
    });
    state.obs.surface.record(t_lookup.elapsed());
    drop(span);
    match hit {
        Some(lookup) if !lookup.clamped => {
            ServeMetrics::bump(&tier.hits);
            Some(render_degrade(state, lookup.delta_vth_v))
        }
        Some(_) => {
            // Clamped: a value exists but the error bound does not hold
            // out of domain — serve exact instead.
            ServeMetrics::bump(&tier.clamps);
            ServeMetrics::bump(&tier.misses);
            ServeMetrics::bump(&tier.fallbacks);
            None
        }
        None => {
            ServeMetrics::bump(&tier.misses);
            ServeMetrics::bump(&tier.fallbacks);
            None
        }
    }
}

fn handle_degrade(
    state: &ServeState,
    request: &Request,
    deadline: &Deadline,
    parent: u64,
) -> Response {
    let mode = match degrade_mode(&request.target) {
        Ok(m) => m,
        Err(r) => return r,
    };
    let query = match parse_degrade(&request.body) {
        Ok(q) => q,
        Err(r) => return r,
    };
    let key = match query.stress_key() {
        Ok(k) => k,
        Err(e) => return Response::error(400, &e),
    };
    // The surface tier sits before the overload gate: like a cache peek,
    // an interpolated hit takes no evaluation slot and stays answerable
    // under brownout. `stress_key()` already validated the operating
    // point, so the RAS fraction below is well-defined.
    if let Some(tier) = state.surface() {
        match mode {
            DegradeMode::Exact => ServeMetrics::bump(&tier.fallbacks),
            DegradeMode::Surface => {
                if let Some(response) = surface_answer(state, tier, &query, parent) {
                    return response;
                }
            }
        }
    }
    if state.overload.gate(Endpoint::Degrade, Instant::now()) == EvalGate::CacheOnly {
        // Brownout: a memoized answer is still a full answer (bit-equal
        // to an evaluation); only cold work is refused.
        if let Some(delta_vth) = state.cache.peek(&key) {
            return render_degrade(state, delta_vth);
        }
        return brownout_shed(state, "cold degrade evaluation");
    }
    let response = degrade_eval(state, key, deadline, parent);
    state
        .overload
        .settle(Endpoint::Degrade, response.status, Instant::now());
    response
}

fn degrade_eval(state: &ServeState, key: StressKey, deadline: &Deadline, parent: u64) -> Response {
    // The queue wait may already have consumed the deadline.
    if deadline.fire_if_due(Instant::now()) {
        return Response::error(504, "request deadline exceeded");
    }
    let obs = &state.obs;
    // `coalesce` is what *this* request waited for the shared value —
    // leader and joiners alike; `evaluate` exists only on the leader (the
    // closure runs once per cold key).
    let coalesce_span = obs.tracer.child("coalesce", parent);
    let t_coalesce = Instant::now();
    let result = state.flight.run(key, || {
        let eval_span = obs.tracer.child("evaluate", coalesce_span.id());
        let t_eval = Instant::now();
        let value = state.eval.delta_vth(key);
        obs.eval.record(t_eval.elapsed());
        drop(eval_span);
        value
    });
    obs.coalesce.record(t_coalesce.elapsed());
    drop(coalesce_span);
    let delta_vth = match result {
        Ok(v) => v,
        Err(e) => return Response::error(500, &e),
    };
    let serialize_span = obs.tracer.child("serialize", parent);
    let t_serialize = Instant::now();
    let response = render_degrade(state, delta_vth);
    obs.serialize.record(t_serialize.elapsed());
    drop(serialize_span);
    response
}

fn parse_f64_list(root: &Json, name: &'static str) -> Result<Vec<f64>, Response> {
    let arr = root
        .get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| Response::error(400, &format!("missing or non-array field {name:?}")))?;
    arr.iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| Response::error(400, &format!("{name:?} entries must be numbers")))
        })
        .collect()
}

fn parse_str_list(root: &Json, name: &'static str) -> Result<Vec<String>, Response> {
    let arr = root
        .get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| Response::error(400, &format!("missing or non-array field {name:?}")))?;
    arr.iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| Response::error(400, &format!("{name:?} entries must be strings")))
        })
        .collect()
}

/// Parses a `/v1/sweep` body into the batch engine's [`SweepSpec`] — same
/// grid semantics, same canonical point order.
///
/// # Errors
///
/// The 400 (malformed) or 413 (grid too large) response.
pub fn parse_sweep(body: &[u8]) -> Result<SweepSpec, Response> {
    let root = json::parse(body).map_err(|e| Response::error(400, &e.to_string()))?;
    let workload = root
        .get("workload")
        .ok_or_else(|| Response::error(400, "missing field \"workload\""))?;
    let kind = workload
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| Response::error(400, "workload needs a \"kind\" of model|aging"))?;
    let workload = match kind {
        "model" => Workload::ModelDeltaVth {
            p_active: require_f64(workload, "p_active")?,
            p_standby: require_f64(workload, "p_standby")?,
        },
        "aging" => {
            let circuits = parse_str_list(workload, "circuits")?;
            let policies = parse_str_list(workload, "policies")?
                .iter()
                .map(|s| PolicySpec::parse(s))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| Response::error(400, &e))?;
            Workload::CircuitAging { circuits, policies }
        }
        other => {
            return Err(Response::error(
                400,
                &format!("unknown workload kind {other:?} (want model|aging)"),
            ))
        }
    };
    let ras_values = root
        .get("ras")
        .and_then(Json::as_arr)
        .ok_or_else(|| Response::error(400, "missing or non-array field \"ras\""))?
        .iter()
        .map(parse_ras_pair)
        .collect::<Result<Vec<_>, _>>()?;
    let spec = SweepSpec {
        workload,
        ras: ras_values,
        t_standby: parse_f64_list(&root, "t_standby_k")?
            .into_iter()
            .map(Kelvin)
            .collect(),
        lifetimes: parse_f64_list(&root, "lifetime_s")?
            .into_iter()
            .map(Seconds)
            .collect(),
    };
    if spec.is_empty() {
        return Err(Response::error(400, "sweep grid is empty"));
    }
    if spec.len() > MAX_SWEEP_POINTS {
        return Err(Response::error(
            413,
            &format!(
                "inline sweep of {} points exceeds the limit of {MAX_SWEEP_POINTS}; \
                 use the batch engine (relia sweep) for large grids",
                spec.len()
            ),
        ));
    }
    Ok(spec)
}

fn handle_sweep(state: &ServeState, request: &Request, deadline: &Deadline) -> Response {
    // Inline sweeps are cold batch work by definition: under brownout
    // they are shed whole, before the body is even parsed.
    if state.overload.gate(Endpoint::Sweep, Instant::now()) == EvalGate::CacheOnly {
        return brownout_shed(state, "inline sweep");
    }
    let response = sweep_response(state, request, deadline);
    state
        .overload
        .settle(Endpoint::Sweep, response.status, Instant::now());
    response
}

fn sweep_response(state: &ServeState, request: &Request, deadline: &Deadline) -> Response {
    let spec = match parse_sweep(&request.body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let points = spec.points();
    let mut rendered: Vec<String> = Vec::with_capacity(points.len());
    for point in &points {
        // Cooperative deadline check between points: a sweep that blows
        // its budget returns 504 instead of hogging a worker.
        if deadline.fire_if_due(Instant::now()) {
            return Response::error(504, "request deadline exceeded");
        }
        let prefix = format!(
            "\"ras\":[{},{}],\"t_standby_k\":{},\"lifetime_s\":{}",
            fmt_f64(point.ras.0),
            fmt_f64(point.ras.1),
            fmt_f64(point.t_standby.0),
            fmt_f64(point.lifetime.0)
        );
        match &point.task {
            relia_jobs::JobTask::Model {
                p_active,
                p_standby,
            } => {
                let query = DegradeQuery {
                    ras: point.ras,
                    t_standby_k: point.t_standby,
                    lifetime_s: point.lifetime.0,
                    p_active: *p_active,
                    p_standby: *p_standby,
                };
                let key = match query.stress_key() {
                    Ok(k) => k,
                    Err(e) => return Response::error(400, &e),
                };
                let delta_vth = match state.flight.run(key, || state.eval.delta_vth(key)) {
                    Ok(v) => v,
                    Err(e) => return Response::error(500, &e),
                };
                rendered.push(format!(
                    "{{{prefix},\"delta_vth_v\":{}}}",
                    fmt_f64(delta_vth)
                ));
            }
            relia_jobs::JobTask::Aging { circuit, policy } => {
                match run_aging_point(state, circuit, policy, point, deadline) {
                    Ok(body) => rendered.push(format!("{{{prefix},{body}}}")),
                    Err(r) => return r,
                }
            }
        }
    }
    Response::json(
        200,
        format!(
            "{{\"count\":{},\"points\":[{}]}}",
            rendered.len(),
            rendered.join(",")
        ),
    )
}

fn run_aging_point(
    state: &ServeState,
    circuit: &str,
    policy: &PolicySpec,
    point: &relia_jobs::JobPoint,
    deadline: &Deadline,
) -> Result<String, Response> {
    let pair = state.prep_for(circuit)?;
    let ras =
        Ras::new(point.ras.0, point.ras.1).map_err(|e| Response::error(400, &e.to_string()))?;
    let mut config = FlowConfig::with_schedule(ras, point.t_standby)
        .map_err(|e| Response::error(400, &e.to_string()))?;
    config.lifetime = point.lifetime;
    let analysis = AgingAnalysis::from_prep(&config, &pair.0, pair.1.clone());
    let report = analysis
        .run_with_cache_cancellable(&policy.to_policy(), state.cache.as_ref(), deadline.token())
        .map_err(|e| match e {
            FlowError::Cancelled => Response::error(504, "request deadline exceeded"),
            other => Response::error(500, &other.to_string()),
        })?;
    Ok(format!(
        "\"circuit\":\"{}\",\"policy\":\"{}\",\"worst_delta_vth_v\":{},\
         \"delay_degradation\":{},\"nominal_delay_ps\":{},\"degraded_delay_ps\":{}",
        json::escape(circuit),
        json::escape(&policy.label()),
        fmt_f64(report.worst_delta_vth()),
        fmt_f64(report.degradation_fraction()),
        fmt_f64(report.nominal.max_delay_ps()),
        fmt_f64(report.degraded.max_delay_ps())
    ))
}

fn optional_f64(root: &Json, name: &'static str, default: f64) -> Result<f64, Response> {
    match root.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| Response::error(400, &format!("field {name:?} must be a number"))),
    }
}

/// Parses a `/v1/fleet` body into a [`FleetSpec`]. Required fields mirror
/// `/v1/sweep` (`ras`, `t_standby_k`, `p_active`, `p_standby`) plus
/// `times_s` and `samples`; `seed`, `correlation`, `rate_sigma`,
/// `guardband`, `vth_mean_v`, and `vth_sigma_v` default to the paper's
/// fleet study.
///
/// # Errors
///
/// The 400 (malformed) or 413 (fleet too large) response.
pub fn parse_fleet(body: &[u8]) -> Result<FleetSpec, Response> {
    let root = json::parse(body).map_err(|e| Response::error(400, &e.to_string()))?;
    let defaults = FleetSpec::paper_defaults()
        .map_err(|e| Response::error(500, &format!("builtin fleet defaults: {e}")))?;
    let ras = parse_ras_pair(
        root.get("ras")
            .ok_or_else(|| Response::error(400, "missing field \"ras\""))?,
    )?;
    let ras = Ras::new(ras.0, ras.1).map_err(|e| Response::error(400, &e.to_string()))?;
    let times: Vec<Seconds> = parse_f64_list(&root, "times_s")?
        .into_iter()
        .map(Seconds)
        .collect();
    if times.len() > MAX_FLEET_TIMES {
        return Err(Response::error(
            413,
            &format!(
                "{} evaluation times exceed the limit of {MAX_FLEET_TIMES}",
                times.len()
            ),
        ));
    }
    let samples = require_f64(&root, "samples")?;
    if !samples.is_finite() || samples < 1.0 {
        return Err(Response::error(400, "samples must be a positive count"));
    }
    if samples > MAX_FLEET_SAMPLES as f64 {
        return Err(Response::error(
            413,
            &format!(
                "inline fleet of {samples} samples exceeds the limit of {MAX_FLEET_SAMPLES}; \
                 use the batch engine (relia fleet) for larger studies"
            ),
        ));
    }
    let mean = optional_f64(&root, "vth_mean_v", defaults.dist.mean().0)?;
    let sigma = optional_f64(&root, "vth_sigma_v", defaults.dist.sigma().0)?;
    let dist = VthDistribution::new(Volts(mean), Volts(sigma))
        .map_err(|e| Response::error(400, &e.to_string()))?;
    let seed = optional_f64(&root, "seed", defaults.seed as f64)?;
    if !seed.is_finite() || seed < 0.0 {
        return Err(Response::error(400, "seed must be a non-negative integer"));
    }
    Ok(FleetSpec {
        ras,
        t_standby: Kelvin(require_f64(&root, "t_standby_k")?),
        p_active: require_f64(&root, "p_active")?,
        p_standby: require_f64(&root, "p_standby")?,
        times,
        dist,
        correlation: optional_f64(&root, "correlation", defaults.correlation)?,
        rate_sigma: optional_f64(&root, "rate_sigma", defaults.rate_sigma)?,
        guardband: optional_f64(&root, "guardband", defaults.guardband)?,
        samples: samples as usize,
        seed: seed as u64,
    })
}

/// Renders the `/v1/fleet` response body. Public so clients can compute
/// the expected bytes from a direct [`relia_fleet::run_fleet`] call at the
/// default chunk size.
pub fn fleet_body(summary: &FleetSummary, chunks: usize) -> String {
    let points: Vec<String> = summary
        .points
        .iter()
        .map(|p| {
            format!(
                "{{\"time_s\":{},\"mean\":{},\"std_dev\":{},\"p50\":{},\"p90\":{},\
                 \"p99\":{},\"yield\":{}}}",
                fmt_f64(p.time.0),
                fmt_f64(p.mean),
                fmt_f64(p.std_dev),
                fmt_f64(p.p50),
                fmt_f64(p.p90),
                fmt_f64(p.p99),
                fmt_f64(p.yield_fraction)
            )
        })
        .collect();
    format!(
        "{{\"samples\":{},\"seed\":{},\"guardband\":{},\"chunks\":{chunks},\
         \"points\":[{}],\"lifetime_s\":{{\"p01\":{},\"p10\":{},\"p50\":{}}}}}",
        summary.samples,
        summary.seed,
        fmt_f64(summary.guardband),
        points.join(","),
        fmt_f64(summary.lifetime.p01),
        fmt_f64(summary.lifetime.p10),
        fmt_f64(summary.lifetime.p50)
    )
}

fn handle_fleet(state: &ServeState, request: &Request, deadline: &Deadline) -> Response {
    // Fleet studies have no memo cache to answer from: brownout sheds
    // them whole, before parsing.
    if state.overload.gate(Endpoint::Fleet, Instant::now()) == EvalGate::CacheOnly {
        return brownout_shed(state, "inline fleet study");
    }
    let response = fleet_response(request, deadline);
    state
        .overload
        .settle(Endpoint::Fleet, response.status, Instant::now());
    response
}

fn fleet_response(request: &Request, deadline: &Deadline) -> Response {
    let spec = match parse_fleet(&request.body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let eval = match FleetEvaluator::prepare(&spec) {
        Ok(e) => e,
        Err(e @ (FleetError::Invalid { .. } | FleetError::Model(_))) => {
            return Response::error(400, &e.to_string())
        }
        Err(e) => return Response::error(500, &e.to_string()),
    };
    // Chunk-wise evaluation with a cooperative deadline poll between
    // chunks, exactly like `/v1/sweep` between grid points. Merging in
    // index order keeps the summary byte-identical to `relia fleet` at the
    // same (default) chunk size.
    let total_chunks = spec.samples.div_ceil(DEFAULT_CHUNK);
    let mut total = ChunkAccum::new(spec.times.len());
    for index in 0..total_chunks {
        if deadline.fire_if_due(Instant::now()) {
            return Response::error(504, "request deadline exceeded");
        }
        let start = index * DEFAULT_CHUNK;
        let len = DEFAULT_CHUNK.min(spec.samples - start);
        let Some(acc) = eval.run_chunk(spec.seed, index, len, deadline.token()) else {
            return Response::error(504, "request deadline exceeded");
        };
        if let Err(e) = total.merge(&acc) {
            return Response::error(500, &e.to_string());
        }
    }
    Response::json(
        200,
        fleet_body(&eval.summarize(&spec, &total), total_chunks),
    )
}

/// What [`handle_fleet_streamed`] did with the connection.
#[derive(Debug)]
pub enum FleetStream {
    /// Nothing touched the wire: the caller writes this response
    /// conventionally (drain, brownout shed, and parse/prepare failures
    /// all resolve before the first byte, byte-identical to the buffered
    /// path).
    Buffered(Response),
    /// A chunked response was written and terminated. `status` is the
    /// logical outcome for accounting — a mid-stream failure reports
    /// 504/500 even though the head already said 200 — and `close` is
    /// true when an error frame replaced the summary, so the connection
    /// must drop.
    Streamed {
        /// Logical status for metrics and overload accounting.
        status: u16,
        /// The connection must close after this response.
        close: bool,
    },
}

/// `POST /v1/fleet` with chunked progress streaming. Once the spec parses
/// and prepares, a `200` chunked head goes out, followed by one NDJSON
/// progress frame per evaluated chunk (`{"chunk":i,"of":N}`) and, as the
/// final frame, exactly the summary body the buffered [`handle`] path
/// would have produced. A mid-stream deadline or merge failure emits an
/// `{"error":…}` frame instead of the summary, terminates the chunked
/// body, and demands a close. Counters, gates, and settle calls mirror
/// the buffered handler.
///
/// # Errors
///
/// Transport failures writing to `w`; the wire state is then
/// indeterminate and the caller must drop the connection.
pub fn handle_fleet_streamed(
    state: &ServeState,
    request: &Request,
    deadline: &Deadline,
    w: &mut impl io::Write,
) -> io::Result<FleetStream> {
    ServeMetrics::bump(&state.metrics.requests);
    if state.is_draining() {
        let mut r = Response::error(503, "server is draining");
        r.retry_after = Some(1);
        r.close = true;
        return Ok(FleetStream::Buffered(r));
    }
    if state.overload.gate(Endpoint::Fleet, Instant::now()) == EvalGate::CacheOnly {
        return Ok(FleetStream::Buffered(brownout_shed(
            state,
            "inline fleet study",
        )));
    }
    let settle = |status: u16| {
        state
            .overload
            .settle(Endpoint::Fleet, status, Instant::now());
    };
    let spec = match parse_fleet(&request.body) {
        Ok(s) => s,
        Err(r) => {
            settle(r.status);
            return Ok(FleetStream::Buffered(r));
        }
    };
    let eval = match FleetEvaluator::prepare(&spec) {
        Ok(e) => e,
        Err(e) => {
            let r = match e {
                FleetError::Invalid { .. } | FleetError::Model(_) => {
                    Response::error(400, &e.to_string())
                }
                other => Response::error(500, &other.to_string()),
            };
            settle(r.status);
            return Ok(FleetStream::Buffered(r));
        }
    };
    // From here on, bytes hit the wire.
    write_chunked_head(w, 200, "application/json", false)?;
    let total_chunks = spec.samples.div_ceil(DEFAULT_CHUNK);
    let mut total = ChunkAccum::new(spec.times.len());
    let mut failure: Option<(u16, String)> = None;
    for index in 0..total_chunks {
        if deadline.fire_if_due(Instant::now()) {
            failure = Some((504, "request deadline exceeded".to_owned()));
            break;
        }
        let start = index * DEFAULT_CHUNK;
        let len = DEFAULT_CHUNK.min(spec.samples - start);
        let Some(acc) = eval.run_chunk(spec.seed, index, len, deadline.token()) else {
            failure = Some((504, "request deadline exceeded".to_owned()));
            break;
        };
        if let Err(e) = total.merge(&acc) {
            failure = Some((500, e.to_string()));
            break;
        }
        write_chunk(
            w,
            format!("{{\"chunk\":{},\"of\":{total_chunks}}}\n", index + 1).as_bytes(),
        )?;
    }
    let (status, close) = match failure {
        Some((status, reason)) => {
            write_chunk(
                w,
                format!("{{\"error\":\"{}\"}}\n", json::escape(&reason)).as_bytes(),
            )?;
            (status, true)
        }
        None => {
            let body = fleet_body(&eval.summarize(&spec, &total), total_chunks);
            write_chunk(w, format!("{body}\n").as_bytes())?;
            (200, false)
        }
    };
    write_chunked_end(w)?;
    settle(status);
    Ok(FleetStream::Streamed { status, close })
}

fn handle_metrics(state: &ServeState) -> Response {
    // Build info leads the exposition: a constant-1 series whose labels
    // carry the version, the Prometheus idiom for joinable metadata.
    let mut body = format!(
        "# TYPE relia_build_info gauge\nrelia_build_info{{version=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    );
    body.push_str(&render_prometheus(&state.snapshot()));
    Response::text(200, body)
}

fn handle_trace(state: &ServeState) -> Response {
    Response::json(200, state.obs.trace_json())
}

fn handle_health(state: &ServeState) -> Response {
    let health = state
        .health
        .observe(state.is_draining(), state.overload.degraded());
    match health {
        HealthState::Degraded => {
            // 203: answered authoritatively about *ourselves*, but the
            // service behind us is impaired. Retry-After tells probes
            // (and patient clients) when to look again.
            let worst = [Endpoint::Degrade, Endpoint::Sweep, Endpoint::Fleet]
                .iter()
                .map(|&e| state.overload.breaker(e).state())
                .max_by(|a, b| a.gauge().total_cmp(&b.gauge()))
                .unwrap_or(BreakerState::Closed);
            let mut response = Response::json(
                203,
                format!(
                    "{{\"status\":\"degraded\",\"breaker\":\"{}\",\"inflight\":{}}}",
                    worst.label(),
                    state.overload.inflight()
                ),
            );
            response.retry_after = Some(state.overload.retry_after());
            response
        }
        other => Response::json(200, format!("{{\"status\":\"{}\"}}", other.label())),
    }
}

/// Routes one request. The response is fully rendered; `Action` tells the
/// connection loop whether a graceful drain was requested.
pub fn handle(state: &ServeState, request: &Request, deadline: &Deadline) -> (Response, Action) {
    handle_traced(state, request, deadline, 0)
}

/// [`handle`] with an explicit parent span id: the connection loop passes
/// its per-request root span so handler phases (`coalesce`, `evaluate`,
/// `serialize`) nest under it in `GET /debug/trace`.
pub fn handle_traced(
    state: &ServeState,
    request: &Request,
    deadline: &Deadline,
    parent: u64,
) -> (Response, Action) {
    ServeMetrics::bump(&state.metrics.requests);
    if state.is_draining() && request.path() != "/healthz" {
        let mut r = Response::error(503, "server is draining");
        r.retry_after = Some(1);
        r.close = true;
        return (r, Action::Continue);
    }
    let response = match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => handle_health(state),
        ("GET", "/metrics") => handle_metrics(state),
        ("GET", "/debug/trace") => handle_trace(state),
        ("POST", "/v1/degrade") => handle_degrade(state, request, deadline, parent),
        ("POST", "/v1/sweep") => handle_sweep(state, request, deadline),
        ("POST", "/v1/fleet") => handle_fleet(state, request, deadline),
        ("POST", "/admin/shutdown") => {
            state.begin_drain();
            return (
                Response::json(200, "{\"status\":\"draining\"}"),
                Action::Shutdown,
            );
        }
        (
            _,
            "/healthz" | "/metrics" | "/debug/trace" | "/v1/degrade" | "/v1/sweep" | "/v1/fleet"
            | "/admin/shutdown",
        ) => Response::error(405, "method not allowed for this endpoint"),
        (_, path) => Response::error(404, &format!("no such endpoint: {path}")),
    };
    (response, Action::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_flow::NoCache;

    fn state() -> ServeState {
        ServeState::new(Duration::from_secs(5)).unwrap()
    }

    fn deadline(timeout: Duration) -> Deadline {
        Deadline::new(relia_core::CancelToken::new(), Instant::now() + timeout)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            target: path.to_owned(),
            http11: true,
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            target: path.to_owned(),
            http11: true,
            headers: vec![],
            body: vec![],
        }
    }

    const QUERY: DegradeQuery = DegradeQuery {
        ras: (1.0, 9.0),
        t_standby_k: Kelvin(330.0),
        lifetime_s: 1.0e8,
        p_active: 0.5,
        p_standby: 1.0,
    };

    #[test]
    fn degrade_matches_a_direct_library_call_byte_for_byte() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let (response, action) = handle(&s, &post("/v1/degrade", &QUERY.to_body()), &d);
        assert_eq!(response.status, 200);
        assert_eq!(action, Action::Continue);

        // The independent ground truth: quantize + evaluate, no cache.
        let model = NbtiModel::ptm90().unwrap();
        let key = QUERY.stress_key().unwrap();
        let dvth = NoCache.delta_vth(key, &model).unwrap();
        let params = NbtiParams::ptm90().unwrap();
        let frac = relia_core::DelayDegradation::new(&params)
            .linear(dvth)
            .unwrap();
        assert_eq!(response.body, degrade_body(dvth, frac).into_bytes());
    }

    #[test]
    fn degrade_hits_the_cache_on_repeat() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let req = post("/v1/degrade", &QUERY.to_body());
        let first = handle(&s, &req, &d).0;
        let second = handle(&s, &req, &d).0;
        assert_eq!(first.body, second.body);
        let stats = s.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn degrade_rejects_bad_bodies_with_400() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        for body in [
            "",
            "not json",
            "{}",
            "{\"ras\":[1],\"t_standby_k\":330,\"lifetime_s\":1,\"p_active\":0.5,\"p_standby\":1}",
            "{\"ras\":[1,9],\"t_standby_k\":330,\"lifetime_s\":1,\"p_active\":2.5,\"p_standby\":1}",
            "{\"ras\":[1,9],\"t_standby_k\":-10,\"lifetime_s\":1,\"p_active\":0.5,\"p_standby\":1}",
        ] {
            let r = handle(&s, &post("/v1/degrade", body), &d).0;
            assert_eq!(
                r.status,
                400,
                "{body:?} → {:?}",
                String::from_utf8_lossy(&r.body)
            );
        }
    }

    #[test]
    fn expired_deadline_maps_to_504() {
        let s = state();
        let d = deadline(Duration::ZERO);
        let r = handle(&s, &post("/v1/degrade", &QUERY.to_body()), &d).0;
        assert_eq!(r.status, 504);
        let sweep_body = "{\"workload\":{\"kind\":\"model\",\"p_active\":0.5,\"p_standby\":1},\
             \"ras\":[[1,9]],\"t_standby_k\":[330],\"lifetime_s\":[1e8]}";
        let r = handle(&s, &post("/v1/sweep", sweep_body), &d).0;
        assert_eq!(r.status, 504);
    }

    #[test]
    fn model_sweep_matches_degrade_values_in_canonical_order() {
        let s = state();
        let d = deadline(Duration::from_secs(30));
        let body = "{\"workload\":{\"kind\":\"model\",\"p_active\":0.5,\"p_standby\":1},\
             \"ras\":[[1,9]],\"t_standby_k\":[330,400],\"lifetime_s\":[1e8]}";
        let r = handle(&s, &post("/v1/sweep", body), &d).0;
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.starts_with("{\"count\":2,\"points\":["));
        // Canonical order: t_standby sweeps 330 then 400.
        let i330 = text.find("\"t_standby_k\":330").unwrap();
        let i400 = text.find("\"t_standby_k\":400").unwrap();
        assert!(i330 < i400);
        // Values equal the degrade path's.
        let model = NbtiModel::ptm90().unwrap();
        let mut q = QUERY;
        q.t_standby_k = Kelvin(400.0);
        let dvth = q.stress_key().unwrap().evaluate(&model).unwrap();
        assert!(text.contains(&format!("\"delta_vth_v\":{}", fmt_f64(dvth))));
    }

    #[test]
    fn aging_sweep_reports_circuit_results() {
        let s = state();
        let d = deadline(Duration::from_secs(60));
        let body = "{\"workload\":{\"kind\":\"aging\",\"circuits\":[\"c17\"],\
             \"policies\":[\"worst\",\"best\"]},\
             \"ras\":[[1,9]],\"t_standby_k\":[330],\"lifetime_s\":[1e8]}";
        let r = handle(&s, &post("/v1/sweep", body), &d).0;
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("\"count\":2"));
        assert!(text.contains("\"policy\":\"worst\""));
        assert!(text.contains("\"policy\":\"best\""));
        assert!(text.contains("\"worst_delta_vth_v\":"));
        assert!(text.contains("\"nominal_delay_ps\":"));
    }

    #[test]
    fn oversized_sweeps_get_413_and_unknown_circuits_400() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let lifetimes: Vec<String> = (1..=300).map(|i| format!("{i}e6")).collect();
        let body = format!(
            "{{\"workload\":{{\"kind\":\"model\",\"p_active\":0.5,\"p_standby\":1}},\
             \"ras\":[[1,9]],\"t_standby_k\":[330],\"lifetime_s\":[{}]}}",
            lifetimes.join(",")
        );
        let r = handle(&s, &post("/v1/sweep", &body), &d).0;
        assert_eq!(r.status, 413);

        let body = "{\"workload\":{\"kind\":\"aging\",\"circuits\":[\"nope\"],\
             \"policies\":[\"worst\"]},\
             \"ras\":[[1,9]],\"t_standby_k\":[330],\"lifetime_s\":[1e8]}";
        let r = handle(&s, &post("/v1/sweep", body), &d).0;
        assert_eq!(r.status, 400);
    }

    const FLEET_BODY: &str = "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\
         \"p_standby\":1,\"times_s\":[3.156e7,1e8],\"samples\":2000}";

    #[test]
    fn fleet_matches_the_batch_engine_byte_for_byte() {
        let s = state();
        let d = deadline(Duration::from_secs(30));
        let r = handle(&s, &post("/v1/fleet", FLEET_BODY), &d).0;
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));

        // Ground truth: the fleet library at the default chunk size.
        let mut spec = FleetSpec::paper_defaults().unwrap();
        spec.times = vec![Seconds(3.156e7), Seconds(1e8)];
        spec.samples = 2000;
        let out = relia_fleet::run_fleet(&spec, &relia_fleet::FleetOptions::default()).unwrap();
        let expected = fleet_body(
            &out.summary,
            spec.samples.div_ceil(relia_fleet::DEFAULT_CHUNK),
        );
        assert_eq!(r.body, expected.into_bytes());
    }

    #[test]
    fn fleet_serves_ten_thousand_samples_within_the_deadline() {
        let s = state();
        let d = deadline(Duration::from_secs(60));
        let body = "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[3.156e7,9.468e7,1e8],\"samples\":10000,\"seed\":7}";
        let r = handle(&s, &post("/v1/fleet", body), &d).0;
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("\"samples\":10000"));
        assert!(text.contains("\"seed\":7"));
        assert!(text.contains("\"chunks\":5"));
        assert!(text.contains("\"lifetime_s\":{"));
    }

    #[test]
    fn fleet_rejects_oversized_and_malformed_requests() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        // Too many samples → 413.
        let body = "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[1e8],\"samples\":100001}";
        assert_eq!(handle(&s, &post("/v1/fleet", body), &d).0.status, 413);
        // Too many times → 413.
        let times: Vec<String> = (1..=17).map(|i| format!("{i}e6")).collect();
        let body = format!(
            "{{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[{}],\"samples\":100}}",
            times.join(",")
        );
        assert_eq!(handle(&s, &post("/v1/fleet", &body), &d).0.status, 413);
        // Malformed bodies → 400.
        for body in [
            "",
            "not json",
            "{}",
            // Missing samples.
            "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[1e8]}",
            // Decreasing times.
            "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[1e8,1e7],\"samples\":100}",
            // Correlation out of range.
            "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[1e8],\"samples\":100,\"correlation\":2}",
            // Vth spread escapes [0, vdd).
            "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[1e8],\"samples\":100,\"vth_mean_v\":0.9,\"vth_sigma_v\":0.1}",
        ] {
            let r = handle(&s, &post("/v1/fleet", body), &d).0;
            assert_eq!(
                r.status,
                400,
                "{body:?} → {:?}",
                String::from_utf8_lossy(&r.body)
            );
        }
    }

    #[test]
    fn fleet_honours_deadline_and_drain() {
        let s = state();
        let r = handle(
            &s,
            &post("/v1/fleet", FLEET_BODY),
            &deadline(Duration::ZERO),
        )
        .0;
        assert_eq!(r.status, 504);

        s.begin_drain();
        let (r, _) = handle(
            &s,
            &post("/v1/fleet", FLEET_BODY),
            &deadline(Duration::from_secs(5)),
        );
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(1));
    }

    #[test]
    fn routing_covers_health_metrics_404_405() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let r = handle(&s, &get("/healthz"), &d).0;
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"{\"status\":\"ok\"}");

        let r = handle(&s, &get("/metrics"), &d).0;
        assert_eq!(r.status, 200);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("relia_serve_requests"));
        assert!(text.contains("relia_cache_hits"));
        assert!(text.contains("relia_serve_coalesce_leads"));

        let r = handle(&s, &get("/debug/trace"), &d).0;
        assert_eq!(r.status, 200);
        assert!(String::from_utf8(r.body)
            .unwrap()
            .starts_with("{\"dropped\":"));

        assert_eq!(handle(&s, &get("/nope"), &d).0.status, 404);
        assert_eq!(handle(&s, &get("/v1/degrade"), &d).0.status, 405);
        assert_eq!(handle(&s, &get("/v1/fleet"), &d).0.status, 405);
        assert_eq!(handle(&s, &post("/healthz", ""), &d).0.status, 405);
        assert_eq!(handle(&s, &post("/debug/trace", ""), &d).0.status, 405);
    }

    #[test]
    fn metrics_leads_with_build_info_and_uptime() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let r = handle(&s, &get("/metrics"), &d).0;
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.starts_with(&format!(
            "# TYPE relia_build_info gauge\nrelia_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("# TYPE relia_process_uptime_seconds gauge\n"));
    }

    #[test]
    fn degrade_populates_phase_histograms_on_metrics() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        assert_eq!(
            handle(&s, &post("/v1/degrade", &QUERY.to_body()), &d)
                .0
                .status,
            200
        );
        let snap = s.snapshot();
        for name in [
            "serve_coalesce_seconds",
            "serve_eval_seconds",
            "serve_serialize_seconds",
        ] {
            assert_eq!(snap.histogram(name).map(|h| h.count), Some(1), "{name}");
        }
        let text = String::from_utf8(handle(&s, &get("/metrics"), &d).0.body).unwrap();
        assert!(text.contains("# TYPE relia_serve_eval_seconds histogram\n"));
        assert!(text.contains("relia_serve_eval_seconds_count 1\n"));
        // One sample → exactly one finite bucket, cumulative count 1.
        assert!(text.contains("relia_serve_eval_seconds_bucket{le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn debug_trace_returns_schema_pinned_spans_for_a_real_request() {
        let clock = Arc::new(relia_obs::TestClock::new());
        let s = state().with_obs(
            crate::obs::ServeObs::new().with_tracer(relia_obs::Tracer::with_clock(16, clock)),
        );
        let d = deadline(Duration::from_secs(5));
        let root = s.obs.tracer.span("request");
        let parent = root.id();
        let r = handle_traced(&s, &post("/v1/degrade", &QUERY.to_body()), &d, parent);
        assert_eq!(r.0.status, 200);
        drop(root);

        let r = handle(&s, &get("/debug/trace"), &d).0;
        assert_eq!(r.status, 200);
        let root_json = json::parse(&r.body).unwrap();
        assert_eq!(root_json.get("dropped").and_then(Json::as_f64), Some(0.0));
        let spans = root_json.get("spans").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = spans
            .iter()
            .map(|s| s.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(names, ["request", "coalesce", "evaluate", "serialize"]);
        for span in spans {
            for key in ["dur_ns", "id", "parent", "start_ns"] {
                assert!(span.get(key).and_then(Json::as_f64).is_some(), "{key}");
            }
        }
        // `coalesce` and `serialize` nest under the request root;
        // `evaluate` under `coalesce` (the leader's closure).
        let by_name = |n: &str| {
            spans
                .iter()
                .find(|s| s.get("name").and_then(Json::as_str) == Some(n))
                .unwrap()
        };
        let root_id = by_name("request").get("id").and_then(Json::as_f64).unwrap();
        assert_eq!(
            by_name("coalesce").get("parent").and_then(Json::as_f64),
            Some(root_id)
        );
        assert_eq!(
            by_name("serialize").get("parent").and_then(Json::as_f64),
            Some(root_id)
        );
        assert_eq!(
            by_name("evaluate").get("parent").and_then(Json::as_f64),
            by_name("coalesce").get("id").and_then(Json::as_f64)
        );
    }

    /// One 9×9×13 surface shared by the tier tests — building it is the
    /// expensive part (a few thousand model evaluations).
    fn test_surface() -> Surface {
        static SURFACE: std::sync::OnceLock<Surface> = std::sync::OnceLock::new();
        SURFACE
            .get_or_init(|| {
                let model = NbtiModel::ptm90().unwrap();
                let spec = relia_surface::BuildSpec {
                    t_active_k: vec![Kelvin(SWEEP_TEMP_ACTIVE_K)],
                    t_standby_k: relia_surface::kelvin_spaced(320.0, 400.0, 9),
                    ras_fraction: relia_surface::lin_spaced(0.1, 0.9, 9),
                    lifetime_s: relia_surface::log_spaced(1e6, 1e9, 13),
                    pairs: vec![(0.5, 1.0)],
                    period_s: SWEEP_PERIOD_S,
                    workers: 2,
                };
                Surface::from_artifact(relia_surface::build(&model, &spec).unwrap()).unwrap()
            })
            .clone()
    }

    fn body_delta_vth(response: &Response) -> f64 {
        json::parse(&response.body)
            .unwrap()
            .get("delta_vth_v")
            .and_then(Json::as_f64)
            .unwrap()
    }

    #[test]
    fn surface_tier_serves_hits_within_the_documented_bound() {
        let s = state().with_surface(test_surface());
        let d = deadline(Duration::from_secs(5));
        let r = handle(&s, &post("/v1/degrade", &QUERY.to_body()), &d).0;
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let tier = s.surface().unwrap();
        assert_eq!(
            (tier.hits(), tier.misses(), tier.fallbacks(), tier.clamps()),
            (1, 0, 0, 0)
        );
        let exact = body_delta_vth(&handle(&state(), &post("/v1/degrade", &QUERY.to_body()), &d).0);
        let err = relia_surface::rel_error(body_delta_vth(&r), exact);
        assert!(
            err <= relia_surface::DOCUMENTED_ERROR_BOUND,
            "rel error {err:e}"
        );
        // The ledger and gauge reach /metrics; the lookup fed its histogram.
        let snap = s.snapshot();
        assert_eq!(snap.counter("surface_hits"), Some(1));
        assert_eq!(snap.counter("surface_fallbacks"), Some(0));
        assert_eq!(snap.gauge("surface_active"), Some(1.0));
        assert_eq!(
            snap.histogram("serve_surface_seconds").map(|h| h.count),
            Some(1)
        );
        let text = String::from_utf8(handle(&s, &get("/metrics"), &d).0.body).unwrap();
        assert!(text.contains("relia_surface_hits 1\n"));
        assert!(text.contains("relia_surface_active 1\n"));
        // Without a surface the series still exist, at zero.
        let plain = state().snapshot();
        assert_eq!(plain.counter("surface_hits"), Some(0));
        assert_eq!(plain.gauge("surface_active"), Some(0.0));
    }

    #[test]
    fn surface_misses_and_clamps_fall_back_to_exact_byte_parity() {
        let s = state().with_surface(test_surface());
        let plain = state();
        let d = deadline(Duration::from_secs(5));
        // Standby temperature below the grid domain → clamp → exact path.
        let mut q = QUERY;
        q.t_standby_k = Kelvin(310.0);
        let r = handle(&s, &post("/v1/degrade", &q.to_body()), &d).0;
        let expect = handle(&plain, &post("/v1/degrade", &q.to_body()), &d).0;
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expect.body, "fallback is byte-identical to exact");
        let tier = s.surface().unwrap();
        assert_eq!(
            (tier.hits(), tier.misses(), tier.fallbacks(), tier.clamps()),
            (0, 1, 1, 1)
        );
        // A stress pair the artifact has no block for → miss, no clamp.
        let mut q2 = QUERY;
        q2.p_active = 0.7;
        assert_eq!(
            handle(&s, &post("/v1/degrade", &q2.to_body()), &d).0.status,
            200
        );
        assert_eq!(
            (tier.hits(), tier.misses(), tier.fallbacks(), tier.clamps()),
            (0, 2, 2, 1)
        );
    }

    #[test]
    fn mode_exact_escape_hatch_keeps_byte_parity() {
        let s = state().with_surface(test_surface());
        let plain = state();
        let d = deadline(Duration::from_secs(5));
        let r = handle(&s, &post("/v1/degrade?mode=exact", &QUERY.to_body()), &d).0;
        let expect = handle(&plain, &post("/v1/degrade", &QUERY.to_body()), &d).0;
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expect.body);
        let tier = s.surface().unwrap();
        assert_eq!((tier.hits(), tier.fallbacks()), (0, 1));
        // mode=surface is the default spelled out; unknown values are 400.
        let r = handle(&s, &post("/v1/degrade?mode=surface", &QUERY.to_body()), &d).0;
        assert_eq!(r.status, 200);
        assert_eq!(tier.hits(), 1);
        let r = handle(&s, &post("/v1/degrade?mode=banana", &QUERY.to_body()), &d).0;
        assert_eq!(r.status, 400);
        // Without a surface mounted, ?mode=exact is a harmless no-op.
        let r = handle(
            &plain,
            &post("/v1/degrade?mode=exact", &QUERY.to_body()),
            &d,
        )
        .0;
        assert_eq!(r.status, 200);
    }

    #[test]
    fn surface_hit_traces_a_surface_span() {
        let clock = Arc::new(relia_obs::TestClock::new());
        let s = state()
            .with_obs(
                crate::obs::ServeObs::new().with_tracer(relia_obs::Tracer::with_clock(16, clock)),
            )
            .with_surface(test_surface());
        let d = deadline(Duration::from_secs(5));
        let root = s.obs.tracer.span("request");
        let r = handle_traced(&s, &post("/v1/degrade", &QUERY.to_body()), &d, root.id());
        assert_eq!(r.0.status, 200);
        drop(root);
        let parsed = json::parse(s.obs.trace_json().as_bytes()).unwrap();
        let names: Vec<&str> = parsed
            .get("spans")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|sp| sp.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(names, ["request", "surface"]);
    }

    /// Decodes a chunked wire capture into (head, reassembled body).
    fn decode_chunked(raw: &[u8]) -> (String, String) {
        let text = std::str::from_utf8(raw).unwrap();
        let split = text.find("\r\n\r\n").unwrap();
        let head = &text[..split];
        let mut rest = &text[split + 4..];
        let mut body = String::new();
        loop {
            let line_end = rest.find("\r\n").unwrap();
            let size = usize::from_str_radix(&rest[..line_end], 16).unwrap();
            rest = &rest[line_end + 2..];
            if size == 0 {
                assert_eq!(rest, "\r\n", "terminator, no trailers");
                break;
            }
            body.push_str(&rest[..size]);
            assert_eq!(&rest[size..size + 2], "\r\n");
            rest = &rest[size + 2..];
        }
        (head.to_owned(), body)
    }

    #[test]
    fn streamed_fleet_reports_progress_then_the_buffered_summary() {
        let s = state();
        let d = deadline(Duration::from_secs(30));
        let mut wire = Vec::new();
        let out = handle_fleet_streamed(&s, &post("/v1/fleet", FLEET_BODY), &d, &mut wire).unwrap();
        assert!(
            matches!(
                out,
                FleetStream::Streamed {
                    status: 200,
                    close: false
                }
            ),
            "{out:?}"
        );
        let (head, body) = decode_chunked(&wire);
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("transfer-encoding: chunked"));
        let chunks = 2000usize.div_ceil(DEFAULT_CHUNK);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), chunks + 1);
        assert_eq!(lines[0], format!("{{\"chunk\":1,\"of\":{chunks}}}"));
        // The final frame is exactly the buffered summary body.
        let mut spec = FleetSpec::paper_defaults().unwrap();
        spec.times = vec![Seconds(3.156e7), Seconds(1e8)];
        spec.samples = 2000;
        let ground = relia_fleet::run_fleet(&spec, &relia_fleet::FleetOptions::default()).unwrap();
        assert_eq!(*lines.last().unwrap(), fleet_body(&ground.summary, chunks));
        assert_eq!(s.metrics.snapshot().counter("serve_requests"), Some(1));
    }

    #[test]
    fn streamed_fleet_buffers_pre_stream_failures() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let mut wire = Vec::new();
        let out = handle_fleet_streamed(&s, &post("/v1/fleet", "nope"), &d, &mut wire).unwrap();
        match out {
            FleetStream::Buffered(r) => assert_eq!(r.status, 400),
            other => panic!("expected buffered 400, got {other:?}"),
        }
        assert!(wire.is_empty(), "parse errors never touch the wire");
        s.begin_drain();
        let out = handle_fleet_streamed(&s, &post("/v1/fleet", FLEET_BODY), &d, &mut wire).unwrap();
        match out {
            FleetStream::Buffered(r) => {
                assert_eq!(r.status, 503);
                assert!(r.close);
            }
            other => panic!("expected buffered 503, got {other:?}"),
        }
        assert!(wire.is_empty());
    }

    #[test]
    fn streamed_fleet_mid_stream_deadline_emits_an_error_frame() {
        let s = state();
        let d = deadline(Duration::ZERO);
        let mut wire = Vec::new();
        let out = handle_fleet_streamed(&s, &post("/v1/fleet", FLEET_BODY), &d, &mut wire).unwrap();
        assert!(
            matches!(
                out,
                FleetStream::Streamed {
                    status: 504,
                    close: true
                }
            ),
            "{out:?}"
        );
        let (_, body) = decode_chunked(&wire);
        assert_eq!(body, "{\"error\":\"request deadline exceeded\"}\n");
    }

    #[test]
    fn shutdown_drains_and_sheds_later_requests() {
        let s = state();
        let d = deadline(Duration::from_secs(5));
        let (r, action) = handle(&s, &post("/admin/shutdown", ""), &d);
        assert_eq!(r.status, 200);
        assert_eq!(action, Action::Shutdown);
        assert!(s.is_draining());

        let (r, action) = handle(&s, &post("/v1/degrade", &QUERY.to_body()), &d);
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(1));
        assert_eq!(action, Action::Continue);

        // Health stays reachable for orchestration probes.
        let r = handle(&s, &get("/healthz"), &d).0;
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"{\"status\":\"draining\"}");
    }
}

//! The TCP front end: accept loop, bounded worker queue, keep-alive
//! connection handling, and graceful drain.
//!
//! ## Backpressure
//!
//! Accepted connections are handed to a bounded [`TaskPool`]
//! (relia-jobs). When the queue is full, the accept loop *sheds* the
//! connection immediately — `503` with `Retry-After`, then close — instead
//! of letting an unbounded backlog grow. The queue depth is the server's
//! entire buffering policy; nothing else queues.
//!
//! ## Deadlines
//!
//! Two clocks bound request arrival. The socket read timeout catches a
//! peer that goes silent mid-request (`408`). It is not enough on its
//! own: the timeout resets on every byte, so a slowloris peer dribbling
//! one byte per interval would hold a worker forever. [`BudgetReader`]
//! closes that hole — a single wall-clock budget per message, started at
//! its first byte, turns the slow dribble into the same `408`. A
//! [`Deadline`] created when the request is fully parsed then bounds
//! evaluation (`504`), checked cooperatively between sweep points and
//! threaded into aging analyses as a [`CancelToken`].
//!
//! Failing to *set* those socket timeouts would mean serving an unbounded
//! peer; such connections are counted (`serve_sockopt_failures`) and
//! dropped instead.
//!
//! ## Graceful drain
//!
//! [`ServerHandle::shutdown`] (or `POST /admin/shutdown`) marks the state
//! as draining, raises the stop flag, and pokes the listener with a local
//! connection so `accept` wakes immediately. The accept loop stops taking
//! work; keep-alive handlers send `Connection: close` on their next
//! response or fall out of their idle read; [`Server::run`] then joins the
//! pool and returns — every accepted request is answered, none are
//! abandoned.
//!
//! [`CancelToken`]: relia_core::CancelToken

use std::io::{self, BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use relia_core::{CancelToken, Deadline};
use relia_jobs::{default_workers, TaskPool};

use crate::http::{read_request, write_response, Limits, ParseError, Response};
use crate::metrics::ServeMetrics;
use crate::service::{handle_fleet_streamed, handle_traced, Action, FleetStream, ServeState};

/// Server knobs, all CLI-settable.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads; 0 means [`default_workers`].
    pub threads: usize,
    /// Bounded connection queue depth; beyond it, load is shed with 503.
    pub queue_depth: usize,
    /// Per-request deadline (socket reads and evaluation both).
    pub request_timeout: Duration,
    /// HTTP parse limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 0,
            queue_depth: 64,
            request_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServeState>,
    config: ServeConfig,
    stop: Arc<AtomicBool>,
}

/// Triggers a graceful drain from another thread (or from a handler).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begins the drain: shed new work, wake the accept loop, let
    /// [`Server::run`] finish in-flight requests and return.
    pub fn shutdown(&self) {
        self.state.begin_drain();
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway local connection.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_millis(200));
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(config: ServeConfig, state: Arc<ServeState>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            state,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can stop this server from anywhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            stop: Arc::clone(&self.stop),
            addr: self.local_addr,
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains and
    /// returns. Every accepted connection is either served or answered
    /// with a shed 503; none are silently dropped.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors; per-connection I/O failures are
    /// absorbed (the peer is gone — nobody to report to).
    pub fn run(self) -> io::Result<()> {
        let threads = if self.config.threads == 0 {
            default_workers()
        } else {
            self.config.threads
        };
        let pool = TaskPool::new(threads, self.config.queue_depth);
        let handle = self.handle();

        for incoming in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                // Transient accept errors (per-connection resets) are not
                // fatal to the listener.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            ServeMetrics::bump(&self.state.metrics.connections);
            // A connection whose read/write timeout cannot be set would be
            // unbounded; count it and drop it rather than serve it.
            if stream
                .set_read_timeout(Some(self.config.request_timeout))
                .is_err()
                || stream
                    .set_write_timeout(Some(self.config.request_timeout))
                    .is_err()
            {
                ServeMetrics::bump(&self.state.metrics.sockopt_failures);
                continue;
            }
            // Nagle only costs latency; failure to disable it is harmless.
            let _ = stream.set_nodelay(true);

            // Keep a dup of the socket so a shed connection can still be
            // answered after the closure (owning the original) is dropped.
            let shed_copy = stream.try_clone().ok();
            let state = Arc::clone(&self.state);
            let limits = self.config.limits;
            let timeout = self.config.request_timeout;
            let conn_handle = handle.clone();
            // Count the connection into the in-flight gauge while it is
            // queued; the handler adopts the slot via a drop guard.
            self.state.overload.conn_enqueued();
            let enqueued = Instant::now();
            let submit = pool.try_submit(move || {
                let _inflight = state.overload.adopt_inflight();
                // Queue wait: accepted → claimed by this worker. The span
                // is retroactive (its start predates any guard).
                let waited = enqueued.elapsed();
                state.obs.queue.record(waited);
                let waited_ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
                let now = state.obs.tracer.now_ns();
                state
                    .obs
                    .tracer
                    .record("queue_wait", 0, now.saturating_sub(waited_ns), waited_ns);
                serve_connection(&state, stream, &limits, timeout, &conn_handle);
            });
            if submit.is_err() {
                self.state.overload.conn_dequeued();
                ServeMetrics::bump(&self.state.metrics.shed);
                self.state.metrics.record_status(503);
                if let Some(mut s) = shed_copy {
                    let mut shed = Response::error(503, "server is at capacity");
                    shed.retry_after = Some(1);
                    shed.close = true;
                    let _ = write_response(&mut s, &shed);
                }
            }
        }
        // Finish everything that was accepted, then return. A handler
        // panic is a bug the drain must not paper over: surface it as the
        // run's error so chaos suites (and operators) see a dirty exit.
        let panicked = pool.panic_counter();
        pool.drain();
        let panics = panicked.load(Ordering::Relaxed);
        if panics > 0 {
            return Err(io::Error::other(format!(
                "{panics} connection handler(s) panicked"
            )));
        }
        Ok(())
    }
}

/// Caps the total wall clock one request may spend *arriving*. The socket
/// read timeout resets on every byte, so by itself it never fires against
/// a peer dribbling one byte per interval (slowloris). This wrapper
/// starts a clock when the first byte of a message is seen; once the
/// budget is spent, further reads fail like a socket timeout, which
/// [`read_request`] maps to `408`. Idle time *between* keep-alive
/// messages is not billed — the clock only runs while a message is in
/// flight.
struct BudgetReader<R> {
    inner: BufReader<R>,
    budget: Duration,
    started: Option<Instant>,
}

impl<R: Read> BudgetReader<R> {
    fn new(inner: R, budget: Duration) -> Self {
        BudgetReader {
            inner: BufReader::new(inner),
            budget,
            started: None,
        }
    }

    /// Resets the clock for the next message on a keep-alive connection.
    fn begin_message(&mut self) {
        self.started = None;
    }

    /// When the current message's first byte arrived (None until then) —
    /// the request span's start and the read phase's zero point.
    fn message_started(&self) -> Option<Instant> {
        self.started
    }
}

impl<R: Read> BufRead for BudgetReader<R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if let Some(started) = self.started {
            if started.elapsed() > self.budget {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request arrival budget exhausted",
                ));
            }
        } else if !self.inner.fill_buf()?.is_empty() {
            // First byte of the message: the budget clock starts.
            self.started = Some(Instant::now());
        }
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

impl<R: Read> Read for BudgetReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

/// Writes `response`, classifying failures into the connection-fault
/// counters. Returns whether the write succeeded.
fn write_counted(state: &ServeState, writer: &mut TcpStream, response: &Response) -> bool {
    match write_response(writer, response) {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                ServeMetrics::bump(&state.metrics.write_timeouts);
            } else {
                ServeMetrics::bump(&state.metrics.conn_io_errors);
            }
            false
        }
    }
}

/// Lingering close after an error response to a request we did not
/// finish reading. Closing immediately would leave the peer's unread
/// bytes in our receive buffer, which turns the close into a TCP reset —
/// destroying the just-written response before the peer reads it.
/// Instead: FIN our side, then discard whatever the peer is still
/// sending until it closes or a short grace period expires.
fn linger_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 1024];
    let mut stream = stream;
    while Instant::now() < deadline {
        match Read::read(&mut stream, &mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// Classifies a request-read failure into the connection-fault counters.
fn count_parse_error(state: &ServeState, error: &ParseError) {
    match error {
        ParseError::Timeout => ServeMetrics::bump(&state.metrics.read_timeouts),
        ParseError::Bad(what) if what.contains("truncated") => {
            ServeMetrics::bump(&state.metrics.conn_truncated);
        }
        ParseError::Io(_) => ServeMetrics::bump(&state.metrics.conn_io_errors),
        _ => {}
    }
}

/// Serves one connection: read → route → respond, keep-alive until the
/// peer closes, an error occurs, or the server starts draining.
fn serve_connection(
    state: &ServeState,
    stream: TcpStream,
    limits: &Limits,
    timeout: Duration,
    server_handle: &ServerHandle,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BudgetReader::new(stream, timeout);
    loop {
        reader.begin_message();
        match read_request(&mut reader, limits) {
            Ok(request) => {
                // Read phase: first byte on the wire → fully parsed. The
                // request's root span is backdated to that first byte so
                // handler phases nest under the true request window.
                let arrival = reader.message_started().unwrap_or_else(Instant::now);
                let read_elapsed = arrival.elapsed();
                state.obs.read.record(read_elapsed);
                let read_ns = u64::try_from(read_elapsed.as_nanos()).unwrap_or(u64::MAX);
                let start_ns = state.obs.tracer.now_ns().saturating_sub(read_ns);
                let root = state.obs.tracer.span_at("request", 0, start_ns);
                state
                    .obs
                    .tracer
                    .record("read", root.id(), start_ns, read_ns);

                let deadline = Deadline::new(CancelToken::new(), Instant::now() + timeout);
                // Wire-level `POST /v1/fleet` streams chunked progress on
                // HTTP/1.1 peers; every pre-stream outcome (shed, drain,
                // parse error) comes back buffered and joins the normal
                // write path below. HTTP/1.0 peers cannot parse chunked
                // framing and stay fully buffered.
                let buffered = if request.http11
                    && request.method == "POST"
                    && request.path() == "/v1/fleet"
                {
                    match handle_fleet_streamed(state, &request, &deadline, &mut writer) {
                        Ok(FleetStream::Streamed { status, close }) => {
                            state.metrics.record_status(status);
                            let dur_ns = root.finish();
                            state.obs.observe_request(
                                &request.method,
                                request.path(),
                                status,
                                dur_ns,
                            );
                            if close || !request.keep_alive() || state.is_draining() {
                                return;
                            }
                            continue;
                        }
                        Ok(FleetStream::Buffered(response)) => Some(response),
                        Err(e) => {
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) {
                                ServeMetrics::bump(&state.metrics.write_timeouts);
                            } else {
                                ServeMetrics::bump(&state.metrics.conn_io_errors);
                            }
                            return;
                        }
                    }
                } else {
                    None
                };
                let (mut response, action) = match buffered {
                    Some(response) => (response, Action::Continue),
                    None => handle_traced(state, &request, &deadline, root.id()),
                };
                let keep = request.keep_alive() && !response.close && !state.is_draining();
                if !keep {
                    response.close = true;
                }
                state.metrics.record_status(response.status);
                let write_span = state.obs.tracer.child("write", root.id());
                let t_write = Instant::now();
                let write_ok = write_counted(state, &mut writer, &response);
                state.obs.write.record(t_write.elapsed());
                drop(write_span);
                let dur_ns = root.finish();
                state
                    .obs
                    .observe_request(&request.method, request.path(), response.status, dur_ns);
                if action == Action::Shutdown {
                    server_handle.shutdown();
                }
                if !write_ok || !keep {
                    return;
                }
            }
            Err(e) => {
                count_parse_error(state, &e);
                if let Some(status) = e.status() {
                    ServeMetrics::bump(&state.metrics.parse_errors);
                    let mut response = Response::error(status, &e.to_string());
                    response.close = true;
                    state.metrics.record_status(status);
                    if write_counted(state, &mut writer, &response) {
                        linger_close(&writer);
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read, Write};
    use std::thread;

    fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, thread::JoinHandle<io::Result<()>>) {
        let state = Arc::new(ServeState::new(config.request_timeout).unwrap());
        let server = Server::bind(config, state).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = thread::spawn(move || server.run());
        (addr, handle, runner)
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        read_one_response(&mut reader)
    }

    fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_health_and_drains_cleanly() {
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        });
        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for _ in 0..3 {
            w.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let (status, _) = read_one_response(&mut reader);
            assert_eq!(status, 200);
        }
        drop(w);
        drop(reader);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_and_oversized_requests_get_their_statuses_over_the_wire() {
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_secs(2),
            limits: Limits {
                max_body: 128,
                ..Limits::default()
            },
            ..ServeConfig::default()
        });
        let (status, _) = roundtrip(addr, "GARBAGE LINE\r\n\r\n");
        assert_eq!(status, 400);
        let big = format!(
            "POST /v1/degrade HTTP/1.1\r\nContent-Length: 500\r\n\r\n{}",
            "x".repeat(500)
        );
        let (status, _) = roundtrip(addr, &big);
        assert_eq!(status, 413);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn stalled_request_times_out_with_408() {
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // Half a request line, then silence.
        stream.write_all(b"POST /v1/degr").unwrap();
        let mut reader = BufReader::new(stream);
        let (status, _) = read_one_response(&mut reader);
        assert_eq!(status, 408);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn slow_header_dribble_exhausts_the_arrival_budget_with_408() {
        // Each byte lands well inside the 250 ms socket timeout, so the
        // per-read clock alone would never fire; the total arrival budget
        // must be what converts the dribble into a 408.
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_millis(250),
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let dribble = b"GET /healthz HTTP/1.1\r\nX-Slow: yes\r\n";
        let started = Instant::now();
        let mut sent_all = true;
        for &byte in dribble {
            if stream.write_all(&[byte]).is_err() {
                // The server may close on us once the budget fires.
                sent_all = false;
                break;
            }
            thread::sleep(Duration::from_millis(40));
            if started.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        let _ = sent_all; // either way, the response must be a 408
        let mut reader = BufReader::new(stream);
        let (status, _) = read_one_response(&mut reader);
        assert_eq!(status, 408);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn mid_body_disconnect_recycles_the_worker_cleanly() {
        // Single worker: if a truncated body wedged or killed it, the
        // follow-up healthz could never be served.
        let state = Arc::new(ServeState::new(Duration::from_secs(2)).unwrap());
        let server = Server::bind(
            ServeConfig {
                threads: 1,
                queue_depth: 8,
                request_timeout: Duration::from_secs(2),
                ..ServeConfig::default()
            },
            Arc::clone(&state),
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = thread::spawn(move || server.run());

        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"POST /v1/degrade HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"tem")
                .unwrap();
            // Half-close so the server sees EOF mid-body immediately; keep
            // the read side open to collect the 400.
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(stream);
            let (status, _) = read_one_response(&mut reader);
            assert_eq!(status, 400);
        }

        // The same (only) worker serves the next connection.
        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");
        let snapshot = state.metrics.snapshot();
        assert_eq!(snapshot.counter("serve_conn_truncated"), Some(1));
        assert_eq!(snapshot.counter("serve_parse_errors"), Some(1));
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn live_requests_populate_latency_histograms_and_trace() {
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        });
        let body = "{\"ras\":[1,9],\"t_standby_k\":330,\"lifetime_s\":1e8,\
             \"p_active\":0.5,\"p_standby\":1}";
        let (status, _) = roundtrip(
            addr,
            &format!(
                "POST /v1/degrade HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(status, 200);

        let (status, metrics) =
            roundtrip(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert!(metrics.starts_with("# TYPE relia_build_info gauge\n"));
        for series in [
            "# TYPE relia_serve_request_seconds histogram\n",
            "# TYPE relia_serve_read_seconds histogram\n",
            "# TYPE relia_serve_queue_seconds histogram\n",
            "# TYPE relia_serve_eval_seconds histogram\n",
            "# TYPE relia_process_uptime_seconds gauge\n",
        ] {
            assert!(metrics.contains(series), "missing {series:?}");
        }
        // The degrade request finished before the scrape arrived, so the
        // read/queue phases have seen at least two events (degrade + this
        // scrape's own connection) and eval exactly one.
        assert!(metrics.contains("relia_serve_eval_seconds_count 1\n"));

        let (status, trace) = roundtrip(
            addr,
            "GET /debug/trace HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        for name in [
            "queue_wait",
            "read",
            "request",
            "coalesce",
            "evaluate",
            "write",
        ] {
            assert!(
                trace.contains(&format!("\"name\":\"{name}\"")),
                "missing span {name:?} in {trace}"
            );
        }
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn fleet_streams_chunked_over_the_wire_and_keeps_alive() {
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        });
        let body = "{\"ras\":[1,9],\"t_standby_k\":330,\"p_active\":0.5,\"p_standby\":1,\
             \"times_s\":[1e8],\"samples\":2000}";
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        w.write_all(
            format!(
                "POST /v1/fleet HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();

        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.contains("200"), "{status_line}");
        let mut chunked = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            assert!(
                !line.to_ascii_lowercase().starts_with("content-length"),
                "streamed response must not carry a content-length"
            );
            if line.eq_ignore_ascii_case("transfer-encoding: chunked") {
                chunked = true;
            }
        }
        assert!(chunked);
        let mut payload = String::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim_end(), 16).unwrap();
            let mut buf = vec![0u8; size + 2];
            reader.read_exact(&mut buf).unwrap();
            if size == 0 {
                break;
            }
            payload.push_str(std::str::from_utf8(&buf[..size]).unwrap());
        }
        assert!(payload.contains("\"chunk\":1"), "{payload}");
        assert!(payload.contains("\"samples\":2000"), "{payload}");
        assert!(payload.contains("\"lifetime_s\":{"), "{payload}");

        // The connection survives the streamed response: keep-alive works.
        w.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, health) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(health, "{\"status\":\"ok\"}");
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let (addr, _handle, runner) = boot(ServeConfig {
            threads: 2,
            queue_depth: 8,
            request_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        });
        let (status, body) = roundtrip(addr, "POST /admin/shutdown HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"draining\"}");
        // run() returns without any external shutdown() call.
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn overload_is_shed_with_503_and_retry_after() {
        // One worker, queue depth 1, and the worker is wedged by a slow
        // request → the 3rd+ connection must be shed.
        let (addr, handle, runner) = boot(ServeConfig {
            threads: 1,
            queue_depth: 1,
            request_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        });
        // Wedge the worker: open a connection and send nothing; the worker
        // blocks in read for up to request_timeout.
        let wedge1 = TcpStream::connect(addr).unwrap();
        let wedge2 = TcpStream::connect(addr).unwrap();
        // Now hammer until a shed 503 appears (the accept loop races the
        // queue, so not every attempt is guaranteed to shed).
        let mut saw_shed = false;
        for _ in 0..20 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream);
            let mut status_line = String::new();
            if reader.read_line(&mut status_line).is_err() {
                continue;
            }
            if status_line.contains("503") {
                let mut rest = String::new();
                while reader.read_line(&mut rest).is_ok() && rest.trim_end() != "" {
                    if rest.to_ascii_lowercase().starts_with("retry-after:") {
                        saw_shed = true;
                    }
                    rest.clear();
                }
                if saw_shed {
                    break;
                }
            }
        }
        assert!(saw_shed, "expected at least one 503 with retry-after");
        drop(wedge1);
        drop(wedge2);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }
}

//! Single-flight request coalescing: when several requests ask for the
//! same key while one computation is already running, they wait for that
//! computation instead of repeating it.
//!
//! The memo cache already deduplicates *completed* work; this layer
//! deduplicates *in-flight* work, which matters exactly when a burst of
//! identical queries arrives on a cold key — without it, N handlers race
//! through the cache miss path and evaluate the model N times.
//!
//! One call becomes the **leader** (it runs `compute`); concurrent calls
//! with the same key become **joiners** (they block on the leader's slot).
//! If a leader unwinds without producing a value, its slot is marked
//! abandoned and every joiner falls back to computing for itself — a panic
//! can cost the optimization, never a hang. Slots are removed from the
//! in-flight table by a drop guard on every exit path, so the table only
//! ever holds keys with a live leader.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

enum SlotState<V> {
    Pending,
    Done(V),
    Abandoned,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

/// A keyed single-flight gate. `V` is cloned to every joiner, so it should
/// be cheap (a number, a small `Result`).
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Slot<V>>>>,
    leads: AtomicU64,
    joins: AtomicU64,
}

impl<K, V> Default for SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// Removes the leader's slot from the in-flight table on every exit path,
/// including unwinding out of `compute`; wakes joiners if no value landed.
struct LeaderGuard<'a, K: Eq + Hash, V> {
    flight: &'a SingleFlight<K, V>,
    key: K,
    slot: Arc<Slot<V>>,
}

impl<K: Eq + Hash, V> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        {
            let mut state = lock_ok(&self.slot.state);
            if matches!(*state, SlotState::Pending) {
                *state = SlotState::Abandoned;
            }
        }
        self.slot.ready.notify_all();
        let mut map = lock_ok(&self.flight.inflight);
        if let Some(current) = map.get(&self.key) {
            if Arc::ptr_eq(current, &self.slot) {
                map.remove(&self.key);
            }
        }
    }
}

/// A poisoned lock here means a *joiner* panicked while holding it, which
/// no code path does; recovery would only hide the bug.
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // relia-lint: allow(unwrap-in-lib)
    m.lock().expect("single-flight lock poisoned")
}

impl<K, V> SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// An empty gate.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            leads: AtomicU64::new(0),
            joins: AtomicU64::new(0),
        }
    }

    /// Calls that ran `compute` themselves.
    pub fn leads(&self) -> u64 {
        self.leads.load(Ordering::Relaxed)
    }

    /// Calls that waited for a concurrent leader instead of computing.
    pub fn joins(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }

    /// Keys with a computation currently in flight.
    pub fn in_flight(&self) -> usize {
        lock_ok(&self.inflight).len()
    }

    /// Produces the value for `key`, running `compute` at most once across
    /// all concurrent callers with the same key.
    pub fn run(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let slot = {
            let mut map = lock_ok(&self.inflight);
            if let Some(existing) = map.get(&key) {
                // Join path: wait outside the map lock.
                let existing = Arc::clone(existing);
                drop(map);
                self.joins.fetch_add(1, Ordering::Relaxed);
                let mut state = lock_ok(&existing.state);
                loop {
                    match &*state {
                        SlotState::Pending => {
                            state = existing
                                .ready
                                .wait(state)
                                // relia-lint: allow(unwrap-in-lib)
                                .expect("single-flight slot lock poisoned");
                        }
                        SlotState::Done(v) => return v.clone(),
                        // The leader died without a value; compute for
                        // ourselves rather than hanging.
                        SlotState::Abandoned => {
                            drop(state);
                            return compute();
                        }
                    }
                }
            }
            let slot = Arc::new(Slot {
                state: Mutex::new(SlotState::Pending),
                ready: Condvar::new(),
            });
            map.insert(key.clone(), Arc::clone(&slot));
            slot
        };

        // Leader path: the guard cleans the table up even if `compute`
        // unwinds.
        self.leads.fetch_add(1, Ordering::Relaxed);
        let guard = LeaderGuard {
            flight: self,
            key,
            slot: Arc::clone(&slot),
        };
        let value = compute();
        {
            let mut state = lock_ok(&slot.state);
            *state = SlotState::Done(value.clone());
        }
        slot.ready.notify_all();
        drop(guard);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn sequential_calls_each_lead() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        assert_eq!(flight.run(1, || 10), 10);
        assert_eq!(flight.run(1, || 20), 20, "nothing in flight: recompute");
        assert_eq!(flight.leads(), 2);
        assert_eq!(flight.joins(), 0);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        const N: usize = 8;
        let flight: Arc<SingleFlight<u32, u64>> = Arc::new(SingleFlight::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(N));
        // Gate the leader's compute open only after every joiner has had a
        // chance to join.
        let release = Arc::new((Mutex::new(false), Condvar::new()));

        let handles: Vec<_> = (0..N)
            .map(|_| {
                let flight = Arc::clone(&flight);
                let calls = Arc::clone(&calls);
                let start = Arc::clone(&start);
                let release = Arc::clone(&release);
                thread::spawn(move || {
                    start.wait();
                    flight.run(7, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        let (lock, cv) = &*release;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                        42u64
                    })
                })
            })
            .collect();

        // Wait until all N-1 joiners are accounted for, then open the gate.
        while flight.joins() < (N as u64 - 1) {
            thread::yield_now();
        }
        {
            let (lock, cv) = &*release;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one computation");
        assert_eq!(flight.leads(), 1);
        assert_eq!(flight.joins(), N as u64 - 1);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flight: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let flight = Arc::clone(&flight);
                thread::spawn(move || flight.run(i, move || i * 2))
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), i as u32 * 2);
        }
        assert_eq!(flight.leads(), 4);
        assert_eq!(flight.joins(), 0);
    }

    #[test]
    fn panicking_leader_does_not_wedge_the_key() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            flight.run(3, || panic!("leader died"));
        }));
        assert!(result.is_err());
        assert_eq!(flight.in_flight(), 0, "guard cleaned the slot up");
        // The key is usable again.
        assert_eq!(flight.run(3, || 9), 9);
    }

    #[test]
    fn joiner_of_a_panicked_leader_falls_back_to_computing() {
        let flight: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));

        let leader = {
            let flight = Arc::clone(&flight);
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    flight.run(5, || {
                        {
                            let (lock, cv) = &*entered;
                            *lock.lock().unwrap() = true;
                            cv.notify_all();
                        }
                        let (lock, cv) = &*release;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                        panic!("leader died mid-compute")
                    })
                }));
            })
        };
        // Wait for the leader to hold the slot.
        {
            let (lock, cv) = &*entered;
            let mut in_slot = lock.lock().unwrap();
            while !*in_slot {
                in_slot = cv.wait(in_slot).unwrap();
            }
        }
        let joiner = {
            let flight = Arc::clone(&flight);
            thread::spawn(move || flight.run(5, || 77))
        };
        // Give the joiner a chance to join, then kill the leader.
        while flight.joins() < 1 {
            thread::yield_now();
        }
        {
            let (lock, cv) = &*release;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        leader.join().unwrap();
        assert_eq!(joiner.join().unwrap(), 77, "joiner computed for itself");
        assert_eq!(flight.in_flight(), 0);
    }
}

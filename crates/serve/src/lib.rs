#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-serve
//!
//! A std-only, offline HTTP/1.1 JSON service answering NBTI degradation
//! queries from the paper's temperature-aware model — the long-lived
//! counterpart of the batch engine in `relia-jobs`.
//!
//! ```text
//! POST /v1/degrade      one stress point  → ΔV_th + delay degradation
//! POST /v1/sweep        small inline grid → canonical-order results
//! GET  /healthz         liveness / drain state
//! GET  /metrics         Prometheus text exposition
//! GET  /debug/trace     most recent request spans (JSON)
//! POST /admin/shutdown  graceful drain
//! ```
//!
//! ## Design
//!
//! * **No dependencies.** HTTP framing ([`http`]) and JSON ([`json`]) are
//!   hand-rolled subsets, hardened with byte caps on every input dimension
//!   and fuzzed with proptest; the whole crate is `TcpListener` + threads.
//! * **Shared memoization.** Queries evaluate through the same sharded
//!   ΔV_th cache ([`relia_jobs::ShardedCache`]) the sweep engine uses, and
//!   the server's cache can be handed to batch sweeps
//!   ([`relia_jobs::SweepOptions::shared_cache`]) — one memo table per
//!   process, identical values either way.
//! * **Single-flight coalescing.** Concurrent identical queries on a cold
//!   key share one model evaluation ([`coalesce`]).
//! * **Backpressure, not backlog.** Connections run on a bounded
//!   [`relia_jobs::TaskPool`]; a full queue sheds load with
//!   `503 + Retry-After` at accept time ([`server`]).
//! * **Deadlines end-to-end.** Socket read timeouts *and* a total
//!   per-message arrival budget map stalled or dribbling peers to `408`;
//!   a per-request [`relia_core::Deadline`] maps overlong evaluation to
//!   `504`, cancelling aging analyses cooperatively.
//! * **Overload control.** Per-endpoint circuit breakers open on
//!   consecutive evaluation failures; brownout mode serves cache-hit-only
//!   answers (miss → fast `503 + Retry-After` with bounded jitter); the
//!   `Healthy → Degraded → Draining` machine behind `/healthz` makes it
//!   all observable ([`breaker`]).
//! * **Chaos-tested.** With feature `fault-inject`, the `fault` module
//!   provides a
//!   seeded socket-level fault injector (slow dribbles, short writes,
//!   mid-body disconnects, truncation, stalled keep-alives) and the
//!   `chaos` example drives a live server through reproducible fault
//!   mixes, asserting the invariants hold.
//! * **Byte parity.** Responses render floats with the shortest
//!   round-trip convention, so a served value is byte-identical to one
//!   computed by a direct library call — the `loadgen` example asserts
//!   exactly that, response by response.
//!
//! ## Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use relia_serve::{ServeConfig, ServeState, Server};
//!
//! let config = ServeConfig::default();
//! let state = Arc::new(ServeState::new(config.request_timeout).unwrap());
//! let server = Server::bind(config, state).unwrap();
//! println!("relia-serve listening on {}", server.local_addr());
//! server.run().unwrap();
//! ```

pub mod breaker;
pub mod coalesce;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod http;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod server;
pub mod service;

pub use breaker::{
    Admission, BreakerState, CircuitBreaker, Endpoint, EvalGate, HealthMachine, HealthState,
    HealthTransition, OverloadConfig, OverloadControl,
};
pub use coalesce::SingleFlight;
#[cfg(feature = "fault-inject")]
pub use fault::{ChaosPlan, ConnFault, FaultStream, Severable};
pub use http::{
    read_request, write_chunk, write_chunked_end, write_chunked_head, write_response, Limits,
    ParseError, Request, Response,
};
pub use json::{fmt_f64, Json, JsonError};
pub use metrics::{render_prometheus, ServeMetrics};
pub use obs::{ServeObs, SlowSink, DEFAULT_TRACE_CAPACITY};
pub use server::{ServeConfig, Server, ServerHandle};
pub use service::{
    degrade_body, handle, handle_fleet_streamed, handle_traced, parse_degrade, parse_sweep, Action,
    CachedEval, DegradeQuery, FleetStream, ModelEval, ServeState, SurfaceTier, MAX_SWEEP_POINTS,
};

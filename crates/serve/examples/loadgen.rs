//! Load generator and end-to-end correctness check for `relia-serve`.
//!
//! Fires a mixed workload (degrade queries over a small grid, inline
//! sweeps, health and metrics probes) at a server and verifies every
//! response **byte for byte** against values computed by direct library
//! calls — the served numbers must be indistinguishable from local ones.
//! At the end it asserts the shared memo cache actually absorbed repeats
//! (hit count > 0) and drains the server gracefully.
//!
//! ```text
//! cargo run --release -p relia-serve --example loadgen            # self-hosted, 10k requests
//! cargo run --release -p relia-serve --example loadgen -- \
//!     --requests 1000 --threads 2 --addr 127.0.0.1:4599          # external server
//! ```
//!
//! Exit code 0 only if every request succeeded, every body matched, and
//! the cache hit rate was non-zero.
//!
//! With `--surface PATH` the self-hosted server mounts a precomputed
//! response surface. Degrade bodies are then checked against the exact
//! oracle within the documented interpolation bound instead of byte for
//! byte, and the run asserts the surface ledger balances: every degrade
//! answer is either a surface hit or an exact fallback, and
//! `clamps <= misses <= fallbacks`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use relia_core::{DelayDegradation, Kelvin, NbtiModel, NbtiParams, Seconds};
use relia_flow::{DeltaVthCache, NoCache};
use relia_jobs::{JobTask, SweepSpec, Workload};
use relia_obs::{fmt_ns, HistSnapshot, LatencyHist};
use relia_serve::{
    degrade_body, fmt_f64, DegradeQuery, ServeConfig, ServeState, Server, ServerHandle,
};

struct Args {
    requests: usize,
    threads: usize,
    addr: Option<String>,
    surface: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 10_000,
        threads: 4,
        addr: None,
        surface: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--requests" => {
                args.requests = value(i)?.parse().map_err(|e| format!("--requests: {e}"))?;
                i += 2;
            }
            "--threads" => {
                args.threads = value(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be >= 1".to_owned());
                }
                i += 2;
            }
            "--addr" => {
                args.addr = Some(value(i)?.to_owned());
                i += 2;
            }
            "--surface" => {
                args.surface = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One expected request/response pair, precomputed from direct library
/// calls before the first byte goes over the wire.
#[derive(Clone)]
struct Expected {
    method: &'static str,
    path: &'static str,
    request_body: String,
    /// Exact response body, or `None` for responses checked by content
    /// (e.g. `/metrics`, which contains live counters).
    response_body: Option<String>,
    /// When set, `delta_vth_v` is compared to the oracle within this
    /// relative bound instead of byte for byte — the surface contract.
    tolerance: Option<f64>,
}

/// The degrade-query grid: small enough that every query repeats many
/// times (exercising the memo cache), varied enough to cover the RAS,
/// temperature and stress-probability axes.
fn degrade_grid() -> Vec<DegradeQuery> {
    let mut grid = Vec::new();
    for ras in [(1.0, 9.0), (2.0, 8.0), (5.0, 5.0)] {
        for t_standby in [320.0, 340.0, 360.0, 380.0] {
            // 0.5/1.0 is the pair surface artifacts carry by default, so
            // a `--surface` run exercises hits and fallbacks alike.
            for p_active in [0.3, 0.5, 0.6] {
                grid.push(DegradeQuery {
                    ras,
                    t_standby_k: Kelvin(t_standby),
                    lifetime_s: 1.0e8,
                    p_active,
                    p_standby: 1.0,
                });
            }
        }
    }
    grid
}

/// Computes the exact expected `/v1/degrade` body with no server and no
/// cache in the loop.
fn expected_degrade(query: &DegradeQuery) -> Result<String, String> {
    let model = NbtiModel::ptm90().map_err(|e| e.to_string())?;
    let params = NbtiParams::ptm90().map_err(|e| e.to_string())?;
    let key = query.stress_key()?;
    let dvth = NoCache.delta_vth(key, &model).map_err(|e| e.to_string())?;
    let frac = DelayDegradation::new(&params)
        .linear(dvth)
        .map_err(|e| e.to_string())?;
    Ok(degrade_body(dvth, frac))
}

/// Builds the inline-sweep request plus its exact expected response, by
/// walking the same canonical point order the server uses.
fn expected_sweep() -> Result<Expected, String> {
    let spec = SweepSpec {
        workload: Workload::ModelDeltaVth {
            p_active: 0.5,
            p_standby: 1.0,
        },
        ras: vec![(1.0, 9.0), (5.0, 5.0)],
        t_standby: vec![Kelvin(330.0), Kelvin(360.0)],
        lifetimes: vec![Seconds(1.0e8)],
    };
    let model = NbtiModel::ptm90().map_err(|e| e.to_string())?;
    let mut rendered = Vec::new();
    for point in spec.points() {
        let JobTask::Model {
            p_active,
            p_standby,
        } = point.task
        else {
            return Err("model sweep produced a non-model task".to_owned());
        };
        let query = DegradeQuery {
            ras: point.ras,
            t_standby_k: point.t_standby,
            lifetime_s: point.lifetime.0,
            p_active,
            p_standby,
        };
        let dvth = NoCache
            .delta_vth(query.stress_key()?, &model)
            .map_err(|e| e.to_string())?;
        rendered.push(format!(
            "{{\"ras\":[{},{}],\"t_standby_k\":{},\"lifetime_s\":{},\"delta_vth_v\":{}}}",
            fmt_f64(point.ras.0),
            fmt_f64(point.ras.1),
            fmt_f64(point.t_standby.0),
            fmt_f64(point.lifetime.0),
            fmt_f64(dvth)
        ));
    }
    Ok(Expected {
        method: "POST",
        path: "/v1/sweep",
        tolerance: None,
        request_body: "{\"workload\":{\"kind\":\"model\",\"p_active\":0.5,\"p_standby\":1},\
                       \"ras\":[[1,9],[5,5]],\"t_standby_k\":[330,360],\"lifetime_s\":[1e8]}"
            .to_owned(),
        response_body: Some(format!(
            "{{\"count\":{},\"points\":[{}]}}",
            rendered.len(),
            rendered.join(",")
        )),
    })
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, Vec<u8>), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok((status, body))
}

/// One request over an existing keep-alive connection; returns an error
/// string describing any status or byte mismatch.
fn check_one(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    expected: &Expected,
) -> Result<(), String> {
    write_request(
        stream,
        expected.method,
        expected.path,
        expected.request_body.as_bytes(),
    )
    .map_err(|e| format!("{} {}: write: {e}", expected.method, expected.path))?;
    let (status, body) =
        read_response(reader).map_err(|e| format!("{} {}: {e}", expected.method, expected.path))?;
    if status != 200 {
        return Err(format!(
            "{} {}: status {status}: {}",
            expected.method,
            expected.path,
            String::from_utf8_lossy(&body)
        ));
    }
    if let Some(want) = &expected.response_body {
        if let Some(bound) = expected.tolerance {
            let got = String::from_utf8_lossy(&body);
            let approx = scrape_delta_vth(&got)
                .ok_or_else(|| format!("{}: no delta_vth_v in {got}", expected.path))?;
            let exact = scrape_delta_vth(want)
                .ok_or_else(|| format!("{}: no delta_vth_v in oracle {want}", expected.path))?;
            let err = relia_surface::rel_error(approx, exact);
            if err > bound {
                return Err(format!(
                    "{} {}: delta_vth_v off by {err:e} (> bound {bound:e}):\
                     \n  want {want}\n  got  {got}",
                    expected.method, expected.path
                ));
            }
        } else if body != want.as_bytes() {
            return Err(format!(
                "{} {}: byte mismatch:\n  want {}\n  got  {}",
                expected.method,
                expected.path,
                want,
                String::from_utf8_lossy(&body)
            ));
        }
    } else if body.is_empty() {
        return Err(format!("{} {}: empty body", expected.method, expected.path));
    }
    Ok(())
}

/// Scrapes one counter value out of a Prometheus text exposition.
fn scrape_counter(metrics_text: &str, name: &str) -> Option<u64> {
    metrics_text.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// Pulls the `delta_vth_v` number out of a degrade response body.
fn scrape_delta_vth(body: &str) -> Option<f64> {
    let rest = body.split_once("\"delta_vth_v\":")?.1;
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Precompute every expected byte sequence before opening a socket.
    // With a surface mounted, degrade answers may be interpolated, so the
    // byte oracle relaxes to the documented relative-error bound.
    let tolerance = args
        .surface
        .as_ref()
        .map(|_| relia_surface::DOCUMENTED_ERROR_BOUND);
    let grid = degrade_grid();
    let degrade_expected: Vec<Expected> = grid
        .iter()
        .map(|q| {
            Ok(Expected {
                method: "POST",
                path: "/v1/degrade",
                request_body: q.to_body(),
                response_body: Some(expected_degrade(q)?),
                tolerance,
            })
        })
        .collect::<Result<_, String>>()?;
    let sweep_expected = expected_sweep()?;
    let health_expected = Expected {
        method: "GET",
        path: "/healthz",
        request_body: String::new(),
        response_body: Some("{\"status\":\"ok\"}".to_owned()),
        tolerance: None,
    };
    let metrics_expected = Expected {
        method: "GET",
        path: "/metrics",
        request_body: String::new(),
        response_body: None,
        tolerance: None,
    };

    // Self-host unless pointed at an external server.
    let mut hosted: Option<(ServerHandle, thread::JoinHandle<_>)> = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: args.threads + 2,
                queue_depth: 64,
                request_timeout: Duration::from_secs(30),
                ..ServeConfig::default()
            };
            let mut state = ServeState::new(config.request_timeout)?;
            if let Some(path) = &args.surface {
                let surface = relia_surface::Surface::load(path)
                    .map_err(|e| format!("cannot mount surface {}: {e}", path.display()))?;
                state = state.with_surface(surface);
            }
            let state = Arc::new(state);
            let server = Server::bind(config, state).map_err(|e| e.to_string())?;
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let join = thread::spawn(move || server.run());
            hosted = Some((handle, join));
            addr
        }
    };

    let failures = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let degrade_ok = Arc::new(AtomicU64::new(0));
    let per_thread = args.requests.div_ceil(args.threads);

    let workers: Vec<_> = (0..args.threads)
        .map(|t| {
            let addr = addr.clone();
            let degrade_expected = degrade_expected.clone();
            let sweep_expected = sweep_expected.clone();
            let health_expected = health_expected.clone();
            let metrics_expected = metrics_expected.clone();
            let failures = Arc::clone(&failures);
            let completed = Arc::clone(&completed);
            let degrade_ok = Arc::clone(&degrade_ok);
            thread::spawn(move || {
                // Client-side latency, per thread; snapshots merge at the
                // end (the merge is order-independent).
                let hist = LatencyHist::new();
                let stream = match TcpStream::connect(&addr) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("thread {t}: connect {addr}: {e}");
                        failures.fetch_add(per_thread as u64, Ordering::Relaxed);
                        return hist.snapshot();
                    }
                };
                stream.set_nodelay(true).ok();
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("thread {t}: clone: {e}");
                        failures.fetch_add(per_thread as u64, Ordering::Relaxed);
                        return hist.snapshot();
                    }
                });
                let mut stream = stream;
                for i in 0..per_thread {
                    let expected = if i % 97 == 11 {
                        &sweep_expected
                    } else if i % 31 == 7 {
                        &health_expected
                    } else if i % 53 == 5 {
                        &metrics_expected
                    } else {
                        &degrade_expected[(i * 7 + t) % degrade_expected.len()]
                    };
                    let started = Instant::now();
                    match check_one(&mut stream, &mut reader, expected) {
                        Ok(()) => {
                            hist.record(started.elapsed());
                            completed.fetch_add(1, Ordering::Relaxed);
                            if expected.path == "/v1/degrade" {
                                degrade_ok.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("thread {t} request {i}: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                hist.snapshot()
            })
        })
        .collect();
    let mut latency = HistSnapshot::default();
    for worker in workers {
        latency.merge(&worker.join().map_err(|_| "client thread panicked")?);
    }

    // Scrape the cache counters, then drain the server gracefully.
    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut stream = stream;
    write_request(&mut stream, "GET", "/metrics", b"").map_err(|e| e.to_string())?;
    let (status, metrics_body) = read_response(&mut reader)?;
    if status != 200 {
        return Err(format!("final /metrics returned {status}"));
    }
    let metrics_text = String::from_utf8_lossy(&metrics_body);
    let hits = scrape_counter(&metrics_text, "relia_cache_hits ").unwrap_or(0);
    let misses = scrape_counter(&metrics_text, "relia_cache_misses ").unwrap_or(0);
    let leads = scrape_counter(&metrics_text, "relia_serve_coalesce_leads ").unwrap_or(0);
    let joins = scrape_counter(&metrics_text, "relia_serve_coalesce_joins ").unwrap_or(0);
    let surface_active = scrape_counter(&metrics_text, "relia_surface_active ").unwrap_or(0);
    let surface_hits = scrape_counter(&metrics_text, "relia_surface_hits ").unwrap_or(0);
    let surface_misses = scrape_counter(&metrics_text, "relia_surface_misses ").unwrap_or(0);
    let surface_fallbacks = scrape_counter(&metrics_text, "relia_surface_fallbacks ").unwrap_or(0);
    let surface_clamps = scrape_counter(&metrics_text, "relia_surface_clamps ").unwrap_or(0);

    write_request(&mut stream, "POST", "/admin/shutdown", b"").map_err(|e| e.to_string())?;
    let (status, _) = read_response(&mut reader)?;
    if status != 200 {
        return Err(format!("/admin/shutdown returned {status}"));
    }
    if let Some((_handle, join)) = hosted {
        join.join()
            .map_err(|_| "server thread panicked")?
            .map_err(|e| format!("server run: {e}"))?;
    }

    let completed = completed.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    println!(
        "loadgen: {completed} ok, {failures} failed; cache {hits} hits / {misses} misses; \
         coalesce {leads} leads / {joins} joins"
    );
    if latency.count > 0 {
        println!(
            "loadgen: client latency p50 {} / p90 {} / p99 {} over {} requests",
            fmt_ns(latency.p50()),
            fmt_ns(latency.p90()),
            fmt_ns(latency.p99()),
            latency.count
        );
    }
    if failures > 0 {
        return Err(format!("{failures} requests failed or mismatched"));
    }
    if hits == 0 {
        return Err("cache hit count is zero — memoization is not engaging".to_owned());
    }
    // The surface ledger must balance in every configuration: a declined
    // lookup is a fallback, and a clamp is one kind of declined lookup.
    if !(surface_clamps <= surface_misses && surface_misses <= surface_fallbacks) {
        return Err(format!(
            "surface ledger out of order: clamps {surface_clamps} <= misses \
             {surface_misses} <= fallbacks {surface_fallbacks} violated"
        ));
    }
    if surface_active == 1 {
        println!(
            "loadgen: surface {surface_hits} hits / {surface_misses} misses / \
             {surface_fallbacks} fallbacks / {surface_clamps} clamps"
        );
        if args.surface.is_some() && args.addr.is_none() {
            // Self-hosted with a known artifact: every degrade answer is
            // accounted for as a hit or an exact fallback — no request
            // leaves the ledger.
            let degrade_ok = degrade_ok.load(Ordering::Relaxed);
            if surface_hits + surface_fallbacks != degrade_ok {
                return Err(format!(
                    "surface ledger does not balance: {surface_hits} hits + \
                     {surface_fallbacks} fallbacks != {degrade_ok} degrade answers"
                ));
            }
            if surface_hits == 0 {
                return Err("surface hit count is zero — the tier is not engaging".to_owned());
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

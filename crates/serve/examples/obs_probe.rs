//! End-to-end probe for the observability surface of `relia-serve`.
//!
//! Boots a server (or targets an external one via `--addr`), fires a few
//! degrade requests, then validates the two observability endpoints:
//!
//! * `GET /metrics` — `relia_build_info` and `process_uptime_seconds`
//!   present; every `relia_serve_*_seconds` histogram well-formed:
//!   cumulative `_bucket{le=…}` counts non-decreasing with strictly
//!   increasing edges, the `+Inf` bucket equal to `_count`, and the
//!   hot-path phases (`eval`, `coalesce`, `serialize`) actually populated.
//! * `GET /debug/trace` — parses as JSON of the pinned shape
//!   (`{"dropped":N,"spans":[…]}`, each span carrying exactly
//!   `dur_ns`/`id`/`name`/`parent`/`start_ns`), with the request-lifecycle
//!   span names present and every child's id above its parent's.
//!
//! ```text
//! cargo run --release -p relia-serve --example obs_probe                  # self-hosted
//! cargo run --release -p relia-serve --example obs_probe -- --addr HOST   # external server
//! ```
//!
//! Exit code 0 only if every shape check passes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use relia_core::Kelvin;
use relia_serve::{json, DegradeQuery, ServeConfig, ServeState, Server};

fn parse_addr() -> Result<Option<String>, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [] => Ok(None),
        [flag, addr] if flag == "--addr" => Ok(Some(addr.clone())),
        other => Err(format!(
            "usage: obs_probe [--addr HOST:PORT], got {other:?}"
        )),
    }
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, Vec<u8>), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok((status, body))
}

/// Validates one Prometheus histogram family inside the exposition text:
/// strictly increasing `le` edges, non-decreasing cumulative counts, a
/// final `+Inf` bucket, and `_count` consistent with it.
fn check_histogram(metrics: &str, name: &str) -> Result<u64, String> {
    let bucket_prefix = format!("relia_{name}_bucket{{le=\"");
    let mut last_edge = f64::NEG_INFINITY;
    let mut last_count = 0u64;
    let mut inf_count: Option<u64> = None;
    let mut buckets = 0usize;
    for line in metrics.lines() {
        let Some(rest) = line.strip_prefix(&bucket_prefix) else {
            continue;
        };
        let (edge_str, count_str) = rest
            .split_once("\"}")
            .ok_or_else(|| format!("{name}: malformed bucket line {line:?}"))?;
        let count: u64 = count_str
            .trim()
            .parse()
            .map_err(|e| format!("{name}: bucket count {count_str:?}: {e}"))?;
        if edge_str == "+Inf" {
            inf_count = Some(count);
        } else {
            let edge: f64 = edge_str
                .parse()
                .map_err(|e| format!("{name}: bucket edge {edge_str:?}: {e}"))?;
            if edge <= last_edge {
                return Err(format!("{name}: bucket edges not increasing at {edge}"));
            }
            last_edge = edge;
        }
        if count < last_count {
            return Err(format!(
                "{name}: cumulative counts decrease at le={edge_str} ({count} < {last_count})"
            ));
        }
        last_count = count;
        buckets += 1;
    }
    if buckets == 0 {
        return Err(format!("{name}: no bucket lines on /metrics"));
    }
    let inf = inf_count.ok_or_else(|| format!("{name}: missing +Inf bucket"))?;
    let count_line = format!("relia_{name}_count ");
    let total: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix(&count_line))
        .ok_or_else(|| format!("{name}: missing _count line"))?
        .trim()
        .parse()
        .map_err(|e| format!("{name}: _count: {e}"))?;
    if inf != total {
        return Err(format!("{name}: +Inf bucket {inf} != _count {total}"));
    }
    if !metrics.contains(&format!("relia_{name}_sum ")) {
        return Err(format!("{name}: missing _sum line"));
    }
    Ok(total)
}

/// Validates the `/debug/trace` body: pinned key set per span, ids above
/// parents, and the expected request-lifecycle names present.
fn check_trace(body: &[u8]) -> Result<usize, String> {
    let parsed = json::parse(body).map_err(|e| format!("trace body: {e}"))?;
    parsed
        .get("dropped")
        .and_then(json::Json::as_f64)
        .ok_or("trace: missing numeric \"dropped\"")?;
    let spans = parsed
        .get("spans")
        .and_then(json::Json::as_arr)
        .ok_or("trace: missing \"spans\" array")?;
    let mut names = Vec::new();
    for span in spans {
        let json::Json::Obj(members) = span else {
            return Err("trace: span is not an object".to_owned());
        };
        let mut keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        if keys != ["dur_ns", "id", "name", "parent", "start_ns"] {
            return Err(format!("trace: unexpected span keys {keys:?}"));
        }
        let id = span.get("id").and_then(json::Json::as_f64).unwrap_or(-1.0);
        let parent = span
            .get("parent")
            .and_then(json::Json::as_f64)
            .unwrap_or(-1.0);
        if id < 1.0 || parent < 0.0 || parent >= id {
            return Err(format!("trace: bad id/parent pair ({id}, {parent})"));
        }
        names.push(
            span.get("name")
                .and_then(json::Json::as_str)
                .ok_or("trace: span missing name")?
                .to_owned(),
        );
    }
    for want in ["request", "read", "coalesce", "evaluate", "serialize"] {
        if !names.iter().any(|n| n == want) {
            return Err(format!("trace: no {want:?} span in {names:?}"));
        }
    }
    Ok(spans.len())
}

fn run() -> Result<(), String> {
    let external = parse_addr()?;

    let mut hosted = None;
    let addr = match &external {
        Some(addr) => addr.clone(),
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                request_timeout: Duration::from_secs(30),
                ..ServeConfig::default()
            };
            let state = Arc::new(ServeState::new(config.request_timeout)?);
            let server = Server::bind(config, state).map_err(|e| e.to_string())?;
            let addr = server.local_addr().to_string();
            hosted = Some(thread::spawn(move || server.run()));
            addr
        }
    };

    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut stream = stream;

    // A few degrade requests so the phase histograms and span ring have
    // real traffic (repeats also exercise the coalesce/cache path).
    let query = DegradeQuery {
        ras: (2.0, 8.0),
        t_standby_k: Kelvin(350.0),
        lifetime_s: 1.0e8,
        p_active: 0.5,
        p_standby: 1.0,
    };
    let degrades = 3u64;
    for _ in 0..degrades {
        write_request(
            &mut stream,
            "POST",
            "/v1/degrade",
            query.to_body().as_bytes(),
        )
        .map_err(|e| format!("degrade write: {e}"))?;
        let (status, body) = read_response(&mut reader)?;
        if status != 200 {
            return Err(format!(
                "degrade returned {status}: {}",
                String::from_utf8_lossy(&body)
            ));
        }
    }

    write_request(&mut stream, "GET", "/metrics", b"").map_err(|e| e.to_string())?;
    let (status, body) = read_response(&mut reader)?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    let metrics = String::from_utf8_lossy(&body);
    if !metrics.contains("relia_build_info{version=\"") {
        return Err("metrics: missing relia_build_info line".to_owned());
    }
    if !metrics.contains("relia_process_uptime_seconds ") {
        return Err("metrics: missing process_uptime_seconds gauge".to_owned());
    }
    let phases = [
        "serve_request_seconds",
        "serve_read_seconds",
        "serve_queue_seconds",
        "serve_coalesce_seconds",
        "serve_eval_seconds",
        "serve_serialize_seconds",
        "serve_write_seconds",
    ];
    let mut counts = Vec::new();
    for phase in phases {
        counts.push((phase, check_histogram(&metrics, phase)?));
    }
    // The in-handler phases must have seen every degrade request; eval
    // may legitimately be lower when the memo cache absorbed repeats, but
    // never zero after a cold start.
    for (phase, floor) in [
        ("serve_coalesce_seconds", degrades),
        ("serve_serialize_seconds", degrades),
        ("serve_eval_seconds", 1),
    ] {
        let &(_, got) = counts
            .iter()
            .find(|(name, _)| *name == phase)
            .ok_or("phase table out of sync")?;
        if got < floor {
            return Err(format!("{phase}: count {got} < expected floor {floor}"));
        }
    }

    write_request(&mut stream, "GET", "/debug/trace", b"").map_err(|e| e.to_string())?;
    let (status, trace_body) = read_response(&mut reader)?;
    if status != 200 {
        return Err(format!("/debug/trace returned {status}"));
    }
    let span_count = check_trace(&trace_body)?;

    write_request(&mut stream, "POST", "/admin/shutdown", b"").map_err(|e| e.to_string())?;
    let (status, _) = read_response(&mut reader)?;
    if status != 200 {
        return Err(format!("/admin/shutdown returned {status}"));
    }
    if let Some(join) = hosted {
        join.join()
            .map_err(|_| "server thread panicked")?
            .map_err(|e| format!("server run: {e}"))?;
    }

    let summary: Vec<String> = counts
        .iter()
        .map(|(name, count)| format!("{name}={count}"))
        .collect();
    println!(
        "obs_probe: {} histograms well-formed ({}); trace held {span_count} span(s)",
        phases.len(),
        summary.join(" ")
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_probe: {e}");
            ExitCode::FAILURE
        }
    }
}

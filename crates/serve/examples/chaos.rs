//! Chaos harness for `relia-serve` (requires feature `fault-inject`).
//!
//! Boots a server, then drives it through a seeded mix of socket-level
//! faults — slow dribbles, partial writes, mid-message disconnects,
//! truncations, stalled keep-alive peers — and asserts the hardening
//! invariants hold:
//!
//! * every connection terminates (nothing wedges a worker forever);
//! * each fault gets its contracted answer (control traffic `200`,
//!   slowloris `408`, truncation `400`);
//! * the metrics ledger balances: every response traces back to a parsed
//!   request, a shed connection, or an answered parse error;
//! * `/healthz` is green afterwards and the graceful drain returns
//!   cleanly — a handler panic anywhere turns into a dirty exit.
//!
//! The fault schedule is a pure function of `--seed`, so a failing run
//! is replayed exactly by rerunning with the same seed.
//!
//! ```text
//! cargo run -p relia-serve --features fault-inject --example chaos
//! cargo run -p relia-serve --features fault-inject --example chaos -- \
//!     --seed 1234 --conns 64 --addr 127.0.0.1:4599
//! ```
//!
//! With `--addr`, faults are thrown at an external server instead; the
//! ledger/drain invariants (which need exclusive traffic) are skipped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use relia_core::Kelvin;
use relia_serve::{
    ChaosPlan, ConnFault, DegradeQuery, FaultStream, ServeConfig, ServeState, Server,
};

/// The server-side arrival budget the fault mix is calibrated against: a
/// 1-byte-per-30 ms dribble of a ~150-byte request must blow it, a
/// 16-bytes-per-1 ms dribble must fit inside it.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(1);

struct Args {
    seed: u64,
    conns: u64,
    threads: usize,
    addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        conns: 48,
        threads: 4,
        addr: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--conns" => {
                args.conns = value(i)?.parse().map_err(|e| format!("--conns: {e}"))?;
                i += 2;
            }
            "--threads" => {
                args.threads = value(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be >= 1".to_owned());
                }
                i += 2;
            }
            "--addr" => {
                args.addr = Some(value(i)?.to_owned());
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, Vec<u8>), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading status line: {e}"))?;
    if status_line.is_empty() {
        return Err("eof before status line".to_owned());
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok((status, body))
}

/// Drives one connection through its scheduled fault. `Ok(())` means the
/// fault's contract held; `Err` describes the violation.
fn run_conn(addr: &str, fault: ConnFault, request: &[u8]) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    // Generous client-side timeout: its only job is turning a stuck
    // connection (an invariant violation) into an error instead of a hang.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let reader_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(reader_half);
    let mut faulted = FaultStream::new(stream, fault);

    let write_result = faulted.write_all(request).and_then(|()| faulted.flush());
    match fault {
        ConnFault::Disconnect { .. } => {
            // The peer reset itself mid-message; any outcome short of a
            // hang is acceptable. The server-side ledger is checked later.
            Ok(())
        }
        ConnFault::Dribble { chunk: 1, .. } => {
            // Slowloris. The server must cut us off: either the 408
            // arrives, or the lingering close ran out of grace and reset
            // the connection under our still-dribbling writes.
            match read_response(&mut reader) {
                Ok((408, _)) => Ok(()),
                Ok((status, _)) => Err(format!("slow dribble answered {status}, want 408")),
                Err(_) if write_result.is_err() => Ok(()),
                Err(e) => Err(format!("slow dribble: {e}")),
            }
        }
        ConnFault::Truncate { .. } => {
            write_result.map_err(|e| format!("truncated write failed: {e}"))?;
            let (status, _) = read_response(&mut reader)?;
            if status == 400 {
                Ok(())
            } else {
                Err(format!("truncation answered {status}, want 400"))
            }
        }
        ConnFault::Clean | ConnFault::Dribble { .. } | ConnFault::ShortWrite { .. } => {
            write_result.map_err(|e| format!("write failed: {e}"))?;
            let (status, _) = read_response(&mut reader)?;
            if status == 200 {
                Ok(())
            } else {
                Err(format!("answered {status}, want 200"))
            }
        }
        ConnFault::StallKeepAlive { .. } => {
            write_result.map_err(|e| format!("write failed: {e}"))?;
            let (status, _) = read_response(&mut reader)?;
            if status != 200 {
                return Err(format!("answered {status}, want 200"));
            }
            // Now go silent on the keep-alive connection, then close.
            faulted.finish();
            Ok(())
        }
    }
}

fn scrape_counter(metrics_text: &str, name: &str) -> Option<u64> {
    metrics_text.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// One plain request/response exchange (no faults).
fn exchange(addr: &str, method: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let head =
        format!("{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: 0\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let (status, body) = read_response(&mut reader)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// The metrics-ledger invariant: every recorded response traces back to a
/// parsed request (minus the in-flight scrape itself), a shed connection,
/// or an answered parse error. Polls briefly so connections still being
/// torn down can finish counting.
fn assert_ledger_balances(addr: &str) -> Result<(), String> {
    let mut last = String::new();
    for _ in 0..40 {
        let (status, body) = exchange(addr, "GET", "/metrics")?;
        if status != 200 {
            return Err(format!("/metrics answered {status}"));
        }
        let c = |name: &str| scrape_counter(&body, name).unwrap_or(0);
        let responses = c("relia_serve_responses_ok ")
            + c("relia_serve_responses_client_error ")
            + c("relia_serve_responses_server_error ");
        let expected = c("relia_serve_requests ") - 1
            + c("relia_serve_shed ")
            + c("relia_serve_parse_errors ");
        if responses == expected {
            return Ok(());
        }
        last = format!("{responses} responses, expected {expected}");
        thread::sleep(Duration::from_millis(50));
    }
    Err(format!("metrics ledger never balanced: {last}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let plan = ChaosPlan::new(args.seed);

    let mut hosted = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: args.threads,
                queue_depth: 64,
                request_timeout: REQUEST_TIMEOUT,
                ..ServeConfig::default()
            };
            let state = Arc::new(ServeState::new(config.request_timeout)?);
            let server = Server::bind(config, state).map_err(|e| e.to_string())?;
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let join = thread::spawn(move || server.run());
            hosted = Some((handle, join));
            addr
        }
    };

    // ~150 bytes on the wire: long enough that every Truncate/Disconnect
    // budget (< 40 bytes) cuts it short, short enough that the fast
    // dribble finishes far inside the arrival budget.
    let body = DegradeQuery {
        ras: (2.0, 8.0),
        t_standby_k: Kelvin(350.0),
        lifetime_s: 1.0e8,
        p_active: 0.5,
        p_standby: 1.0,
    }
    .to_body();
    let request = format!(
        "POST /v1/degrade HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes();

    // A watchdog turns a stuck connection into a dirty exit instead of a
    // hang — "every connection terminates" is the invariant under test.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            thread::sleep(Duration::from_secs(120));
            if !done.load(Ordering::Acquire) {
                eprintln!("chaos: watchdog fired — a connection is stuck");
                std::process::exit(3);
            }
        });
    }

    let next = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let mut slow_dribbles = 0u64;
    let mut truncates = 0u64;
    for i in 0..args.conns {
        match plan.fault_for(i) {
            ConnFault::Dribble { chunk: 1, .. } => slow_dribbles += 1,
            ConnFault::Truncate { .. } => truncates += 1,
            _ => {}
        }
    }

    let workers: Vec<_> = (0..args.threads)
        .map(|_| {
            let addr = addr.clone();
            let request = request.clone();
            let next = Arc::clone(&next);
            let failures = Arc::clone(&failures);
            let conns = args.conns;
            thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= conns {
                    return;
                }
                let fault = plan.fault_for(i);
                if let Err(e) = run_conn(&addr, fault, &request) {
                    eprintln!("chaos: conn {i} ({fault:?}): {e}");
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().map_err(|_| "client thread panicked")?;
    }
    done.store(true, Ordering::Release);

    let failures = failures.load(Ordering::Relaxed);
    if failures > 0 {
        return Err(format!(
            "{failures} connections violated their fault contract"
        ));
    }

    // Post-chaos invariants. The ledger and counter pins need exclusive
    // traffic, so they only run against a self-hosted server.
    let (status, health) = exchange(&addr, "GET", "/healthz")?;
    if status != 200 || health != "{\"status\":\"ok\"}" {
        return Err(format!("post-chaos /healthz: {status} {health}"));
    }
    if hosted.is_some() {
        assert_ledger_balances(&addr)?;
        let (_, metrics) = exchange(&addr, "GET", "/metrics")?;
        let c = |name: &str| scrape_counter(&metrics, name).unwrap_or(0);
        let read_timeouts = c("relia_serve_read_timeouts ");
        if read_timeouts != slow_dribbles {
            return Err(format!(
                "{read_timeouts} read timeouts counted, want exactly {slow_dribbles} \
                 (one per scheduled slowloris)"
            ));
        }
        if c("relia_serve_conn_truncated ") < truncates {
            return Err(format!(
                "{} truncated connections counted, want >= {truncates}",
                c("relia_serve_conn_truncated ")
            ));
        }
    }

    // Graceful drain must still work, and the run must report no handler
    // panics (a dirty drain is how the server surfaces them).
    if let Some((_handle, join)) = hosted {
        let (status, _) = exchange(&addr, "POST", "/admin/shutdown")?;
        if status != 200 {
            return Err(format!("/admin/shutdown answered {status}"));
        }
        join.join()
            .map_err(|_| "server thread panicked")?
            .map_err(|e| format!("server run: {e}"))?;
    }

    println!(
        "chaos: seed {} — {} connections ({slow_dribbles} slowloris, {truncates} truncations) \
         survived; ledger balanced; drain clean",
        plan.seed(),
        args.conns
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("chaos: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Offline stand-in for the `criterion` crate.
//!
//! The public registry is unreachable from this build environment, so the
//! workspace vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up, then
//! timed over `sample_size` samples of auto-scaled iteration batches; the
//! median per-iteration time is reported on stdout. No statistics files,
//! HTML reports, or command-line filtering.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The bench harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group with its own sample-size override.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.prefix, name),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Drives the timed closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the batch size until one batch takes >= 2 ms, so that
    // per-sample timing noise stays small for fast benchmarks.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter: Vec<f64> = (0..sample_size.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    // The offline criterion stand-in reports to stdout like the real one.
    // relia-lint: allow(print-in-lib)
    println!(
        "{name:<40} time: [{} {} {}]  ({iters} iters/sample, {} samples)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("us"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with('s'));
    }
}

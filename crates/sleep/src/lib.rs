#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-sleep
//!
//! Sleep-transistor insertion for standby leakage reduction, with
//! NBTI-aware PMOS sleep-transistor sizing (the paper's Section 4.4).
//!
//! * [`sizing`] — sleep-transistor (ST) sizing from the allowed delay
//!   penalty (eqs. 25–30) and the NBTI-aware size margin (eq. 31, the
//!   paper's Figs. 8–9): a PMOS header is gate-low whenever the circuit is
//!   *active*, so it ages exactly when the logic works, and its rising
//!   threshold squeezes the virtual rail.
//! * [`insertion`] — footer/header/footer+header topologies (Fig. 10), the
//!   standby states they impose on the gated logic, and the aged-delay
//!   trajectory of a gated circuit (Fig. 11).
//! * [`cluster`] — block-based (BBSTI) gate clustering with per-block ST
//!   sizing, and fine-grain (FGSTI) per-gate sizing exploiting slack.
//!
//! ```
//! use relia_sleep::sizing::StSizing;
//!
//! let s = StSizing::paper_defaults(0.05, 0.30).unwrap();
//! // 30 mV of ST aging costs a few percent of ST width (Fig. 9 range).
//! let rel = s.nbti_size_margin(0.030).unwrap();
//! assert!(rel > 0.01 && rel < 0.08);
//! ```

pub mod cluster;
pub mod insertion;
pub mod sizing;

pub use cluster::{bbsti_blocks, fgsti_sizes, Block};
pub use insertion::{GatedDelayPoint, SleepTransistorKind, StInsertion};
pub use sizing::StSizing;

//! Sleep-transistor topologies and the aged delay of a gated circuit
//! (the paper's Fig. 10 and Fig. 11).

use relia_core::Seconds;
use relia_flow::{AgingAnalysis, FlowError, StandbyPolicy};

use crate::sizing::StSizing;

/// Where the sleep transistor sits (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SleepTransistorKind {
    /// NMOS footer between the logic and ground. Internal nodes float up
    /// toward `V_dd` in standby — no PMOS stress, and the footer itself is
    /// NBTI-immune.
    Footer,
    /// PMOS header between `V_dd` and the logic. Internal nodes discharge
    /// toward ground in standby (`V_gs ≈ 0` on the logic PMOS — no stress),
    /// but the header itself ages whenever the circuit is active.
    Header,
    /// Both footer and header: maximal leakage savings; the header still
    /// ages.
    FooterAndHeader,
}

impl SleepTransistorKind {
    /// The standby state the topology imposes on the gated logic: in all
    /// three cases no internal PMOS is negatively biased during standby.
    pub fn standby_policy(&self) -> StandbyPolicy {
        StandbyPolicy::PowerGatedFooter
    }

    /// Whether the topology includes an aging PMOS header.
    pub fn header_ages(&self) -> bool {
        matches!(
            self,
            SleepTransistorKind::Header | SleepTransistorKind::FooterAndHeader
        )
    }
}

/// One point of the gated circuit's delay trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatedDelayPoint {
    /// Operating time.
    pub time: Seconds,
    /// Absolute critical-path delay including the ST penalty, in ps.
    pub delay_ps: f64,
    /// Delay relative to the un-gated, un-aged circuit
    /// (`delay/nominal − 1`).
    pub increase_vs_nominal: f64,
}

/// Sleep-transistor insertion analysis over a prepared aging analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StInsertion {
    /// Topology.
    pub kind: SleepTransistorKind,
    /// ST sizing (penalty budget, threshold).
    pub sizing: StSizing,
}

impl StInsertion {
    /// Delay trajectory of the gated circuit at the given times.
    ///
    /// The internal logic ages only through active-mode stress (the ST
    /// removes all standby stress); on top of that the virtual-rail drop
    /// costs `β` at time zero, and for header topologies the drop widens as
    /// the header's threshold shifts (eq. 29 rearranged).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for model failures.
    pub fn delay_over_time(
        &self,
        analysis: &AgingAnalysis<'_>,
        times: &[Seconds],
    ) -> Result<Vec<GatedDelayPoint>, FlowError> {
        let policy = self.kind.standby_policy();
        let params = analysis.config().nbti.params();
        let nominal = relia_sta::TimingAnalysis::nominal(analysis.circuit()).max_delay_ps();
        let mut out = Vec::with_capacity(times.len());
        for &t in times {
            // Internal (logic) aging at time t.
            let dv = analysis.gate_delta_vth_at(&policy, t)?;
            let degraded = relia_sta::TimingAnalysis::degraded(analysis.circuit(), &dv, params)?;
            // Virtual-rail penalty at time t.
            let v_st = if self.kind.header_ages() {
                let st_dv = self.sizing.st_delta_vth(
                    &analysis.config().nbti,
                    &analysis.config().schedule,
                    t,
                )?;
                self.sizing.aged_rail_drop(st_dv)
            } else {
                self.sizing.v_st_max()
            };
            let penalty = 1.0 + self.sizing.delay_penalty(v_st);
            let delay_ps = degraded.max_delay_ps() * penalty;
            out.push(GatedDelayPoint {
                time: t,
                delay_ps,
                increase_vs_nominal: delay_ps / nominal - 1.0,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_flow::FlowConfig;
    use relia_netlist::iscas;

    fn setup() -> (FlowConfig, relia_netlist::Circuit) {
        (FlowConfig::paper_defaults().unwrap(), iscas::c17())
    }

    #[test]
    fn all_topologies_remove_standby_stress() {
        for kind in [
            SleepTransistorKind::Footer,
            SleepTransistorKind::Header,
            SleepTransistorKind::FooterAndHeader,
        ] {
            assert_eq!(kind.standby_policy(), StandbyPolicy::PowerGatedFooter);
        }
        assert!(!SleepTransistorKind::Footer.header_ages());
        assert!(SleepTransistorKind::Header.header_ages());
    }

    #[test]
    fn footer_penalty_is_constant_beta() {
        let (config, circuit) = setup();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let ins = StInsertion {
            kind: SleepTransistorKind::Footer,
            sizing: StSizing::paper_defaults(0.05, 0.30).unwrap(),
        };
        let pts = ins
            .delay_over_time(&analysis, &[Seconds(0.0), Seconds(1.0e8)])
            .unwrap();
        // Time 0: exactly the β penalty.
        assert!((pts[0].increase_vs_nominal - 0.05).abs() < 1e-9);
        // Aging happens but only from active-mode stress.
        assert!(pts[1].increase_vs_nominal > pts[0].increase_vs_nominal);
    }

    #[test]
    fn header_ages_worse_than_footer() {
        let (config, circuit) = setup();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let sizing = StSizing::paper_defaults(0.05, 0.25).unwrap();
        let footer = StInsertion {
            kind: SleepTransistorKind::Footer,
            sizing,
        };
        let header = StInsertion {
            kind: SleepTransistorKind::Header,
            sizing,
        };
        let t = [Seconds(1.0e8)];
        let f = footer.delay_over_time(&analysis, &t).unwrap();
        let h = header.delay_over_time(&analysis, &t).unwrap();
        assert!(h[0].delay_ps > f[0].delay_ps);
    }

    #[test]
    fn gated_circuit_can_beat_ungated_at_ten_years() {
        // The paper's Fig. 11 claim: despite the time-0 penalty, a small-β
        // ST circuit ends up *faster* at 10 years than the un-gated
        // worst-case circuit at hot standby.
        let circuit = iscas::circuit("c432").unwrap();
        let config = relia_flow::FlowConfig::with_schedule(
            relia_core::Ras::new(1.0, 9.0).unwrap(),
            relia_core::Kelvin(400.0),
        )
        .unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let ungated = analysis.run(&StandbyPolicy::AllInternalZero).unwrap();
        let gated = StInsertion {
            kind: SleepTransistorKind::Footer,
            sizing: StSizing::paper_defaults(0.01, 0.30).unwrap(),
        };
        let pts = gated.delay_over_time(&analysis, &[Seconds(1.0e8)]).unwrap();
        assert!(
            pts[0].increase_vs_nominal < ungated.degradation_fraction(),
            "gated {} vs ungated {}",
            pts[0].increase_vs_nominal,
            ungated.degradation_fraction()
        );
    }
}

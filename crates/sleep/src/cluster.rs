//! Gate clustering and sleep-transistor area: block-based (BBSTI) versus
//! fine-grain (FGSTI) insertion.
//!
//! A block's sleep transistor must carry the block's peak simultaneous
//! switching current. Following the mutual-exclusion insight of the BBSTI
//! literature (Kao, Anis, Long), gates at different logic levels do not
//! draw their peak current at the same instant, so a block's demand is the
//! *maximum over levels* of the per-level current sum — far below the naive
//! all-gates sum. FGSTI instead gives each gate its own ST, exploiting
//! per-gate slack to relax the rail-drop budget on non-critical gates.

use relia_netlist::{Circuit, GateId};
use relia_sta::TimingReport;

use crate::sizing::StSizing;

/// A cluster of gates sharing one sleep transistor.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Member gates.
    pub gates: Vec<GateId>,
    /// Peak simultaneous current demand, in amperes.
    pub peak_current: f64,
    /// The block ST's `(W/L)`.
    pub st_size: f64,
}

/// Estimated peak switching current of one gate, in amperes: the charge
/// `C_load·V_dd` delivered over the gate delay.
fn gate_current(circuit: &Circuit, report: &TimingReport, gate: GateId) -> f64 {
    // Unit input capacitance of the 90 nm library, in farads.
    const UNIT_CAP_F: f64 = 2.0e-15;
    const VDD: f64 = 1.0;
    let load = circuit.load_of(circuit.gate(gate).output()).max(0.5);
    let delay_s = report.gate_delays()[gate.index()] * 1e-12;
    UNIT_CAP_F * load * VDD / delay_s.max(1e-15)
}

/// Clusters gates into blocks of at most `block_size` (in topological
/// order, which keeps blocks level-local) and sizes one ST per block from
/// the mutual-exclusion peak-current estimate.
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn bbsti_blocks(
    circuit: &Circuit,
    report: &TimingReport,
    sizing: &StSizing,
    block_size: usize,
) -> Vec<Block> {
    assert!(block_size > 0, "block size must be positive");
    let mut blocks = Vec::new();
    for chunk in circuit.topo_order().chunks(block_size) {
        // Per-level current sums inside the block.
        let mut level_current: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for &g in chunk {
            *level_current.entry(circuit.gate_level(g)).or_insert(0.0) +=
                gate_current(circuit, report, g);
        }
        let peak = level_current.values().cloned().fold(0.0, f64::max);
        let st_size = sizing
            .min_size(peak)
            // relia-lint: allow(unwrap-in-lib)
            .expect("peak current of a nonempty block is positive");
        blocks.push(Block {
            gates: chunk.to_vec(),
            peak_current: peak,
            st_size,
        });
    }
    blocks
}

/// Fine-grain sizing: one ST per gate, with the rail-drop budget widened on
/// gates that have slack (`β_g = β·(1 + slack/delay)`, capped at 3β).
///
/// Returns per-gate `(W/L)` indexed by `GateId::index`.
pub fn fgsti_sizes(circuit: &Circuit, report: &TimingReport, sizing: &StSizing) -> Vec<f64> {
    let slacks = report.slacks(circuit);
    circuit
        .topo_order()
        .iter()
        .map(|&g| {
            let i_on = gate_current(circuit, report, g);
            let delay = report.gate_delays()[g.index()].max(1e-9);
            let slack = slacks[circuit.gate(g).output().index()].max(0.0);
            let relax = (1.0 + slack / delay).min(3.0);
            // relia-lint: allow(unwrap-in-lib)
            let base = sizing.min_size(i_on).expect("gate current is positive");
            base / relax
        })
        .collect()
}

/// Total ST area of a BBSTI clustering.
pub fn total_block_area(blocks: &[Block]) -> f64 {
    blocks.iter().map(|b| b.st_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_netlist::iscas;
    use relia_sta::TimingAnalysis;

    fn setup() -> (Circuit, TimingReport, StSizing) {
        let c = iscas::circuit("c432").unwrap();
        let r = TimingAnalysis::nominal(&c);
        let s = StSizing::paper_defaults(0.05, 0.30).unwrap();
        (c, r, s)
    }

    #[test]
    fn blocks_cover_every_gate_once() {
        let (c, r, s) = setup();
        let blocks = bbsti_blocks(&c, &r, &s, 32);
        let total: usize = blocks.iter().map(|b| b.gates.len()).sum();
        assert_eq!(total, c.gates().len());
        let mut seen: Vec<GateId> = blocks.iter().flat_map(|b| b.gates.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), c.gates().len());
    }

    #[test]
    fn mutual_exclusion_beats_naive_sum() {
        let (c, r, s) = setup();
        let blocks = bbsti_blocks(&c, &r, &s, 64);
        for b in &blocks {
            let naive: f64 = b.gates.iter().map(|&g| gate_current(&c, &r, g)).sum();
            assert!(b.peak_current <= naive + 1e-18);
        }
        // At least one multi-level block must benefit.
        assert!(blocks.iter().any(|b| {
            let naive: f64 = b.gates.iter().map(|&g| gate_current(&c, &r, g)).sum();
            b.peak_current < 0.9 * naive
        }));
    }

    #[test]
    fn smaller_blocks_cost_more_total_area() {
        // Sharing helps: many small blocks lose the mutual-exclusion
        // discount.
        let (c, r, s) = setup();
        let coarse = total_block_area(&bbsti_blocks(&c, &r, &s, 64));
        let fine = total_block_area(&bbsti_blocks(&c, &r, &s, 4));
        assert!(fine > coarse, "fine {fine} <= coarse {coarse}");
    }

    #[test]
    fn fgsti_exploits_slack() {
        let (c, r, s) = setup();
        let sizes = fgsti_sizes(&c, &r, &s);
        assert_eq!(sizes.len(), c.gates().len());
        assert!(sizes.iter().all(|&x| x > 0.0));
        // Critical-path gates get the full (larger) size; at least some
        // off-critical gate is discounted. Compare total area against a
        // no-slack (relax = 1) sizing.
        let rigid: f64 = c
            .topo_order()
            .iter()
            .map(|&g| s.min_size(gate_current(&c, &r, g)).unwrap())
            .sum();
        let actual: f64 = sizes.iter().sum();
        assert!(actual < rigid);
    }
}

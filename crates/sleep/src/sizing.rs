//! Sleep-transistor sizing (eqs. 25–31 of the paper).
//!
//! The gate delay with an ST in the supply path rises from
//! `D ∝ 1/(V_dd − V_thlow)^α` to `D ∝ 1/(V_dd − V_ST − V_thlow)^α`
//! (eqs. 25–26); to first order the penalty is
//! `ΔD/D = α·V_ST/(V_dd − V_thlow)` (eq. 27). Budgeting a penalty `β`
//! bounds the virtual-rail drop (eq. 28), which with the ST's linear-region
//! current (eq. 29) fixes the minimum `(W/L)` (eq. 30). NBTI raises the ST
//! threshold over the lifetime, so a *safe* PMOS header must be oversized
//! by `ΔV_th/(V_dd − V_thST − V_ST)` (eq. 31).

use relia_core::{ModeSchedule, ModelError, NbtiModel, PmosStress, Seconds, Volts};

/// Sleep-transistor sizing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StSizing {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Threshold of the (low-V_th) logic devices, in volts.
    pub vth_low: f64,
    /// Initial threshold magnitude of the sleep transistor, in volts.
    pub vth_st: f64,
    /// Allowed relative delay penalty at time zero (`ΔD/D < β`).
    pub beta: f64,
    /// Velocity saturation index of the logic devices.
    pub alpha: f64,
    /// `μ_p·C_ox` proxy of the ST's linear-region transconductance, in
    /// A/V² per unit `(W/L)`.
    pub mobility_cox: f64,
}

impl StSizing {
    /// The paper's operating point with a chosen penalty budget `beta` and
    /// initial ST threshold `vth_st`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for out-of-range values.
    pub fn paper_defaults(beta: f64, vth_st: f64) -> Result<Self, ModelError> {
        let s = StSizing {
            vdd: 1.0,
            vth_low: 0.22,
            vth_st,
            beta,
            alpha: 1.3,
            mobility_cox: 1.0e-4,
        };
        s.validate()?;
        Ok(s)
    }

    fn validate(&self) -> Result<(), ModelError> {
        if !(self.beta > 0.0 && self.beta < 0.5) {
            return Err(ModelError::InvalidParameter {
                name: "beta",
                value: self.beta,
                expected: "(0, 0.5)",
            });
        }
        if self.vth_st <= 0.0 || self.vth_st >= self.vdd {
            return Err(ModelError::InvalidParameter {
                name: "vth_st",
                value: self.vth_st,
                expected: "(0, vdd)",
            });
        }
        Ok(())
    }

    /// Maximum virtual-rail drop `V_ST` meeting the penalty budget
    /// (eq. 28, with the α of eq. 27 retained):
    /// `V_ST ≤ β (V_dd − V_thlow)/α`.
    pub fn v_st_max(&self) -> f64 {
        self.beta * (self.vdd - self.vth_low) / self.alpha
    }

    /// Time-zero delay penalty for a given virtual-rail drop (eq. 27).
    pub fn delay_penalty(&self, v_st: f64) -> f64 {
        self.alpha * v_st / (self.vdd - self.vth_low)
    }

    /// Minimum ST `(W/L)` that carries `i_on` amperes without exceeding
    /// the rail-drop budget (eq. 30):
    /// `(W/L) ≥ I_ON/(μC_ox (V_dd − V_thST) V_ST)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a non-positive current.
    pub fn min_size(&self, i_on: f64) -> Result<f64, ModelError> {
        if i_on <= 0.0 || !i_on.is_finite() {
            return Err(ModelError::InvalidParameter {
                name: "i_on",
                value: i_on,
                expected: "positive amperes",
            });
        }
        Ok(i_on / (self.mobility_cox * (self.vdd - self.vth_st) * self.v_st_max()))
    }

    /// NBTI-aware relative size margin (eq. 31): the extra `(W/L)` fraction
    /// that keeps the rail drop within budget after the ST threshold has
    /// shifted by `delta_vth` volts:
    /// `Δ(W/L)/(W/L) = ΔV_th/(V_dd − V_thST − V_ST)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a negative shift or one
    /// that exhausts the ST overdrive.
    pub fn nbti_size_margin(&self, delta_vth: f64) -> Result<f64, ModelError> {
        let headroom = self.vdd - self.vth_st - self.v_st_max();
        if !(0.0..1.0).contains(&delta_vth) || delta_vth >= headroom {
            return Err(ModelError::InvalidParameter {
                name: "delta_vth",
                value: delta_vth,
                expected: "[0, ST headroom)",
            });
        }
        Ok(delta_vth / headroom)
    }

    /// Lifetime threshold shift of the PMOS header ST itself.
    ///
    /// While the circuit is *active* the ST's gate is low (`V_gs = −V_dd`,
    /// stressed); in standby the gate is high (relaxed) — the exact
    /// opposite of the logic's stress pattern, so the shift depends on RAS
    /// but not on the standby temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid model inputs.
    pub fn st_delta_vth(
        &self,
        model: &NbtiModel,
        schedule: &ModeSchedule,
        lifetime: Seconds,
    ) -> Result<f64, ModelError> {
        let stress = PmosStress::new(1.0, 0.0)?;
        model.delta_vth_with_vth0(lifetime, schedule, &stress, Volts(self.vth_st))
    }

    /// Rail drop after aging: with the threshold shifted by `delta_vth`
    /// and the size fixed at the time-zero minimum, the linear-region
    /// current constraint (eq. 29) gives
    /// `V_ST(t) = V_ST(0)·(V_dd − V_thST)/(V_dd − V_thST − ΔV_th)`.
    pub fn aged_rail_drop(&self, delta_vth: f64) -> f64 {
        let od0 = self.vdd - self.vth_st;
        self.v_st_max() * od0 / (od0 - delta_vth).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_core::{Kelvin, Ras};

    fn sizing(beta: f64, vth_st: f64) -> StSizing {
        StSizing::paper_defaults(beta, vth_st).unwrap()
    }

    fn schedule(active: f64, standby: f64) -> ModeSchedule {
        ModeSchedule::new(
            Ras::new(active, standby).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap()
    }

    #[test]
    fn rail_budget_matches_penalty() {
        let s = sizing(0.05, 0.30);
        assert!((s.delay_penalty(s.v_st_max()) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn smaller_beta_needs_bigger_st() {
        let tight = sizing(0.01, 0.30).min_size(1.0e-3).unwrap();
        let loose = sizing(0.05, 0.30).min_size(1.0e-3).unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn size_margin_range_matches_fig9() {
        // Paper Fig. 9: Δ(W/L) spans ~1.1% (V_th = 0.40, RAS = 1:9) to
        // ~3.9% (V_th = 0.20, RAS = 9:1).
        let model = NbtiModel::ptm90().unwrap();
        let life = Seconds(1.0e8);

        let busy = sizing(0.05, 0.20);
        let dv_busy = busy
            .st_delta_vth(&model, &schedule(9.0, 1.0), life)
            .unwrap();
        let hi = busy.nbti_size_margin(dv_busy).unwrap();

        let idle = sizing(0.05, 0.40);
        let dv_idle = idle
            .st_delta_vth(&model, &schedule(1.0, 9.0), life)
            .unwrap();
        let lo = idle.nbti_size_margin(dv_idle).unwrap();

        assert!(hi > lo, "margin must grow with stress and low V_th");
        assert!(lo > 0.005 && lo < 0.025, "low corner {lo}");
        assert!(hi > 0.025 && hi < 0.08, "high corner {hi}");
    }

    #[test]
    fn st_shift_range_matches_fig8() {
        // Paper Fig. 8: ΔV_th spans ~6.7 mV to ~30.3 mV across the corners.
        let model = NbtiModel::ptm90().unwrap();
        let life = Seconds(1.0e8);
        let hi = sizing(0.05, 0.20)
            .st_delta_vth(&model, &schedule(9.0, 1.0), life)
            .unwrap();
        let lo = sizing(0.05, 0.40)
            .st_delta_vth(&model, &schedule(1.0, 9.0), life)
            .unwrap();
        assert!(hi > lo);
        assert!(
            lo * 1e3 > 3.0 && lo * 1e3 < 12.0,
            "low corner {} mV",
            lo * 1e3
        );
        assert!(
            hi * 1e3 > 24.0 && hi * 1e3 < 42.0,
            "high corner {} mV",
            hi * 1e3
        );
    }

    #[test]
    fn st_shift_is_standby_temperature_insensitive() {
        // The header relaxes during standby, so T_standby must not matter.
        let model = NbtiModel::ptm90().unwrap();
        let s = sizing(0.05, 0.30);
        let cool = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap();
        let hot = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(400.0),
        )
        .unwrap();
        let a = s.st_delta_vth(&model, &cool, Seconds(1.0e8)).unwrap();
        let b = s.st_delta_vth(&model, &hot, Seconds(1.0e8)).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn aged_rail_drop_grows() {
        let s = sizing(0.05, 0.30);
        assert!(s.aged_rail_drop(0.030) > s.v_st_max());
        assert!((s.aged_rail_drop(0.0) - s.v_st_max()).abs() < 1e-15);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(StSizing::paper_defaults(0.0, 0.3).is_err());
        assert!(StSizing::paper_defaults(0.05, 1.5).is_err());
        assert!(sizing(0.05, 0.3).min_size(-1.0).is_err());
        assert!(sizing(0.05, 0.3).nbti_size_margin(-0.01).is_err());
    }
}

//! Property-based tests for sleep-transistor sizing.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_core::{Kelvin, ModeSchedule, NbtiModel, Ras, Seconds};
use relia_sleep::StSizing;

proptest! {
    /// ST size is monotone in the carried current and inversely monotone in
    /// the penalty budget.
    #[test]
    fn sizing_monotonicity(
        i_on in 1e-6f64..1e-2,
        beta in 0.005f64..0.2,
        vth_st in 0.1f64..0.45,
    ) {
        let s = StSizing::paper_defaults(beta, vth_st).expect("valid");
        let a = s.min_size(i_on).expect("valid");
        let b = s.min_size(2.0 * i_on).expect("valid");
        prop_assert!((b / a - 2.0).abs() < 1e-9);
        let tight = StSizing::paper_defaults(beta / 2.0, vth_st).expect("valid");
        prop_assert!(tight.min_size(i_on).expect("valid") > a);
    }

    /// The NBTI size margin is monotone in the shift and positive.
    #[test]
    fn margin_monotone(dv in 0.001f64..0.05, beta in 0.01f64..0.1) {
        let s = StSizing::paper_defaults(beta, 0.30).expect("valid");
        let m1 = s.nbti_size_margin(dv).expect("valid");
        let m2 = s.nbti_size_margin(dv * 1.5).expect("valid");
        prop_assert!(m1 > 0.0 && m2 > m1);
    }

    /// The aged rail drop is monotone in the ST's threshold shift, and the
    /// time-0 penalty equals beta.
    #[test]
    fn rail_drop_monotone(dv in 0.0f64..0.1, beta in 0.01f64..0.1) {
        let s = StSizing::paper_defaults(beta, 0.30).expect("valid");
        prop_assert!(s.aged_rail_drop(dv) >= s.v_st_max() - 1e-15);
        prop_assert!(s.aged_rail_drop(dv + 0.01) > s.aged_rail_drop(dv));
        prop_assert!((s.delay_penalty(s.v_st_max()) - beta).abs() < 1e-12);
    }

    /// The header ST shift is monotone in the active share.
    #[test]
    fn st_shift_monotone_in_active_share(active in 1.0f64..9.0) {
        let model = NbtiModel::ptm90().expect("built-in");
        let s = StSizing::paper_defaults(0.05, 0.30).expect("valid");
        let mk = |a: f64| ModeSchedule::new(
            Ras::new(a, 10.0 - a).expect("valid"),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        ).expect("valid");
        let lo = s.st_delta_vth(&model, &mk(active), Seconds(1.0e8)).expect("valid");
        let hi = s.st_delta_vth(&model, &mk(active + 0.5), Seconds(1.0e8)).expect("valid");
        prop_assert!(hi > lo);
    }
}

//! Property-based tests for simulation invariants.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_netlist::iscas;
use relia_sim::{logic, monte_carlo, prob};

proptest! {
    /// Propagated probabilities at 0/1 corners coincide with logic values,
    /// on every net of a larger benchmark.
    #[test]
    fn corners_agree_with_logic(bits in 0u64..(1 << 36)) {
        let c = iscas::circuit("c432").expect("known");
        let n = c.primary_inputs().len();
        let stim: Vec<bool> = (0..n).map(|i| bits >> (i % 64) & 1 == 1).collect();
        let corner: Vec<f64> = stim.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let values = logic::simulate(&c, &stim).expect("valid");
        let sp = prob::propagate(&c, &corner).expect("valid");
        for (i, v) in values.as_slice().iter().enumerate() {
            let expected = if *v { 1.0 } else { 0.0 };
            prop_assert!((sp.as_slice()[i] - expected).abs() < 1e-9, "net {i}");
        }
    }

    /// Probabilities stay in [0, 1] for arbitrary input probabilities.
    #[test]
    fn probabilities_bounded(p in prop::collection::vec(0.0f64..=1.0, 5..=5)) {
        let c = iscas::c17();
        let sp = prob::propagate(&c, &p).expect("valid");
        for v in sp.as_slice() {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    /// Monte-Carlo estimates are themselves valid probabilities and match
    /// deterministic inputs exactly.
    #[test]
    fn monte_carlo_bounded(seed in 0u64..1000) {
        let c = iscas::c17();
        let est = monte_carlo::estimate(&c, &[1.0, 0.0, 1.0, 0.0, 1.0], 64, seed).expect("valid");
        for (i, &pi) in c.primary_inputs().iter().enumerate() {
            let expected = if i % 2 == 0 { 1.0 } else { 0.0 };
            prop_assert!((est.probs().of(pi) - expected).abs() < 1e-12);
        }
        for v in est.probs().as_slice() {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }
}

//! Two-valued logic simulation.

use relia_netlist::{Circuit, GateId, NetId};

use crate::error::SimError;

/// Net values resulting from one simulation: indexed by `NetId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetValues {
    values: Vec<bool>,
}

impl NetValues {
    /// Value of one net.
    pub fn of(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Values of the circuit's primary outputs, in declaration order.
    pub fn outputs(&self, circuit: &Circuit) -> Vec<bool> {
        circuit
            .primary_outputs()
            .iter()
            .map(|&po| self.of(po))
            .collect()
    }

    /// The input levels seen by one gate, in pin order.
    pub fn gate_inputs(&self, circuit: &Circuit, gate: GateId) -> Vec<bool> {
        circuit
            .gate(gate)
            .inputs()
            .iter()
            .map(|&n| self.of(n))
            .collect()
    }

    /// All net values (indexed by `NetId::index`).
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }
}

/// Simulates the circuit under a primary-input assignment (index i of
/// `stimulus` drives `circuit.primary_inputs()[i]`).
///
/// # Errors
///
/// Returns [`SimError::StimulusWidthMismatch`] when the stimulus width is
/// wrong.
///
/// ```
/// use relia_netlist::iscas;
/// use relia_sim::logic;
///
/// let c = iscas::c17();
/// let v = logic::simulate(&c, &[true, true, true, true, true])?;
/// assert_eq!(v.outputs(&c).len(), 2);
/// # Ok::<(), relia_sim::SimError>(())
/// ```
pub fn simulate(circuit: &Circuit, stimulus: &[bool]) -> Result<NetValues, SimError> {
    let pis = circuit.primary_inputs();
    if stimulus.len() != pis.len() {
        return Err(SimError::StimulusWidthMismatch {
            expected: pis.len(),
            got: stimulus.len(),
        });
    }
    let mut values = vec![false; circuit.nets().len()];
    for (&pi, &v) in pis.iter().zip(stimulus) {
        values[pi.index()] = v;
    }
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let inputs: Vec<bool> = gate.inputs().iter().map(|n| values[n.index()]).collect();
        values[gate.output().index()] = circuit.library().cell(gate.cell()).eval(&inputs);
    }
    Ok(NetValues { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_cells::Library;
    use relia_netlist::CircuitBuilder;

    fn xor_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("x", Library::ptm90());
        let a = b.add_input("a");
        let c = b.add_input("b");
        let y = b.add_gate("XOR2", "y", &[a, c]).unwrap();
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn xor_simulation() {
        let c = xor_circuit();
        for (a, b, want) in [
            (false, false, false),
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            let v = simulate(&c, &[a, b]).unwrap();
            assert_eq!(v.outputs(&c), vec![want], "{a} {b}");
        }
    }

    #[test]
    fn gate_inputs_are_exposed() {
        let c = xor_circuit();
        let v = simulate(&c, &[true, false]).unwrap();
        let gid = c.topo_order()[0];
        assert_eq!(v.gate_inputs(&c, gid), vec![true, false]);
    }

    #[test]
    fn width_mismatch_is_error() {
        let c = xor_circuit();
        assert!(simulate(&c, &[true]).is_err());
    }

    #[test]
    fn c17_known_vector() {
        let c = relia_netlist::iscas::c17();
        // All-ones: 10 = NAND(1,1)=0, 11 = 0, 16 = NAND(1,0)=1,
        // 19 = NAND(0,1)=1, 22 = NAND(0,1)=1, 23 = NAND(1,1)=0.
        let v = simulate(&c, &[true; 5]).unwrap();
        assert_eq!(v.outputs(&c), vec![true, false]);
    }
}

//! Error type for simulation.

use std::error::Error;
use std::fmt;

/// Error returned by simulation entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The stimulus width does not match the circuit's primary inputs.
    StimulusWidthMismatch {
        /// Primary inputs the circuit has.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A probability is outside `[0, 1]`.
    InvalidProbability {
        /// Index of the offending entry.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// Zero samples were requested for a statistical estimate.
    NoSamples,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StimulusWidthMismatch { expected, got } => {
                write!(
                    f,
                    "stimulus has {got} values but circuit has {expected} inputs"
                )
            }
            SimError::InvalidProbability { index, value } => {
                write!(f, "probability {value} at index {index} is outside [0, 1]")
            }
            SimError::NoSamples => write!(f, "at least one sample is required"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_counts() {
        let e = SimError::StimulusWidthMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }
}

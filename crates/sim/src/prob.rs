//! Signal-probability propagation.
//!
//! Each net's probability of being logic-1 is propagated through the gate
//! DAG using each cell's exact input-enumeration
//! ([`relia_cells::Cell::output_probability`]), under the usual independence
//! assumption across gate inputs. Reconvergent fan-out introduces
//! correlation this model ignores; the Monte-Carlo estimator in
//! [`crate::monte_carlo`] provides the unbiased reference.

use relia_netlist::{Circuit, GateId, NetId};

use crate::error::SimError;

/// Per-net signal probabilities (probability of logic 1), indexed by
/// `NetId`.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalProbs {
    probs: Vec<f64>,
}

impl SignalProbs {
    pub(crate) fn from_vec(probs: Vec<f64>) -> Self {
        SignalProbs { probs }
    }

    /// Probability that `net` is logic 1.
    pub fn of(&self, net: NetId) -> f64 {
        self.probs[net.index()]
    }

    /// The probabilities seen by a gate's pins, in pin order.
    pub fn gate_inputs(&self, circuit: &Circuit, gate: GateId) -> Vec<f64> {
        circuit
            .gate(gate)
            .inputs()
            .iter()
            .map(|&n| self.of(n))
            .collect()
    }

    /// All probabilities (indexed by `NetId::index`).
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }
}

/// Propagates primary-input probabilities through the circuit.
///
/// # Errors
///
/// Returns [`SimError`] for a width mismatch or out-of-range probability.
///
/// ```
/// use relia_netlist::iscas;
/// use relia_sim::prob;
///
/// let c = iscas::c17();
/// let sp = prob::propagate(&c, &[0.5; 5])?;
/// // NAND of two independent 0.5 inputs is 1 with probability 0.75.
/// let first_nand = c.gates()[0].output();
/// assert!((sp.of(first_nand) - 0.75).abs() < 1e-12);
/// # Ok::<(), relia_sim::SimError>(())
/// ```
pub fn propagate(circuit: &Circuit, pi_probs: &[f64]) -> Result<SignalProbs, SimError> {
    let pis = circuit.primary_inputs();
    if pi_probs.len() != pis.len() {
        return Err(SimError::StimulusWidthMismatch {
            expected: pis.len(),
            got: pi_probs.len(),
        });
    }
    for (i, &p) in pi_probs.iter().enumerate() {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(SimError::InvalidProbability { index: i, value: p });
        }
    }
    let mut probs = vec![0.0; circuit.nets().len()];
    for (&pi, &p) in pis.iter().zip(pi_probs) {
        probs[pi.index()] = p;
    }
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let inputs: Vec<f64> = gate.inputs().iter().map(|n| probs[n.index()]).collect();
        probs[gate.output().index()] = circuit
            .library()
            .cell(gate.cell())
            .output_probability(&inputs);
    }
    Ok(SignalProbs::from_vec(probs))
}

/// Convenience: uniform 0.5 probability on every primary input — the
/// paper's active-mode assumption.
///
/// # Errors
///
/// Never fails for a valid circuit; mirrors [`propagate`].
pub fn propagate_uniform(circuit: &Circuit) -> Result<SignalProbs, SimError> {
    propagate(circuit, &vec![0.5; circuit.primary_inputs().len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_cells::Library;
    use relia_netlist::CircuitBuilder;

    #[test]
    fn inverter_flips_probability() {
        let mut b = CircuitBuilder::new("t", Library::ptm90());
        let a = b.add_input("a");
        let y = b.add_gate("INV", "y", &[a]).unwrap();
        b.mark_output(y);
        let c = b.build().unwrap();
        let sp = propagate(&c, &[0.3]).unwrap();
        assert!((sp.of(c.primary_outputs()[0]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn corner_probabilities_match_logic() {
        let c = relia_netlist::iscas::c17();
        for bits in 0..32u32 {
            let stim: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let corner: Vec<f64> = stim.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let sp = propagate(&c, &corner).unwrap();
            let lv = crate::logic::simulate(&c, &stim).unwrap();
            for po in c.primary_outputs() {
                let expected = if lv.of(*po) { 1.0 } else { 0.0 };
                assert!((sp.of(*po) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn probabilities_stay_bounded() {
        let c = relia_netlist::iscas::circuit("c432").unwrap();
        let sp = propagate_uniform(&c).unwrap();
        for p in sp.as_slice() {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let c = relia_netlist::iscas::c17();
        assert!(propagate(&c, &[0.5, 0.5, 1.5, 0.5, 0.5]).is_err());
        assert!(propagate(&c, &[0.5; 4]).is_err());
    }
}

//! Monte-Carlo estimation of signal probabilities and switching activity.
//!
//! This is the statistical route the paper's flow describes: simulate a
//! large number of random input vectors and count per-net 1-frequencies
//! (signal probability) and toggle frequencies (activity factor). Seeded
//! for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relia_netlist::{Circuit, NetId};

use crate::error::SimError;
use crate::logic;
use crate::prob::SignalProbs;

/// Monte-Carlo estimates: per-net signal probability and toggle activity.
#[derive(Debug, Clone, PartialEq)]
pub struct McEstimate {
    probs: SignalProbs,
    activity: Vec<f64>,
    samples: usize,
}

impl McEstimate {
    /// Estimated signal probabilities.
    pub fn probs(&self) -> &SignalProbs {
        &self.probs
    }

    /// Estimated toggle activity of `net`: the fraction of consecutive
    /// vector pairs on which the net changed value.
    pub fn activity_of(&self, net: NetId) -> f64 {
        self.activity[net.index()]
    }

    /// Number of vectors simulated.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

/// Estimates signal probabilities and activity by simulating `samples`
/// random vectors drawn with independent per-input probabilities
/// `pi_probs`, using the seeded generator for reproducibility.
///
/// # Errors
///
/// Returns [`SimError`] for width mismatches, invalid probabilities, or
/// `samples == 0`.
///
/// ```
/// use relia_netlist::iscas;
/// use relia_sim::monte_carlo;
///
/// let c = iscas::c17();
/// let est = monte_carlo::estimate(&c, &[0.5; 5], 2000, 42)?;
/// let first_nand = c.gates()[0].output();
/// // NAND of two fair inputs is 1 three quarters of the time.
/// assert!((est.probs().of(first_nand) - 0.75).abs() < 0.05);
/// # Ok::<(), relia_sim::SimError>(())
/// ```
pub fn estimate(
    circuit: &Circuit,
    pi_probs: &[f64],
    samples: usize,
    seed: u64,
) -> Result<McEstimate, SimError> {
    let pis = circuit.primary_inputs();
    if pi_probs.len() != pis.len() {
        return Err(SimError::StimulusWidthMismatch {
            expected: pis.len(),
            got: pi_probs.len(),
        });
    }
    for (i, &p) in pi_probs.iter().enumerate() {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(SimError::InvalidProbability { index: i, value: p });
        }
    }
    if samples == 0 {
        return Err(SimError::NoSamples);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let num_nets = circuit.nets().len();
    let mut ones = vec![0u64; num_nets];
    let mut toggles = vec![0u64; num_nets];
    let mut prev: Option<Vec<bool>> = None;

    for _ in 0..samples {
        let stim: Vec<bool> = pi_probs.iter().map(|&p| rng.gen_bool(p)).collect();
        let values = logic::simulate(circuit, &stim)?;
        let slice = values.as_slice();
        for (i, &v) in slice.iter().enumerate() {
            if v {
                ones[i] += 1;
            }
            if let Some(ref p) = prev {
                if p[i] != v {
                    toggles[i] += 1;
                }
            }
        }
        prev = Some(slice.to_vec());
    }

    let n = samples as f64;
    let pairs = (samples.saturating_sub(1)).max(1) as f64;
    Ok(McEstimate {
        probs: SignalProbs::from_vec(ones.iter().map(|&c| c as f64 / n).collect()),
        activity: toggles.iter().map(|&c| c as f64 / pairs).collect(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob;

    #[test]
    fn estimates_converge_to_propagated_probabilities_on_trees() {
        // c17 has reconvergence, but shallow; MC and propagation should
        // agree within a few percent at 0.5 inputs.
        let c = relia_netlist::iscas::c17();
        let est = estimate(&c, &[0.5; 5], 4000, 7).unwrap();
        let sp = prob::propagate(&c, &[0.5; 5]).unwrap();
        for (i, net) in c.nets().iter().enumerate() {
            let _ = net;
            let d = (est.probs().as_slice()[i] - sp.as_slice()[i]).abs();
            assert!(
                d < 0.06,
                "net {i}: mc={} prop={}",
                est.probs().as_slice()[i],
                sp.as_slice()[i]
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = relia_netlist::iscas::c17();
        let a = estimate(&c, &[0.5; 5], 500, 99).unwrap();
        let b = estimate(&c, &[0.5; 5], 500, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let c = relia_netlist::iscas::c17();
        let a = estimate(&c, &[0.5; 5], 500, 1).unwrap();
        let b = estimate(&c, &[0.5; 5], 500, 2).unwrap();
        assert_ne!(a.probs().as_slice(), b.probs().as_slice());
    }

    #[test]
    fn activity_of_constant_input_is_zero() {
        let c = relia_netlist::iscas::c17();
        let est = estimate(&c, &[1.0, 0.5, 0.5, 0.5, 0.5], 300, 3).unwrap();
        let pi0 = c.primary_inputs()[0];
        assert_eq!(est.activity_of(pi0), 0.0);
        assert!((est.probs().of(pi0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_samples_is_error() {
        let c = relia_netlist::iscas::c17();
        assert!(matches!(
            estimate(&c, &[0.5; 5], 0, 1),
            Err(SimError::NoSamples)
        ));
    }
}

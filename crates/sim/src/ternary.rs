//! Three-valued (0/1/X) logic simulation.
//!
//! Power-gated standby states leave internal nodes floating; partially
//! applied input vectors leave them unknown. Ternary simulation propagates
//! `X` conservatively through the cell library's exact logic: a gate output
//! is a definite 0/1 only when *every* completion of its unknown inputs
//! agrees.

use relia_cells::Vector;
use relia_netlist::{Circuit, NetId};

use crate::error::SimError;

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / floating.
    #[default]
    X,
}

impl Trit {
    /// Converts a definite boolean.
    pub fn from_bool(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// The definite value, if any.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Whether the level is unknown.
    pub fn is_x(self) -> bool {
        self == Trit::X
    }
}

/// Ternary net values, indexed by `NetId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TernaryValues {
    values: Vec<Trit>,
}

impl TernaryValues {
    /// Value of one net.
    pub fn of(&self, net: NetId) -> Trit {
        self.values[net.index()]
    }

    /// Number of unknown nets.
    pub fn unknown_count(&self) -> usize {
        self.values.iter().filter(|t| t.is_x()).count()
    }

    /// All values (indexed by `NetId::index`).
    pub fn as_slice(&self) -> &[Trit] {
        &self.values
    }
}

/// Simulates the circuit under a partial primary-input assignment
/// (`Trit::X` inputs are unknown / undriven).
///
/// A gate's output is resolved by enumerating all completions of its
/// unknown inputs through the cell's exact logic: if every completion
/// agrees the output is definite, otherwise it is `X`. This is exact for
/// each gate in isolation (it ignores cross-gate correlation of the same
/// `X` source, like all ternary simulators).
///
/// # Errors
///
/// Returns [`SimError::StimulusWidthMismatch`] for a wrong stimulus width.
///
/// ```
/// use relia_netlist::iscas;
/// use relia_sim::ternary::{simulate_ternary, Trit};
///
/// let c = iscas::c17();
/// // Only input "3" known: some outputs stay unknown.
/// let mut stim = vec![Trit::X; 5];
/// stim[2] = Trit::Zero;
/// let v = simulate_ternary(&c, &stim)?;
/// assert!(v.unknown_count() > 0);
/// # Ok::<(), relia_sim::SimError>(())
/// ```
pub fn simulate_ternary(circuit: &Circuit, stimulus: &[Trit]) -> Result<TernaryValues, SimError> {
    let pis = circuit.primary_inputs();
    if stimulus.len() != pis.len() {
        return Err(SimError::StimulusWidthMismatch {
            expected: pis.len(),
            got: stimulus.len(),
        });
    }
    let mut values = vec![Trit::X; circuit.nets().len()];
    for (&pi, &t) in pis.iter().zip(stimulus) {
        values[pi.index()] = t;
    }
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let cell = circuit.library().cell(gate.cell());
        let inputs: Vec<Trit> = gate.inputs().iter().map(|n| values[n.index()]).collect();
        values[gate.output().index()] = eval_ternary(cell, &inputs);
    }
    Ok(TernaryValues { values })
}

/// Evaluates one cell under ternary inputs by completion enumeration.
fn eval_ternary(cell: &relia_cells::Cell, inputs: &[Trit]) -> Trit {
    let unknown: Vec<usize> = inputs
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_x())
        .map(|(i, _)| i)
        .collect();
    if unknown.is_empty() {
        let bools: Vec<bool> = inputs
            .iter()
            // The unknown-index set is empty, so every trit is definite.
            // relia-lint: allow(unwrap-in-lib)
            .map(|t| t.to_bool().expect("definite"))
            .collect();
        return Trit::from_bool(cell.eval(&bools));
    }
    let mut seen: Option<bool> = None;
    for completion in Vector::all(unknown.len()) {
        let mut bools: Vec<bool> = inputs
            .iter()
            .map(|t| t.to_bool().unwrap_or(false))
            .collect();
        for (k, &pos) in unknown.iter().enumerate() {
            bools[pos] = completion.bit(k);
        }
        let out = cell.eval(&bools);
        match seen {
            None => seen = Some(out),
            Some(prev) if prev != out => return Trit::X,
            Some(_) => {}
        }
    }
    // Vector::all yields at least one completion, so `seen` is set.
    // relia-lint: allow(unwrap-in-lib)
    Trit::from_bool(seen.expect("at least one completion"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_cells::Library;
    use relia_netlist::CircuitBuilder;

    fn single(cell: &str, n: usize) -> Circuit {
        let mut b = CircuitBuilder::new("t", Library::ptm90());
        let pins: Vec<_> = (0..n).map(|i| b.add_input(format!("i{i}"))).collect();
        let y = b.add_gate(cell, "y", &pins).unwrap();
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn controlling_values_dominate_x() {
        // NAND with one 0 input is 1 regardless of the X.
        let c = single("NAND2", 2);
        let v = simulate_ternary(&c, &[Trit::Zero, Trit::X]).unwrap();
        assert_eq!(v.of(c.primary_outputs()[0]), Trit::One);
        // NOR with one 1 input is 0 regardless of the X.
        let c = single("NOR2", 2);
        let v = simulate_ternary(&c, &[Trit::One, Trit::X]).unwrap();
        assert_eq!(v.of(c.primary_outputs()[0]), Trit::Zero);
    }

    #[test]
    fn non_controlling_values_keep_x() {
        let c = single("NAND2", 2);
        let v = simulate_ternary(&c, &[Trit::One, Trit::X]).unwrap();
        assert_eq!(v.of(c.primary_outputs()[0]), Trit::X);
    }

    #[test]
    fn xor_never_resolves_with_unknown_input() {
        let c = single("XOR2", 2);
        for known in [Trit::Zero, Trit::One] {
            let v = simulate_ternary(&c, &[known, Trit::X]).unwrap();
            assert_eq!(v.of(c.primary_outputs()[0]), Trit::X);
        }
    }

    #[test]
    fn definite_inputs_match_boolean_simulation() {
        let c = relia_netlist::iscas::c17();
        for bits in 0..32u32 {
            let bools: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let trits: Vec<Trit> = bools.iter().map(|&b| Trit::from_bool(b)).collect();
            let tv = simulate_ternary(&c, &trits).unwrap();
            let bv = crate::logic::simulate(&c, &bools).unwrap();
            assert_eq!(tv.unknown_count(), 0);
            for (i, t) in tv.as_slice().iter().enumerate() {
                assert_eq!(t.to_bool(), Some(bv.as_slice()[i]), "net {i}");
            }
        }
    }

    #[test]
    fn partial_vectors_resolve_monotonically() {
        // Fixing more inputs can only reduce the unknown count.
        let c = relia_netlist::iscas::c17();
        let mut stim = vec![Trit::X; 5];
        let mut prev = simulate_ternary(&c, &stim).unwrap().unknown_count();
        for i in 0..5 {
            stim[i] = Trit::One;
            let now = simulate_ternary(&c, &stim).unwrap().unknown_count();
            assert!(now <= prev, "fixing input {i} raised X count");
            prev = now;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn width_mismatch_is_error() {
        let c = relia_netlist::iscas::c17();
        assert!(simulate_ternary(&c, &[Trit::X; 3]).is_err());
    }
}

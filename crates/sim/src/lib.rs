#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-sim
//!
//! Logic-level simulation substrate:
//!
//! * [`logic`] — two-valued evaluation of a [`relia_netlist::Circuit`] under
//!   a primary-input assignment (used to derive standby internal states from
//!   an input vector).
//! * [`prob`] — signal-probability propagation under the independence
//!   assumption (exact per cell, approximate across reconvergent fan-out).
//! * [`monte_carlo`] — seeded random-vector estimation of signal
//!   probabilities and switching activity, the statistical route the paper's
//!   flow uses ("the signal probability for each edge is derived
//!   statistically by simulating a large number of input vectors").
//! * [`ternary`] — three-valued (0/1/X) simulation for floating or
//!   partially-driven standby states.
//!
//! ```
//! use relia_netlist::iscas;
//! use relia_sim::{logic, prob};
//!
//! let c17 = iscas::c17();
//! let values = logic::simulate(&c17, &[false; 5]).expect("5 inputs");
//! assert_eq!(values.outputs(&c17), vec![false, false]);
//! let sp = prob::propagate(&c17, &[0.5; 5]).expect("5 inputs");
//! assert!(sp.of(c17.primary_outputs()[0]) > 0.0);
//! ```

pub mod error;
pub mod logic;
pub mod monte_carlo;
pub mod prob;
pub mod ternary;

pub use error::SimError;
pub use logic::NetValues;
pub use prob::SignalProbs;
pub use ternary::{simulate_ternary, TernaryValues, Trit};

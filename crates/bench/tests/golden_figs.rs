//! The fig03/fig04 binaries now run through the `relia-jobs` sweep engine;
//! these tests pin their stdout byte-for-byte to the golden outputs captured
//! from the pre-engine, direct-model versions. Any drift in the engine's
//! quantized-key evaluation shows up here first.

#![allow(clippy::unwrap_used)]
use std::path::PathBuf;
use std::process::Command;

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn stdout_of(bin: &str) -> String {
    let out = Command::new(bin).output().expect("binary runs");
    assert!(out.status.success(), "{bin} failed");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn fig03_matches_the_golden_output_exactly() {
    assert_eq!(
        stdout_of(env!("CARGO_BIN_EXE_fig03_ras_sweep")),
        golden("fig03_ras_sweep.txt")
    );
}

#[test]
fn fig04_matches_the_golden_output_exactly() {
    assert_eq!(
        stdout_of(env!("CARGO_BIN_EXE_fig04_tstandby_sweep")),
        golden("fig04_tstandby_sweep.txt")
    );
}

#[test]
fn fig12_matches_the_golden_output_exactly() {
    // The variation study runs on the batched SoA kernel; this pins it
    // byte-for-byte to the output captured from the scalar per-gate loop.
    assert_eq!(
        stdout_of(env!("CARGO_BIN_EXE_fig12_variation")),
        golden("fig12_variation.txt")
    );
}

//! Ablation — self-consistent standby temperature: IVC's second-order
//! benefit.
//!
//! The paper treats `T_standby` as an input. In reality the standby
//! temperature is *set by the standby power itself*: a low-leakage vector
//! cools the die, and a cooler die both leaks less (electrothermal fixed
//! point) and ages slower (the NBTI temperature dependence). This ties the
//! three substrates together: leakage → thermal equilibrium → NBTI.

use relia_bench::pct;
use relia_core::{Kelvin, Ras};
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_ivc::{search_mlv_set, MlvSearchConfig};
use relia_leakage::{circuit_leakage, DeviceModels, LeakageTable};
use relia_netlist::iscas;
use relia_thermal::{find_equilibrium, Equilibrium, RcThermalModel};

fn main() {
    let circuit = iscas::circuit("c880").expect("known benchmark");
    let thermal = RcThermalModel::air_cooled();
    let devices = DeviceModels::ptm90();
    // Rest-of-chip standby power the block shares a die with; tuned so the
    // die sits in the paper's standby range. One logic block's leakage is
    // scaled up as a stand-in for the full die's.
    let baseline_watts = 28.0;
    let die_scale = 2.0e5; // this block replicated across the die
    const VDD: f64 = 1.0;

    // Candidate standby vectors: the MLV versus the worst random corner.
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");
    let set = search_mlv_set(&analysis, &MlvSearchConfig::default()).expect("search");
    let mlv = set.vectors()[0].0.clone();
    let worst_vec = vec![false; circuit.primary_inputs().len()];

    // Power gating cuts the gated block's standby leakage by roughly the
    // sleep transistor's stack suppression.
    let gating_suppression = 15.0;

    println!("Ablation: self-consistent standby temperature on c880");
    println!(
        "{:>16} {:>10} {:>12} {:>8} {:>10}",
        "standby mode", "T_eq [K]", "P_leak [W]", "iters", "aging"
    );
    relia_bench::rule(62);
    let cases: [(&str, &Vec<bool>, f64, bool); 3] = [
        ("all-0 (worst)", &worst_vec, 1.0, false),
        ("MLV (IVC)", &mlv, 1.0, false),
        ("footer-gated", &mlv, gating_suppression, true),
    ];
    for (label, vector, suppression, gated) in cases {
        // Leakage as a function of die temperature (table rebuilt per T).
        let leak_w = |t: Kelvin| {
            let table = LeakageTable::build(circuit.library(), &devices, t);
            circuit_leakage(&circuit, vector, &table).expect("valid vector") * VDD * die_scale
                / suppression
        };
        match find_equilibrium(&thermal, baseline_watts, leak_w) {
            Equilibrium::Stable {
                temp,
                power,
                iterations,
            } => {
                // Re-run the aging flow at the self-consistent T_standby.
                let cfg = FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("constant"), temp)
                    .expect("valid schedule");
                let a = AgingAnalysis::new(&cfg, &circuit).expect("valid analysis");
                let policy = if gated {
                    StandbyPolicy::PowerGatedFooter
                } else {
                    StandbyPolicy::InputVector(vector.clone())
                };
                let report = a.run(&policy).expect("run");
                println!(
                    "{:>16} {:>10.1} {:>12.2} {:>8} {:>10}",
                    label,
                    temp.0,
                    power - baseline_watts,
                    iterations,
                    pct(report.degradation_fraction())
                );
            }
            Equilibrium::ThermalRunaway { reached } => {
                println!("{:>16} runaway past {:.0} K", label, reached.0);
            }
        }
    }
    println!();
    println!("(vector choice barely moves the die temperature — the leakage spread is");
    println!(" ~1% at circuit scale — but power gating cools the standby die by a few");
    println!(" kelvin on top of removing all PMOS stress: the two ST benefits compound)");
}

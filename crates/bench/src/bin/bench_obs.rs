//! `bench_obs` — measures the observability hot path and maintains the
//! committed `BENCH_obs.json` record.
//!
//! ```text
//! bench_obs            measure and print (no file IO)
//! bench_obs --write    re-measure and rewrite BENCH_obs.json
//! bench_obs --check    re-measure and gate against the committed file
//! ```
//!
//! The observability claim under test: instrumentation must be *free
//! enough to leave on*. Recording one span into the ring (id allocation +
//! slot `try_lock` + store, the whole tracer-owned cost) stays under
//! [`MAX_SPAN_NS`], and a histogram sample (`ilog2` + three relaxed adds)
//! under the same bound — otherwise tracing a hot request path would
//! distort the very latencies it reports. The monotonic clock read and
//! the full RAII guard path (two clock reads + a record) are reported
//! alongside and drift-checked, but not bounded: `clock_gettime` cost is
//! the platform's, not the tracer's, and varies per machine. `--check`
//! fails (exit 1) when the fresh measurement or the committed record
//! breaks the bound, or when committed numbers drift outside a generous
//! tolerance band of fresh ones (machine noise is expected; a slow record
//! path is not). Flag mistakes exit 2.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use relia_obs::Clock;
use relia_obs::{LatencyHist, MonotonicClock, Tracer};

/// Records timed per path; the reported number is ns/record.
const CALLS: usize = 200_000;
/// Timing repetitions; the reported number is the median.
const REPS: usize = 5;
/// Ring recording and histogram recording must stay under 100 ns each,
/// fresh and committed.
const MAX_SPAN_NS: f64 = 100.0;
/// Committed ns/record may differ from a fresh measurement by this
/// factor in either direction before `--check` calls it a drift.
const DRIFT_FACTOR: f64 = 8.0;

struct Record {
    calls: u64,
    span_ns_per_record: f64,
    hist_ns_per_record: f64,
    clock_ns_per_read: f64,
    guard_ns_per_span: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"calls\": {},\n  \"span_ns_per_record\": {:.1},\n  \"hist_ns_per_record\": {:.1},\n  \"clock_ns_per_read\": {:.1},\n  \"guard_ns_per_span\": {:.1}\n}}\n",
            self.calls,
            self.span_ns_per_record,
            self.hist_ns_per_record,
            self.clock_ns_per_read,
            self.guard_ns_per_span
        )
    }
}

/// Pulls `"name": <number>` out of the committed record without a JSON
/// dependency — the file is machine-written by `to_json` above.
fn json_number(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = &text[text.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median ns per call of `op` over [`REPS`] reps of [`CALLS`] calls.
fn time_loop(mut op: impl FnMut(usize)) -> f64 {
    median(
        (0..REPS)
            .map(|rep| {
                let start = Instant::now();
                for i in 0..CALLS {
                    op(rep * CALLS + i);
                }
                start.elapsed().as_nanos() as f64 / CALLS as f64
            })
            .collect(),
    )
}

fn measure() -> Record {
    // The gated path: recording one span into the ring — id allocation,
    // slot try_lock, store. Everything the tracer itself costs.
    let tracer = Tracer::new(1024);
    let span_ns = time_loop(|i| {
        black_box(black_box(&tracer).record("bench", 0, i as u64, 1));
    });
    assert!(tracer.dropped() == 0, "uncontended ring must not drop");

    // Histogram path: ilog2 bucketing + three relaxed adds.
    let hist = LatencyHist::new();
    let hist_ns = time_loop(|i| {
        black_box(&hist).record_ns(black_box((i * 31) as u64));
    });
    assert_eq!(hist.count(), (REPS * CALLS) as u64);

    // Platform context: one monotonic clock read, and the full RAII
    // guard path (start read + finish read + record).
    let clock = MonotonicClock::new();
    let clock_ns = time_loop(|_| {
        black_box(black_box(&clock).now_ns());
    });
    let guard_tracer = Tracer::new(1024);
    let guard_ns = time_loop(|_| {
        black_box(black_box(&guard_tracer).span("bench")).finish();
    });

    Record {
        calls: CALLS as u64,
        span_ns_per_record: span_ns,
        hist_ns_per_record: hist_ns,
        clock_ns_per_read: clock_ns,
        guard_ns_per_span: guard_ns,
    }
}

fn record_path() -> PathBuf {
    // crates/bench -> workspace root, so the record lives next to the
    // figure goldens regardless of the invoking directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json")
}

fn check(fresh: &Record) -> Result<(), String> {
    let path = record_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed = |name: &str| {
        json_number(&text, name).ok_or_else(|| format!("committed record lacks {name}"))
    };
    let committed_span = committed("span_ns_per_record")?;
    let committed_hist = committed("hist_ns_per_record")?;
    let committed_clock = committed("clock_ns_per_read")?;
    let committed_guard = committed("guard_ns_per_span")?;
    for (what, value) in [
        ("committed span record", committed_span),
        ("measured span record", fresh.span_ns_per_record),
        ("committed hist record", committed_hist),
        ("measured hist record", fresh.hist_ns_per_record),
    ] {
        if value > MAX_SPAN_NS {
            return Err(format!(
                "{what} cost {value:.0} ns exceeds the {MAX_SPAN_NS:.0} ns bound"
            ));
        }
    }
    for (name, committed, measured) in [
        (
            "span_ns_per_record",
            committed_span,
            fresh.span_ns_per_record,
        ),
        (
            "hist_ns_per_record",
            committed_hist,
            fresh.hist_ns_per_record,
        ),
        (
            "clock_ns_per_read",
            committed_clock,
            fresh.clock_ns_per_read,
        ),
        (
            "guard_ns_per_span",
            committed_guard,
            fresh.guard_ns_per_span,
        ),
    ] {
        let ratio = if measured > committed {
            measured / committed
        } else {
            committed / measured
        };
        if !(ratio.is_finite() && ratio <= DRIFT_FACTOR) {
            return Err(format!(
                "{name} drifted: committed {committed:.1}, measured {measured:.1} \
                 (beyond {DRIFT_FACTOR:.0}x tolerance; rerun with --write on this machine)"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        None => "print",
        Some("--write") => "write",
        Some("--check") => "check",
        Some(other) => {
            eprintln!("bench_obs: unknown flag {other}");
            eprintln!("usage: bench_obs [--write | --check]");
            return ExitCode::from(2);
        }
    };

    let fresh = measure();
    println!("obs hot-path bench: {CALLS} records (median of {REPS} reps)");
    println!(
        "span ring record  : {:>8.1} ns/record",
        fresh.span_ns_per_record
    );
    println!(
        "hist record       : {:>8.1} ns/record",
        fresh.hist_ns_per_record
    );
    println!(
        "clock read        : {:>8.1} ns/read   (platform cost, unbounded)",
        fresh.clock_ns_per_read
    );
    println!(
        "full span guard   : {:>8.1} ns/span   (2 clock reads + 1 record)",
        fresh.guard_ns_per_span
    );

    match mode {
        "write" => {
            let path = record_path();
            if let Err(e) = std::fs::write(&path, fresh.to_json()) {
                eprintln!("bench_obs: cannot write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        "check" => match check(&fresh) {
            Ok(()) => {
                println!("check: committed record within tolerance, span-cost gate held");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_obs: {e}");
                ExitCode::from(1)
            }
        },
        _ => ExitCode::SUCCESS,
    }
}

//! Ablation — how much of the internal-node-control potential (Table 4) do
//! a handful of real control points realize?
//!
//! Table 4's "potential" assumes every internal node can be driven; Lin
//! et al.'s control-point insertion pays per point. This curve shows the
//! realized fraction of the potential versus the control-point budget.

use relia_bench::pct;
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_ivc::greedy_control_points;
use relia_netlist::iscas;

fn main() {
    println!("Ablation: realized INC potential vs control-point budget (RAS = 1:9, 330 K)");
    println!(
        "{:>8} {:>10} {:>10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>10}",
        "circuit", "worst", "ideal", "cp=1", "cp=2", "cp=4", "cp=8", "cp=16", "realized"
    );
    relia_bench::rule(84);
    for name in ["c432", "c880", "c1355"] {
        let circuit = iscas::circuit(name).expect("known benchmark");
        let config = FlowConfig::paper_defaults().expect("built-in");
        let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");
        let zeros = vec![false; circuit.primary_inputs().len()];
        let steps = greedy_control_points(&analysis, &zeros, 16).expect("selector runs");
        let ideal = analysis
            .run(&StandbyPolicy::AllInternalOne)
            .expect("run")
            .degradation_fraction();
        let base = steps[0].degradation;
        let at = |k: usize| {
            steps
                .get(k)
                .map(|s| s.degradation)
                .unwrap_or_else(|| steps.last().expect("nonempty").degradation)
        };
        let realized = if base - ideal > 0.0 {
            (base - at(16)) / (base - ideal)
        } else {
            1.0
        };
        println!(
            "{:>8} {:>10} {:>10} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>9.0}%",
            name,
            pct(base),
            pct(ideal),
            at(1) * 100.0,
            at(2) * 100.0,
            at(4) * 100.0,
            at(8) * 100.0,
            at(16) * 100.0,
            realized * 100.0
        );
    }
    println!();
    println!("(a handful of control points on the aged critical path recovers most of");
    println!(" the gap toward the idealized all-'1' bound — the practical route the");
    println!(" paper points to when plain IVC falls short)");
}

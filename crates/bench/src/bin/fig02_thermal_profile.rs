//! Fig. 2 — thermal profile of a task set on a typical processor.
//!
//! Random tasks draw 10–130 W (the Montecito-like spread); under the
//! air-cooled RC model the die temperature swings across roughly
//! 45–110 °C and converges within milliseconds of each task switch.

use relia_thermal::{RcThermalModel, TaskSet};

fn main() {
    let model = RcThermalModel::air_cooled();
    let tasks = TaskSet::random(14, 2007);
    let trace = model.simulate(tasks.profile(), 2.0e-3);

    println!("Fig. 2: thermal profile of a random task set (air cooling)");
    println!(
        "tau = {:.1} ms, ambient = {:.1} C",
        model.time_constant() * 1e3,
        model.ambient.to_celsius()
    );
    println!("{:>10} {:>10} {:>10}", "t [s]", "P [W]", "T [C]");
    relia_bench::rule(34);
    for p in trace.iter().step_by(25) {
        println!(
            "{:>10.3} {:>10.1} {:>10.1}",
            p.time,
            p.power,
            p.temp.to_celsius()
        );
    }
    let min = trace
        .iter()
        .map(|p| p.temp.to_celsius())
        .fold(f64::MAX, f64::min);
    let max = trace
        .iter()
        .map(|p| p.temp.to_celsius())
        .fold(f64::MIN, f64::max);
    println!();
    println!("temperature range: {min:.1} C .. {max:.1} C (paper: ~60-110 C)");
}

//! Fig. 3 — ΔV_th over time for different active:standby ratios (RAS).
//!
//! `T_active = 400 K`; the reference line keeps `T_standby = 400 K`, all
//! other lines use 330 K. Active-mode signal probability 0.5; the standby
//! vector holds the PMOS gate low (worst case). The cooler the standby and
//! the larger its share, the smaller the shift.

use relia_bench::{log_times, schedule};
use relia_core::{NbtiModel, PmosStress};

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let stress = PmosStress::worst_case();
    let ras_list: [(f64, f64); 5] = [(1.0, 1.0), (1.0, 3.0), (1.0, 5.0), (1.0, 7.0), (1.0, 9.0)];

    println!("Fig. 3: dVth vs time under different RAS (T_a = 400 K, T_s = 330 K)");
    print!("{:>12} {:>12}", "time [s]", "400K/400K");
    for (a, s) in ras_list {
        print!(" {:>9}", format!("{a:.0}:{s:.0}"));
    }
    println!();
    relia_bench::rule(78);

    let reference = schedule(1.0, 1.0, 400.0);
    for t in log_times(1.0e4, 1.0e8, 9) {
        let ref_dv = model
            .delta_vth(t, &reference, &stress)
            .expect("valid inputs");
        print!("{:>12.3e} {:>11.2}m", t.0, ref_dv * 1e3);
        for (a, s) in ras_list {
            let dv = model
                .delta_vth(t, &schedule(a, s, 330.0), &stress)
                .expect("valid inputs");
            print!(" {:>8.2}m", dv * 1e3);
        }
        println!();
    }
    println!();
    println!("(values in mV; larger standby share at 330 K => smaller shift)");
}

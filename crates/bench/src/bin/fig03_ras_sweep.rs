//! Fig. 3 — ΔV_th over time for different active:standby ratios (RAS).
//!
//! `T_active = 400 K`; the reference line keeps `T_standby = 400 K`, all
//! other lines use 330 K. Active-mode signal probability 0.5; the standby
//! vector holds the PMOS gate low (worst case). The cooler the standby and
//! the larger its share, the smaller the shift.
//!
//! Driven by the `relia-jobs` sweep engine: the grid is a [`SweepSpec`],
//! evaluated by the parallel worker pool with memoization. The engine's
//! quantized-key evaluation reproduces the direct model calls to well below
//! the 0.01 mV print resolution, so the output is byte-identical to the
//! pre-engine version of this binary.

use relia_bench::{log_times, model_sweep_grid, rule};
use relia_core::Kelvin;

fn main() {
    let ras_list: [(f64, f64); 5] = [(1.0, 1.0), (1.0, 3.0), (1.0, 5.0), (1.0, 7.0), (1.0, 9.0)];
    let times = log_times(1.0e4, 1.0e8, 9);

    // Two grids: the 400 K/400 K reference line, then the RAS x 330 K fan.
    let reference = model_sweep_grid(&[(1.0, 1.0)], &[Kelvin(400.0)], &times);
    let fan = model_sweep_grid(&ras_list, &[Kelvin(330.0)], &times);

    println!("Fig. 3: dVth vs time under different RAS (T_a = 400 K, T_s = 330 K)");
    print!("{:>12} {:>12}", "time [s]", "400K/400K");
    for (a, s) in ras_list {
        print!(" {:>9}", format!("{a:.0}:{s:.0}"));
    }
    println!();
    rule(78);

    for (i, t) in times.iter().enumerate() {
        print!("{:>12.3e} {:>11.2}m", t.0, reference[i] * 1e3);
        for r in 0..ras_list.len() {
            // Grid order is ras-major, lifetime-minor.
            print!(" {:>8.2}m", fan[r * times.len() + i] * 1e3);
        }
        println!();
    }
    println!();
    println!("(values in mV; larger standby share at 330 K => smaller shift)");
}

//! `bench_serve` — measures the overload-control answer paths and
//! maintains the committed `BENCH_serve.json` record.
//!
//! ```text
//! bench_serve            measure and print (no file IO)
//! bench_serve --write    re-measure and rewrite BENCH_serve.json
//! bench_serve --check    re-measure and gate against the committed file
//! ```
//!
//! The serving claim under test: shedding must be *cheap*. A browned-out
//! server answers a cold query with a fast 503 whose full dispatch cost
//! (routing, gating, rendering, jittered Retry-After) stays under
//! [`MAX_SHED_NS`] — otherwise overload control would itself be the
//! overload. `--check` fails (exit 1) when the fresh measurement or the
//! committed record breaks that bound, or when the committed numbers
//! drift outside a generous tolerance band of the fresh ones (machine
//! noise is expected; a regression of the shed path is not). Flag
//! mistakes exit 2.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use relia_core::{CancelToken, Deadline, Kelvin};
use relia_serve::{handle, DegradeQuery, Endpoint, EvalGate, OverloadConfig, Request, ServeState};

/// Dispatches timed per path; the reported number is ns/request.
const CALLS: usize = 20_000;
/// Timing repetitions; the reported number is the median.
const REPS: usize = 5;
/// The breaker fast-path shed must answer in under 10 µs, fresh and
/// committed.
const MAX_SHED_NS: f64 = 10_000.0;
/// Committed ns/request may differ from a fresh measurement by this
/// factor in either direction before `--check` calls it a drift.
const DRIFT_FACTOR: f64 = 8.0;

const QUERY: DegradeQuery = DegradeQuery {
    ras: (1.0, 9.0),
    t_standby_k: Kelvin(330.0),
    lifetime_s: 1.0e8,
    p_active: 0.5,
    p_standby: 1.0,
};

struct Record {
    calls: u64,
    shed_ns_per_request: f64,
    cache_hit_ns_per_request: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"calls\": {},\n  \"shed_ns_per_request\": {:.1},\n  \"cache_hit_ns_per_request\": {:.1}\n}}\n",
            self.calls, self.shed_ns_per_request, self.cache_hit_ns_per_request
        )
    }
}

/// Pulls `"name": <number>` out of the committed record without a JSON
/// dependency — the file is machine-written by `to_json` above.
fn json_number(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = &text[text.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn degrade_request(body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        target: "/v1/degrade".to_owned(),
        http11: true,
        headers: vec![],
        body: body.as_bytes().to_vec(),
    }
}

fn deadline() -> Deadline {
    Deadline::new(CancelToken::new(), Instant::now() + Duration::from_secs(60))
}

/// Median ns per `handle()` dispatch against `state`, asserting every
/// response carries `status`.
fn time_dispatch(state: &ServeState, request: &Request, status: u16) -> f64 {
    median(
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..CALLS {
                    let (response, _) = handle(black_box(state), request, &deadline());
                    assert_eq!(response.status, status);
                    black_box(response);
                }
                start.elapsed().as_nanos() as f64 / CALLS as f64
            })
            .collect(),
    )
}

fn measure() -> Record {
    let body = QUERY.to_body();
    let request = degrade_request(&body);
    let tripped_overload = || OverloadConfig {
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(3600),
        ..OverloadConfig::default()
    };

    // Breaker fast-path shed: open breaker, cold key → 503.
    let shedding = ServeState::new(Duration::from_secs(60))
        .expect("builtin calibration is valid")
        .with_overload(tripped_overload());
    shedding
        .overload
        .settle(Endpoint::Degrade, 500, Instant::now());
    let shed_ns = time_dispatch(&shedding, &request, 503);

    // Brownout cache hit: open breaker, memoized key → full 200.
    let browned = ServeState::new(Duration::from_secs(60))
        .expect("builtin calibration is valid")
        .with_overload(tripped_overload());
    let (warm, _) = handle(&browned, &request, &deadline());
    assert_eq!(warm.status, 200, "warms the memo cache");
    browned
        .overload
        .settle(Endpoint::Degrade, 500, Instant::now());
    assert_eq!(
        browned.overload.gate(Endpoint::Degrade, Instant::now()),
        EvalGate::CacheOnly
    );
    let cache_hit_ns = time_dispatch(&browned, &request, 200);

    Record {
        calls: CALLS as u64,
        shed_ns_per_request: shed_ns,
        cache_hit_ns_per_request: cache_hit_ns,
    }
}

fn record_path() -> PathBuf {
    // crates/bench -> workspace root, so the record lives next to the
    // figure goldens regardless of the invoking directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json")
}

fn check(fresh: &Record) -> Result<(), String> {
    let path = record_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed_shed = json_number(&text, "shed_ns_per_request")
        .ok_or("committed record lacks shed_ns_per_request")?;
    let committed_hit = json_number(&text, "cache_hit_ns_per_request")
        .ok_or("committed record lacks cache_hit_ns_per_request")?;
    if committed_shed > MAX_SHED_NS {
        return Err(format!(
            "committed shed cost {committed_shed:.0} ns exceeds the {MAX_SHED_NS:.0} ns bound"
        ));
    }
    if fresh.shed_ns_per_request > MAX_SHED_NS {
        return Err(format!(
            "measured shed cost {:.0} ns exceeds the {MAX_SHED_NS:.0} ns bound",
            fresh.shed_ns_per_request
        ));
    }
    for (name, committed, measured) in [
        (
            "shed_ns_per_request",
            committed_shed,
            fresh.shed_ns_per_request,
        ),
        (
            "cache_hit_ns_per_request",
            committed_hit,
            fresh.cache_hit_ns_per_request,
        ),
    ] {
        let ratio = if measured > committed {
            measured / committed
        } else {
            committed / measured
        };
        if !(ratio.is_finite() && ratio <= DRIFT_FACTOR) {
            return Err(format!(
                "{name} drifted: committed {committed:.1}, measured {measured:.1} \
                 (beyond {DRIFT_FACTOR:.0}x tolerance; rerun with --write on this machine)"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        None => "print",
        Some("--write") => "write",
        Some("--check") => "check",
        Some(other) => {
            eprintln!("bench_serve: unknown flag {other}");
            eprintln!("usage: bench_serve [--write | --check]");
            return ExitCode::from(2);
        }
    };

    let fresh = measure();
    println!("serve overload bench: {CALLS} dispatches (median of {REPS} reps)");
    println!(
        "breaker shed (503)  : {:>8.1} ns/request",
        fresh.shed_ns_per_request
    );
    println!(
        "brownout hit (200)  : {:>8.1} ns/request",
        fresh.cache_hit_ns_per_request
    );

    match mode {
        "write" => {
            let path = record_path();
            if let Err(e) = std::fs::write(&path, fresh.to_json()) {
                eprintln!("bench_serve: cannot write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        "check" => match check(&fresh) {
            Ok(()) => {
                println!("check: committed record within tolerance, shed-cost gate held");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_serve: {e}");
                ExitCode::from(1)
            }
        },
        _ => ExitCode::SUCCESS,
    }
}

//! Table 1 — ΔV_th (mV) at 10^8 s under different active:standby ratios
//! and standby temperatures.
//!
//! The paper's three observations, all reproduced here:
//! * at `T_standby = 400 K` the shift *grows* as the standby share grows
//!   (more total stress time);
//! * at `T_standby = 330 K` it *shrinks* (the extra time is too cool to
//!   diffuse hydrogen);
//! * near `T_standby = 370 K` the two effects cancel and the shift is
//!   insensitive to RAS;
//! * the 400 K-vs-330 K gap at RAS = 1:9 is ~9 mV.

use relia_bench::schedule;
use relia_core::{Kelvin, NbtiModel, PmosStress, Seconds};

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let stress = PmosStress::worst_case();
    let lifetime = Seconds(1.0e8);
    let ras_list: [(f64, f64); 5] = [(1.0, 1.0), (1.0, 3.0), (1.0, 5.0), (1.0, 7.0), (1.0, 9.0)];
    let temps = [400.0, 370.0, 330.0];

    println!("Table 1: dVth (mV) at 1e8 s, T_active = 400 K, SP = 0.5, standby input '0'");
    print!("{:>10}", "RAS");
    for temp in temps {
        print!(" {:>12}", format!("Ts={temp:.0}K"));
    }
    println!();
    relia_bench::rule(50);

    let mut at_19 = [0.0f64; 3];
    for (a, s) in ras_list {
        print!("{:>10}", format!("{a:.0}:{s:.0}"));
        for (ti, temp) in temps.iter().enumerate() {
            let dv = model
                .delta_vth(lifetime, &schedule(a, s, Kelvin(*temp)), &stress)
                .expect("valid inputs");
            if (a, s) == (1.0, 9.0) {
                at_19[ti] = dv;
            }
            print!(" {:>11.2}m", dv * 1e3);
        }
        println!();
    }
    println!();
    println!(
        "gap at RAS 1:9 between Ts=400K and Ts=330K: {:.1} mV (paper: ~9.4 mV)",
        (at_19[0] - at_19[2]) * 1e3
    );
}

//! Ablation — circuit-level dual-V_th assignment: leakage and aging saved
//! per unit of delay budget (the design-time technique the paper's
//! Section 4.1 resemblance argument motivates).

use relia_bench::pct;
use relia_flow::{assign_dual_vth, AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_netlist::iscas;

fn main() {
    println!("Ablation: greedy dual-Vth assignment (Vth_high = 0.30 V, worst-case standby)");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "circuit", "budget", "coverage", "leak save", "aging save", "delay [ps]"
    );
    relia_bench::rule(68);
    for name in ["c432", "c880"] {
        let circuit = iscas::circuit(name).expect("known benchmark");
        let config = FlowConfig::paper_defaults().expect("built-in");
        let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");
        let zeros = vec![false; circuit.primary_inputs().len()];
        for budget in [0.0, 0.03, 0.08, 0.15] {
            let r = assign_dual_vth(
                &analysis,
                &StandbyPolicy::AllInternalZero,
                &zeros,
                0.30,
                budget,
            )
            .expect("assignment runs");
            println!(
                "{:>8} {:>7.0}% {:>9.0}% {:>10} {:>12} {:>12.1}",
                name,
                budget * 100.0,
                r.coverage(circuit.gates().len()) * 100.0,
                pct(r.leakage_saving()),
                pct(r.aging_saving()),
                r.nominal_delay_ps.1
            );
        }
    }
    println!();
    println!("(zero budget already buys a large leakage cut from slack-rich gates;");
    println!(" aging relief on the critical path needs explicit delay headroom —");
    println!(" the high-Vth LP-library regime where the paper says NBTI fades)");
}

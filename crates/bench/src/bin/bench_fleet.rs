//! `bench_fleet` — measures the per-sample cost of the scalar NBTI path
//! against the hoisted batch kernel and maintains the committed
//! `BENCH_fleet.json` record.
//!
//! ```text
//! bench_fleet            measure and print (no file IO)
//! bench_fleet --write    re-measure and rewrite BENCH_fleet.json
//! bench_fleet --check    re-measure and gate against the committed file
//! ```
//!
//! `--check` fails (exit 1) when either the fresh measurement or the
//! committed record falls below the required speedup, or when the committed
//! per-sample numbers drift outside a generous tolerance band of the fresh
//! ones (machine noise is expected; a regression of the hoisting itself is
//! not). Flag mistakes exit 2.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use relia_core::{NbtiModel, Volts};
use relia_fleet::{ChunkAccum, FleetEvaluator, FleetSpec, SplitMix64};

/// Fleet size both paths are timed over (the acceptance point).
const SAMPLES: usize = 10_000;
/// Timing repetitions; the reported number is the median.
const REPS: usize = 5;
/// Required batch-over-scalar speedup, fresh and committed.
const MIN_SPEEDUP: f64 = 5.0;
/// Committed ns/sample may differ from a fresh measurement by this factor
/// in either direction before `--check` calls it a drift.
const DRIFT_FACTOR: f64 = 8.0;

struct Record {
    samples: u64,
    times: u64,
    scalar_ns_per_sample: f64,
    batch_ns_per_sample: f64,
    speedup: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"samples\": {},\n  \"times\": {},\n  \"scalar_ns_per_sample\": {:.1},\n  \"batch_ns_per_sample\": {:.1},\n  \"speedup\": {:.1}\n}}\n",
            self.samples, self.times, self.scalar_ns_per_sample, self.batch_ns_per_sample, self.speedup
        )
    }
}

/// Pulls `"name": <number>` out of the committed record without a JSON
/// dependency — the file is machine-written by `to_json` above.
fn json_number(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = &text[text.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn measure() -> Record {
    let spec = {
        let mut s = FleetSpec::paper_defaults().expect("paper defaults are valid");
        s.samples = SAMPLES;
        s
    };
    let model = NbtiModel::ptm90().expect("ptm90 calibration is valid");
    let schedule = spec.schedule().expect("paper schedule is valid");
    let stress = spec.stress().expect("paper stress is valid");
    let eval = FleetEvaluator::prepare(&spec).expect("paper spec prepares");

    // Scalar path: every sample re-derives the full temperature-aware
    // model (Arrhenius terms, AC-recursion setup, equivalent stress time)
    // for each evaluation time.
    let scalar_ns = median(
        (0..REPS)
            .map(|rep| {
                let mut rng = SplitMix64::stream(1, rep as u64);
                let mut sum = 0.0;
                let start = Instant::now();
                for _ in 0..SAMPLES {
                    let vth0 = spec
                        .dist
                        .sample_box_muller(rng.next_f64(), rng.next_f64())
                        .0;
                    for &t in &spec.times {
                        sum += model
                            .delta_vth_with_vth0(t, &schedule, &stress, Volts(vth0))
                            .expect("in-range stress point");
                    }
                }
                let ns = start.elapsed().as_nanos() as f64 / SAMPLES as f64;
                black_box(sum);
                ns
            })
            .collect(),
    );

    // Batch path: the engine's own per-sample tail behind hoisted terms
    // (drawing the same variates plus the accumulator updates).
    let batch_ns = median(
        (0..REPS)
            .map(|rep| {
                let mut rng = SplitMix64::stream(1, rep as u64);
                let mut acc = ChunkAccum::new(spec.times.len());
                let start = Instant::now();
                for _ in 0..SAMPLES {
                    eval.sample_into(&mut rng, &mut acc);
                }
                let ns = start.elapsed().as_nanos() as f64 / SAMPLES as f64;
                black_box(&acc);
                ns
            })
            .collect(),
    );

    Record {
        samples: SAMPLES as u64,
        times: spec.times.len() as u64,
        scalar_ns_per_sample: scalar_ns,
        batch_ns_per_sample: batch_ns,
        speedup: scalar_ns / batch_ns,
    }
}

fn record_path() -> PathBuf {
    // crates/bench -> workspace root, so the record lives next to the
    // figure goldens regardless of the invoking directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fleet.json")
}

fn check(fresh: &Record) -> Result<(), String> {
    let path = record_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed_scalar = json_number(&text, "scalar_ns_per_sample")
        .ok_or("committed record lacks scalar_ns_per_sample")?;
    let committed_batch = json_number(&text, "batch_ns_per_sample")
        .ok_or("committed record lacks batch_ns_per_sample")?;
    let committed_speedup =
        json_number(&text, "speedup").ok_or("committed record lacks speedup")?;
    if committed_speedup < MIN_SPEEDUP {
        return Err(format!(
            "committed speedup {committed_speedup:.1}x is below the required {MIN_SPEEDUP:.1}x"
        ));
    }
    if fresh.speedup < MIN_SPEEDUP {
        return Err(format!(
            "measured speedup {:.1}x is below the required {MIN_SPEEDUP:.1}x",
            fresh.speedup
        ));
    }
    for (name, committed, measured) in [
        (
            "scalar_ns_per_sample",
            committed_scalar,
            fresh.scalar_ns_per_sample,
        ),
        (
            "batch_ns_per_sample",
            committed_batch,
            fresh.batch_ns_per_sample,
        ),
    ] {
        let ratio = if measured > committed {
            measured / committed
        } else {
            committed / measured
        };
        if !(ratio.is_finite() && ratio <= DRIFT_FACTOR) {
            return Err(format!(
                "{name} drifted: committed {committed:.1}, measured {measured:.1} \
                 (beyond {DRIFT_FACTOR:.0}x tolerance; rerun with --write on this machine)"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        None => "print",
        Some("--write") => "write",
        Some("--check") => "check",
        Some(other) => {
            eprintln!("bench_fleet: unknown flag {other}");
            eprintln!("usage: bench_fleet [--write | --check]");
            return ExitCode::from(2);
        }
    };

    let fresh = measure();
    println!(
        "fleet bench: {} samples x {} times (median of {REPS} reps)",
        fresh.samples, fresh.times
    );
    println!("scalar : {:>10.1} ns/sample", fresh.scalar_ns_per_sample);
    println!("batch  : {:>10.1} ns/sample", fresh.batch_ns_per_sample);
    println!("speedup: {:>10.1}x", fresh.speedup);

    match mode {
        "write" => {
            let path = record_path();
            if let Err(e) = std::fs::write(&path, fresh.to_json()) {
                eprintln!("bench_fleet: cannot write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        "check" => match check(&fresh) {
            Ok(()) => {
                println!("check: committed record within tolerance, speedup gate held");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_fleet: {e}");
                ExitCode::from(1)
            }
        },
        _ => ExitCode::SUCCESS,
    }
}

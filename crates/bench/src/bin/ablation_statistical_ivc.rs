//! Ablation — is the co-optimal MLV choice robust under process variation?
//!
//! The paper's closing discussion argues the leakage/NBTI co-optimization
//! remains valid on a statistical platform. This ablation evaluates the
//! MLV set's candidates across a Monte-Carlo threshold population and
//! checks whether the nominally-best vector stays best in the mean and at
//! the +3σ corner.

use relia_core::Seconds;
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy, VariationConfig, VariationStudy};
use relia_ivc::{search_mlv_set, MlvSearchConfig};
use relia_netlist::iscas;

fn main() {
    let circuit = iscas::circuit("c432").expect("known benchmark");
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");
    let set = search_mlv_set(
        &analysis,
        &MlvSearchConfig {
            max_set_size: 5,
            ..MlvSearchConfig::default()
        },
    )
    .expect("search");
    let var = VariationConfig {
        samples: 120,
        ..VariationConfig::paper_defaults().expect("built-in")
    };
    let times = [Seconds(1.0e8)];

    println!(
        "Ablation: MLV robustness under Vth variation (c432, {} samples)",
        var.samples
    );
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "MLV#", "leak [uA]", "mean [ps]", "sigma", "mu+3s [ps]"
    );
    relia_bench::rule(58);
    let mut rows = Vec::new();
    for (i, (v, leak)) in set.vectors().iter().enumerate() {
        let pts = VariationStudy::run(
            &analysis,
            &StandbyPolicy::InputVector(v.clone()),
            &var,
            &times,
        )
        .expect("study");
        let d = pts[0].delay;
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>10.3} {:>12.2}",
            i,
            leak * 1e6,
            d.mean,
            d.std_dev,
            d.upper(3.0)
        );
        rows.push((i, d.mean, d.upper(3.0)));
    }
    let best_mean = rows
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty");
    let best_corner = rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("nonempty");
    println!();
    println!(
        "best by mean: MLV#{}; best by +3-sigma corner: MLV#{} -> ranking {}",
        best_mean.0,
        best_corner.0,
        if best_mean.0 == best_corner.0 {
            "STABLE under variation (the paper's statistical-platform claim)"
        } else {
            "shifts at the corner"
        }
    );
}

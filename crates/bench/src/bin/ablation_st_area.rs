//! Ablation — sleep-transistor area: block-based (BBSTI) clustering
//! granularity versus fine-grain (FGSTI) insertion, with and without the
//! NBTI end-of-life margin.
//!
//! The BBSTI literature's mutual-exclusion insight (gates at different
//! logic levels don't peak simultaneously) makes coarse blocks cheap; FGSTI
//! recovers area on slack-rich gates instead. The NBTI margin (Fig. 9)
//! applies on top of either.

use relia_bench::schedule;
use relia_core::{Kelvin, NbtiModel, Seconds};
use relia_netlist::iscas;
use relia_sleep::{bbsti_blocks, fgsti_sizes, StSizing};
use relia_sta::TimingAnalysis;

fn main() {
    let circuit = iscas::circuit("c880").expect("known benchmark");
    let timing = TimingAnalysis::nominal(&circuit);
    let sizing = StSizing::paper_defaults(0.05, 0.30).expect("valid sizing");
    let model = NbtiModel::ptm90().expect("built-in");

    println!(
        "Ablation: ST area on c880 ({} gates), beta = 5%, VthST = 0.30 V",
        circuit.gates().len()
    );
    println!("{:>14} {:>8} {:>14}", "strategy", "blocks", "area [W/L]");
    relia_bench::rule(40);
    for block_size in [256, 64, 16, 4] {
        let blocks = bbsti_blocks(&circuit, &timing, &sizing, block_size);
        let area: f64 = blocks.iter().map(|b| b.st_size).sum();
        println!(
            "{:>14} {:>8} {:>14.0}",
            format!("BBSTI/{block_size}"),
            blocks.len(),
            area
        );
    }
    let fg: f64 = fgsti_sizes(&circuit, &timing, &sizing).iter().sum();
    println!("{:>14} {:>8} {:>14.0}", "FGSTI", circuit.gates().len(), fg);

    // The NBTI margin on a PMOS header implementation.
    let dv = sizing
        .st_delta_vth(&model, &schedule(1.0, 9.0, Kelvin(330.0)), Seconds(1.0e8))
        .expect("valid");
    let margin = sizing.nbti_size_margin(dv).expect("bounded");
    println!();
    println!(
        "PMOS-header NBTI margin at end of life: +{:.2}% on every ST above",
        margin * 100.0
    );
}

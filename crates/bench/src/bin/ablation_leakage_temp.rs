//! Ablation — circuit leakage versus temperature and the stack effect's
//! temperature dependence.
//!
//! The paper evaluates leakage at a single 400 K point; this sweep shows
//! the exponential temperature dependence the IVC technique rides on, and
//! how the stacking effect that MLVs exploit *weakens* as the die heats.

use relia_bench::ua;
use relia_cells::{Library, MosType};
use relia_core::Kelvin;
use relia_leakage::solver::stack_factor;
use relia_leakage::{circuit_leakage, DeviceModels, LeakageTable};
use relia_netlist::iscas;

fn main() {
    let circuit = iscas::circuit("c880").expect("known benchmark");
    let models = DeviceModels::ptm90();
    let lib = Library::ptm90();
    let zeros = vec![false; circuit.primary_inputs().len()];
    let ones = vec![true; circuit.primary_inputs().len()];

    println!("Ablation: c880 leakage vs temperature");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "T [K]", "leak(all-0)", "leak(all-1)", "ratio", "2-stack sup."
    );
    relia_bench::rule(62);
    for temp in [300.0, 330.0, 360.0, 400.0] {
        let table = LeakageTable::build(&lib, &models, Kelvin(temp));
        let lo = circuit_leakage(&circuit, &zeros, &table).expect("valid");
        let hi = circuit_leakage(&circuit, &ones, &table).expect("valid");
        let (a, b) = if lo < hi { (lo, hi) } else { (hi, lo) };
        let sup = stack_factor(&models, MosType::Nmos, 2, Kelvin(temp));
        println!(
            "{:>8.0} {:>14} {:>14} {:>10.2} {:>11.1}x",
            temp,
            ua(lo),
            ua(hi),
            b / a,
            sup
        );
    }
    println!();
    println!("(leakage grows ~10x from 300 K to 400 K; the stack suppression the MLV");
    println!(" exploits weakens with temperature, so hot standby erodes IVC's savings)");
}

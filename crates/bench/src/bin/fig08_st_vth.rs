//! Fig. 8 — PMOS sleep-transistor threshold degradation versus its initial
//! threshold and the active:standby ratio.
//!
//! The header ST is stressed exactly while the circuit is *active* (its
//! gate is low to power the logic) and relaxes in standby, so its shift
//! grows with the active share and with a lower initial threshold
//! (eq. 23's overdrive dependence). Paper range: ~6.7 mV to ~30.3 mV.

use relia_bench::schedule;
use relia_core::{Kelvin, NbtiModel, Seconds};
use relia_sleep::StSizing;

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let lifetime = Seconds(1.0e8);
    let vths = [0.20, 0.25, 0.30, 0.35, 0.40];
    let ras_list: [(f64, f64); 5] = [(9.0, 1.0), (5.0, 1.0), (1.0, 1.0), (1.0, 5.0), (1.0, 9.0)];

    println!("Fig. 8: PMOS ST dVth (mV) vs initial Vth and RAS (1e8 s)");
    print!("{:>10}", "Vth0 [V]");
    for (a, s) in ras_list {
        print!(" {:>9}", format!("{a:.0}:{s:.0}"));
    }
    println!();
    relia_bench::rule(62);

    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for vth in vths {
        print!("{:>10.2}", vth);
        for (a, s) in ras_list {
            let sizing = StSizing::paper_defaults(0.05, vth).expect("valid sizing");
            let dv = sizing
                .st_delta_vth(&model, &schedule(a, s, Kelvin(330.0)), lifetime)
                .expect("valid inputs");
            lo = lo.min(dv);
            hi = hi.max(dv);
            print!(" {:>8.1}m", dv * 1e3);
        }
        println!();
    }
    println!();
    println!(
        "range: {:.1} .. {:.1} mV (paper: 6.7 .. 30.3 mV)",
        lo * 1e3,
        hi * 1e3
    );
}

//! Table 2 — per-input-vector leakage and NBTI-induced delay degradation
//! for NOR2, NOR3, and INV.
//!
//! Leakage is evaluated at 400 K; the NBTI column uses RAS = 1:9,
//! `T_active = 400 K`, `T_standby = 330 K`, 0.5 active signal probability,
//! and the listed vector as the frozen standby state.
//!
//! The co-optimization conflict shows directly: for NOR gates the
//! minimum-leakage vector (all '1') is also the minimum-degradation vector;
//! for INV (and the NAND/AND family) the minimum-leakage vector '0' is the
//! *worst* NBTI vector.

use relia_bench::{na, pct, schedule};
use relia_cells::{Library, Vector};
use relia_core::{DelayDegradation, Kelvin, NbtiModel, PmosStress, Seconds};
use relia_leakage::{cell_leakage, DeviceModels};

fn main() {
    let lib = Library::ptm90();
    let models = DeviceModels::ptm90();
    let nbti = NbtiModel::ptm90().expect("built-in calibration");
    let sched = schedule(1.0, 9.0, Kelvin(330.0));
    let lifetime = Seconds(1.0e8);
    let dd = DelayDegradation::new(nbti.params());

    println!("Table 2: leakage and NBTI delay degradation per standby input vector");
    println!("(leakage at 400 K; NBTI with RAS = 1:9, T_a = 400 K, T_s = 330 K, 1e8 s)\n");

    for name in ["NOR2", "NOR3", "INV", "NAND2"] {
        let cell = lib.cell(lib.find(name).expect("catalog cell"));
        println!("{name}:");
        println!(
            "{:>8} {:>14} {:>12} {:>16}",
            "vector", "leakage", "dDelay", "stressed PMOS"
        );
        relia_bench::rule(54);
        let sp = vec![0.5; cell.num_pins()];
        let active = cell.stress_probabilities(&sp);
        for v in Vector::all(cell.num_pins()) {
            let pins = v.to_bools();
            let leak = cell_leakage(cell, &pins, &models, Kelvin(400.0)).total();
            let standby = cell.stressed_pmos(&pins);
            let mut worst_dv: f64 = 0.0;
            for (pi, &p_active) in active.iter().enumerate() {
                let stress = PmosStress::new(p_active, if standby[pi] { 1.0 } else { 0.0 })
                    .expect("valid probabilities");
                let dv = nbti
                    .delta_vth(lifetime, &sched, &stress)
                    .expect("valid inputs");
                worst_dv = worst_dv.max(dv);
            }
            let frac = dd.linear(worst_dv).expect("bounded shift");
            let stressed = standby.iter().filter(|&&s| s).count();
            println!(
                "{:>8} {:>14} {:>12} {:>10}/{}",
                v.to_string(),
                na(leak),
                pct(frac),
                stressed,
                standby.len()
            );
        }
        println!();
    }
    println!("NOR family: min-leakage vector == min-NBTI vector");
    println!("INV/NAND family: min-leakage vector == WORST-NBTI vector");
}

//! Fig. 5 — C432 circuit delay degradation versus the device-level
//! threshold degradation, over time and across standby temperatures.
//!
//! The circuit-level degradation is considerably smaller than the raw
//! device V_th degradation (the gate delay only scales by
//! `α·ΔV_th/(V_dd − V_th)`), and the standby temperature opens a visible
//! delay gap.

use relia_bench::{log_times, pct};
use relia_core::{Kelvin, NbtiModel, PmosStress, Ras};
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_netlist::iscas;

fn main() {
    let circuit = iscas::circuit("c432").expect("known benchmark");
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let temps = [330.0, 350.0, 370.0, 400.0];
    let times = log_times(1.0e5, 1.0e8, 7);

    println!("Fig. 5: C432 delay degradation vs PMOS dVth (RAS = 1:9, worst-case standby)");
    print!("{:>12} {:>12}", "time [s]", "dVth@330K");
    for temp in temps {
        print!(" {:>11}", format!("delay@{temp:.0}K"));
    }
    println!();
    relia_bench::rule(74);

    // One prepared analysis per temperature (leakage table reuse).
    let configs: Vec<FlowConfig> = temps
        .iter()
        .map(|&t| {
            FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("constant"), Kelvin(t))
                .expect("valid schedule")
        })
        .collect();
    let analyses: Vec<AgingAnalysis<'_>> = configs
        .iter()
        .map(|c| AgingAnalysis::new(c, &circuit).expect("valid analysis"))
        .collect();

    for t in times {
        let dv = model
            .delta_vth(t, &configs[0].schedule, &PmosStress::worst_case())
            .expect("valid inputs");
        print!("{:>12.3e} {:>11.2}m", t.0, dv * 1e3);
        for analysis in &analyses {
            let shifts = analysis
                .gate_delta_vth_at(&StandbyPolicy::AllInternalZero, t)
                .expect("valid policy");
            let nominal = relia_sta::TimingAnalysis::nominal(&circuit);
            let aged = relia_sta::TimingAnalysis::degraded(
                &circuit,
                &shifts,
                analysis.config().nbti.params(),
            )
            .expect("valid shifts");
            let frac = aged.max_delay_ps() / nominal.max_delay_ps() - 1.0;
            print!(" {:>11}", pct(frac));
        }
        println!();
    }
    println!();
    println!("(circuit degradation << device dVth/Vth0; gap widens with T_standby)");
}

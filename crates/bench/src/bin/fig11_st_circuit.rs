//! Fig. 11 — C432 delay degradation with and without sleep-transistor
//! insertion.
//!
//! Without an ST the worst-case standby (all internal nodes '0') degrades
//! the circuit by 4–7% depending on `T_standby`. With an ST the circuit
//! pays `β` at time zero but ages only through active-mode stress — so a
//! small-β design ends up *faster at 10 years* than the un-gated hot
//! circuit, the paper's headline ST result.

use relia_bench::{log_times, pct};
use relia_core::{Kelvin, Ras, Seconds};
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_netlist::iscas;
use relia_sleep::{SleepTransistorKind, StInsertion, StSizing};

fn main() {
    let circuit = iscas::circuit("c432").expect("known benchmark");
    let temps = [330.0, 370.0, 400.0];
    let betas = [0.05, 0.03, 0.01];
    let times = log_times(1.0e5, 1.0e8, 7);

    println!("Fig. 11: C432 delay increase vs time, with/without ST insertion (RAS = 1:9)");
    print!("{:>12}", "time [s]");
    for temp in temps {
        print!(" {:>10}", format!("noST@{temp:.0}"));
    }
    for beta in betas {
        print!(" {:>10}", format!("ST b={:.0}%", beta * 100.0));
    }
    println!();
    relia_bench::rule(80);

    // Un-gated analyses per temperature.
    let ungated_configs: Vec<FlowConfig> = temps
        .iter()
        .map(|&t| {
            FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("constant"), Kelvin(t))
                .expect("valid schedule")
        })
        .collect();
    let ungated: Vec<AgingAnalysis<'_>> = ungated_configs
        .iter()
        .map(|c| AgingAnalysis::new(c, &circuit).expect("valid analysis"))
        .collect();
    // ST analyses (standby temperature is irrelevant once gated; use 330 K).
    let st_config = FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("constant"), Kelvin(330.0))
        .expect("valid schedule");
    let st_analysis = AgingAnalysis::new(&st_config, &circuit).expect("valid analysis");
    let insertions: Vec<StInsertion> = betas
        .iter()
        .map(|&beta| StInsertion {
            kind: SleepTransistorKind::Footer,
            sizing: StSizing::paper_defaults(beta, 0.30).expect("valid sizing"),
        })
        .collect();

    let nominal = relia_sta::TimingAnalysis::nominal(&circuit).max_delay_ps();
    for &t in &times {
        print!("{:>12.3e}", t.0);
        for analysis in &ungated {
            let dv = analysis
                .gate_delta_vth_at(&StandbyPolicy::AllInternalZero, t)
                .expect("valid policy");
            let aged =
                relia_sta::TimingAnalysis::degraded(&circuit, &dv, analysis.config().nbti.params())
                    .expect("valid shifts");
            print!(" {:>10}", pct(aged.max_delay_ps() / nominal - 1.0));
        }
        for ins in &insertions {
            let pts = ins
                .delay_over_time(&st_analysis, &[t])
                .expect("valid inputs");
            print!(" {:>10}", pct(pts[0].increase_vs_nominal));
        }
        println!();
    }
    println!();

    // The crossover summary at 10 years.
    let t10 = Seconds(1.0e8);
    let hot = &ungated[2];
    let dv = hot
        .gate_delta_vth_at(&StandbyPolicy::AllInternalZero, t10)
        .expect("valid policy");
    let hot_deg = relia_sta::TimingAnalysis::degraded(&circuit, &dv, hot.config().nbti.params())
        .expect("valid shifts")
        .max_delay_ps()
        / nominal
        - 1.0;
    let st1 = insertions[2]
        .delay_over_time(&st_analysis, &[t10])
        .expect("valid inputs")[0]
        .increase_vs_nominal;
    println!(
        "at 1e8 s: un-gated @400K = {}, ST (beta=1%) = {} -> ST circuit is {}",
        pct(hot_deg),
        pct(st1),
        if st1 < hot_deg { "FASTER" } else { "slower" }
    );
}

//! Fig. 1 (detail) — the per-cycle stress/recovery sawtooth.
//!
//! The conceptual half of Fig. 1: within each AC cycle the threshold rises
//! along the `t^(1/4)` stress law and partially recovers along eq. 6,
//! producing the classic sawtooth whose upper envelope the multi-cycle
//! recursion tracks.

use relia_core::rd::{dc_stress, recovery_fraction};

fn main() {
    // Dimensionless sawtooth: A = 1, cycle = 1 s at 50% duty.
    let a = 1.0;
    let duty = 0.5;
    let period = 1.0;
    let cycles = 6;
    let samples_per_phase = 4;

    println!("Fig. 1 (detail): stress/recovery sawtooth, duty = {duty}, unit cycle");
    println!("{:>8} {:>12} {:>10}", "t [s]", "N_it / A", "phase");
    relia_bench::rule(34);

    // Track damage as an equivalent DC stress time so partial recovery
    // carries across cycles.
    let mut eq_stress_time = 0.0f64;
    let mut t = 0.0f64;
    for _ in 0..cycles {
        // Stress phase: equivalent time advances 1:1.
        for k in 1..=samples_per_phase {
            let dt = duty * period * k as f64 / samples_per_phase as f64;
            let n = dc_stress(a, eq_stress_time + dt);
            println!("{:>8.3} {:>12.4} {:>10}", t + dt, n, "stress");
        }
        t += duty * period;
        eq_stress_time += duty * period;
        // Recovery phase: damage decays per eq. 6, then is re-expressed as
        // equivalent stress time for the next cycle.
        let peak = dc_stress(a, eq_stress_time);
        for k in 1..=samples_per_phase {
            let dt = (1.0 - duty) * period * k as f64 / samples_per_phase as f64;
            let frac = recovery_fraction(dt, eq_stress_time).expect("valid phase");
            println!("{:>8.3} {:>12.4} {:>10}", t + dt, peak * frac, "recover");
        }
        t += (1.0 - duty) * period;
        let end_frac =
            recovery_fraction((1.0 - duty) * period, eq_stress_time).expect("valid phase");
        let remaining = peak * end_frac;
        // Invert the power law: the surviving damage equals a DC stress of
        // (N/A)^4 seconds.
        eq_stress_time = (remaining / a).powi(4);
    }
    println!();
    println!("(each cycle climbs along t^(1/4) and gives part of it back — the");
    println!(" upper envelope is what the S_n recursion of eqs. 7-11 tracks)");
}

//! Table 4 — delay degradation of the benchmark suite under NBTI and the
//! potential of internal node control, across standby temperatures.
//!
//! `RAS = 1:9`. Worst case: every internal node '0'; best case: every
//! internal node '1'. Potential = (worst − best)/worst. The paper's trend:
//! the best case is temperature-insensitive (~3.3%), the worst case grows
//! from ~4% at 330 K to ~7.4% at 400 K, so the INC potential grows from
//! ~18% to ~55%.

use relia_bench::{pct, table_suite};
use relia_core::{Kelvin, Ras};
use relia_flow::{AgingAnalysis, FlowConfig};
use relia_ivc::internal_node_potential;
use relia_netlist::iscas;

fn main() {
    let temps = [330.0, 350.0, 370.0, 400.0];

    println!("Table 4: worst/best degradation and INC potential (RAS = 1:9)");
    print!("{:>8} {:>7}", "circuit", "gates");
    for temp in temps {
        print!(
            " {:>9} {:>9} {:>7}",
            format!("w@{temp:.0}"),
            format!("b@{temp:.0}"),
            "pot"
        );
    }
    println!();
    relia_bench::rule(130);

    let mut pot_by_temp = vec![Vec::new(); temps.len()];
    for name in table_suite() {
        let circuit = iscas::circuit(name).expect("known benchmark");
        print!("{:>8} {:>7}", name, circuit.gates().len());
        for (ti, &temp) in temps.iter().enumerate() {
            let config =
                FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("constant"), Kelvin(temp))
                    .expect("valid schedule");
            let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");
            let p = internal_node_potential(&analysis).expect("valid policies");
            print!(
                " {:>9} {:>9} {:>7}",
                pct(p.worst_degradation),
                pct(p.best_degradation),
                format!("{:.0}%", p.potential() * 100.0)
            );
            pot_by_temp[ti].push(p.potential());
        }
        println!();
    }
    relia_bench::rule(130);
    print!("{:>16}", "avg potential");
    for pots in &pot_by_temp {
        let avg = pots.iter().sum::<f64>() / pots.len() as f64;
        print!(" {:>9} {:>9} {:>7}", "", "", format!("{:.0}%", avg * 100.0));
    }
    println!();
    println!();
    println!("(paper: potential 18.1% at 330 K rising to 54.9% at 400 K)");
}

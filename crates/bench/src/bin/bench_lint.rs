//! `bench_lint` — measures the linter's per-line cost and maintains the
//! committed `BENCH_lint.json` record.
//!
//! ```text
//! bench_lint            measure and print (no file IO)
//! bench_lint --write    re-measure and rewrite BENCH_lint.json
//! bench_lint --check    re-measure and gate against the committed file
//! ```
//!
//! The linting claim under test: the scope-aware pipeline must stay cheap
//! enough to run on every `check.sh` invocation and inside the editor
//! loop. The corpus is the committed rule fixtures — every R1–R11
//! positive/suppressed/clean file — repeated to a stable line count, so
//! the measurement covers comment stripping, string literals, pragmas,
//! guard tracking, and every rule's hot path. `--check` fails (exit 1)
//! when the fresh or committed per-line cost breaks the absolute bound,
//! or when the committed numbers drift outside a generous tolerance band
//! of the fresh ones (machine noise is expected; a pipeline regression is
//! not). Flag mistakes exit 2.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use relia_lint::{analyze_source, lexer, FileKind, FileOpts};

/// Full-corpus passes per timing sample.
const PASSES: usize = 40;
/// Timing repetitions; the reported number is the median.
const REPS: usize = 5;
/// How many times the fixture set is concatenated into the corpus.
const CORPUS_REPEAT: usize = 8;
/// Full analysis (lex + scopes + pragmas + all rules) must stay under
/// 20 µs per source line, fresh and committed.
const MAX_ANALYZE_NS: f64 = 20_000.0;
/// Committed ns/line may differ from a fresh measurement by this factor
/// in either direction before `--check` calls it a drift.
const DRIFT_FACTOR: f64 = 8.0;

/// Exercise every rule family: library-kind with handler and job context.
const OPTS: FileOpts = FileOpts {
    kind: FileKind::Library,
    crate_root: false,
    handler: true,
    job: true,
};

/// The committed rule fixtures, one entry per file. `include_str!` pins
/// the corpus at compile time so the measurement is hermetic.
macro_rules! fixture {
    ($name:literal) => {
        (
            $name,
            include_str!(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../lint/tests/fixtures/",
                $name
            )),
        )
    };
}

const FIXTURES: &[(&str, &str)] = &[
    fixture!("r1_positive.rs"),
    fixture!("r1_suppressed.rs"),
    fixture!("r1_clean.rs"),
    fixture!("r2_positive.rs"),
    fixture!("r2_suppressed.rs"),
    fixture!("r2_clean.rs"),
    fixture!("r3_positive.rs"),
    fixture!("r3_suppressed.rs"),
    fixture!("r3_clean.rs"),
    fixture!("r4_positive.rs"),
    fixture!("r4_suppressed.rs"),
    fixture!("r4_clean.rs"),
    fixture!("r5_positive.rs"),
    fixture!("r5_suppressed.rs"),
    fixture!("r5_clean.rs"),
    fixture!("r6_positive.rs"),
    fixture!("r6_suppressed.rs"),
    fixture!("r6_clean.rs"),
    fixture!("r7_positive.rs"),
    fixture!("r7_breaker_positive.rs"),
    fixture!("r7_suppressed.rs"),
    fixture!("r7_clean.rs"),
    fixture!("r8_positive.rs"),
    fixture!("r8_suppressed.rs"),
    fixture!("r8_clean.rs"),
    fixture!("r9_positive_a.rs"),
    fixture!("r9_positive_b.rs"),
    fixture!("r9_suppressed_a.rs"),
    fixture!("r9_suppressed_b.rs"),
    fixture!("r9_clean_a.rs"),
    fixture!("r9_clean_b.rs"),
    fixture!("r10_positive.rs"),
    fixture!("r10_suppressed.rs"),
    fixture!("r10_clean.rs"),
    fixture!("r11_positive.rs"),
    fixture!("r11_suppressed.rs"),
    fixture!("r11_clean.rs"),
    fixture!("stale_pragma.rs"),
    fixture!("bad_pragma.rs"),
];

struct Record {
    lines: u64,
    lex_ns_per_line: f64,
    analyze_ns_per_line: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"lines\": {},\n  \"lex_ns_per_line\": {:.1},\n  \"analyze_ns_per_line\": {:.1}\n}}\n",
            self.lines, self.lex_ns_per_line, self.analyze_ns_per_line
        )
    }
}

/// Pulls `"name": <number>` out of the committed record without a JSON
/// dependency — the file is machine-written by `to_json` above.
fn json_number(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = &text[text.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// The fixture set repeated [`CORPUS_REPEAT`] times, plus the total line
/// count of one full corpus walk.
fn corpus() -> (Vec<(&'static str, &'static str)>, usize) {
    let mut files = Vec::with_capacity(FIXTURES.len() * CORPUS_REPEAT);
    for _ in 0..CORPUS_REPEAT {
        files.extend_from_slice(FIXTURES);
    }
    let lines = files.iter().map(|(_, src)| src.lines().count()).sum();
    (files, lines)
}

fn measure() -> Record {
    let (files, lines) = corpus();
    assert!(lines > 0, "fixture corpus is empty");

    // Lexing alone: the floor every incremental run pays per changed file.
    let lex_ns = median(
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..PASSES {
                    for (_, src) in &files {
                        black_box(lexer::lex(black_box(src)));
                    }
                }
                start.elapsed().as_nanos() as f64 / (PASSES * lines) as f64
            })
            .collect(),
    );

    // Full per-file pipeline: lex, scope tracking, pragmas, all rules.
    let analyze_ns = median(
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..PASSES {
                    for (name, src) in &files {
                        black_box(analyze_source(name, black_box(src), &OPTS));
                    }
                }
                start.elapsed().as_nanos() as f64 / (PASSES * lines) as f64
            })
            .collect(),
    );

    Record {
        lines: lines as u64,
        lex_ns_per_line: lex_ns,
        analyze_ns_per_line: analyze_ns,
    }
}

fn record_path() -> PathBuf {
    // crates/bench -> workspace root, so the record lives next to the
    // figure goldens regardless of the invoking directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_lint.json")
}

fn check(fresh: &Record) -> Result<(), String> {
    let path = record_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed_lex =
        json_number(&text, "lex_ns_per_line").ok_or("committed record lacks lex_ns_per_line")?;
    let committed_analyze = json_number(&text, "analyze_ns_per_line")
        .ok_or("committed record lacks analyze_ns_per_line")?;
    if committed_analyze > MAX_ANALYZE_NS {
        return Err(format!(
            "committed analyze cost {committed_analyze:.0} ns/line exceeds the \
             {MAX_ANALYZE_NS:.0} ns bound"
        ));
    }
    if fresh.analyze_ns_per_line > MAX_ANALYZE_NS {
        return Err(format!(
            "measured analyze cost {:.0} ns/line exceeds the {MAX_ANALYZE_NS:.0} ns bound",
            fresh.analyze_ns_per_line
        ));
    }
    for (name, committed, measured) in [
        ("lex_ns_per_line", committed_lex, fresh.lex_ns_per_line),
        (
            "analyze_ns_per_line",
            committed_analyze,
            fresh.analyze_ns_per_line,
        ),
    ] {
        let ratio = if measured > committed {
            measured / committed
        } else {
            committed / measured
        };
        if !(ratio.is_finite() && ratio <= DRIFT_FACTOR) {
            return Err(format!(
                "{name} drifted: committed {committed:.1}, measured {measured:.1} \
                 (beyond {DRIFT_FACTOR:.0}x tolerance; rerun with --write on this machine)"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        None => "print",
        Some("--write") => "write",
        Some("--check") => "check",
        Some(other) => {
            eprintln!("bench_lint: unknown flag {other}");
            eprintln!("usage: bench_lint [--write | --check]");
            return ExitCode::from(2);
        }
    };

    let fresh = measure();
    println!(
        "lint pipeline bench: {} fixture lines x {PASSES} passes (median of {REPS} reps)",
        fresh.lines
    );
    println!("lex only     : {:>8.1} ns/line", fresh.lex_ns_per_line);
    println!("full analyze : {:>8.1} ns/line", fresh.analyze_ns_per_line);

    match mode {
        "write" => {
            let path = record_path();
            if let Err(e) = std::fs::write(&path, fresh.to_json()) {
                eprintln!("bench_lint: cannot write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        "check" => match check(&fresh) {
            Ok(()) => {
                println!("check: committed record within tolerance, analyze-cost gate held");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_lint: {e}");
                ExitCode::from(1)
            }
        },
        _ => ExitCode::SUCCESS,
    }
}

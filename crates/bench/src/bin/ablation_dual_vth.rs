//! Ablation — the V_th dependence of aging (the paper's Section 4.1
//! "resemblance" argument and its low-power-library discussion).
//!
//! A higher initial threshold cuts both leakage (exponentially) and NBTI
//! (via the overdrive/oxide-field dependence, eq. 23) — the dual-V_th knob.
//! This sweep shows the double win and its delay price.

use relia_bench::{mv, schedule};
use relia_cells::MosType;
use relia_core::{Kelvin, NbtiModel, PmosStress, Seconds, Volts};
use relia_leakage::DeviceModels;

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let sched = schedule(1.0, 9.0, Kelvin(330.0));
    let lifetime = Seconds(1.0e8);
    let stress = PmosStress::worst_case();
    let devices = DeviceModels::ptm90();

    println!("Ablation: initial-Vth dependence of aging and leakage (1e8 s, RAS 1:9)");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>12}",
        "Vth0 [V]", "dVth", "vs nominal", "I_off @400K", "delay cost"
    );
    relia_bench::rule(68);
    let nominal = model
        .delta_vth_with_vth0(lifetime, &sched, &stress, Volts(0.22))
        .expect("valid inputs");
    for vth_mv in [180, 220, 260, 300, 340] {
        let vth = vth_mv as f64 * 1e-3;
        let dv = model
            .delta_vth_with_vth0(lifetime, &sched, &stress, Volts(vth))
            .expect("valid inputs");
        // Off-current of a PMOS drawn at this threshold (shifted model).
        let shifted = DeviceModels {
            vth_p: vth,
            ..devices.clone()
        };
        let ioff = shifted.off_current(MosType::Pmos, 2.0, 1.0, 0.0, Kelvin(400.0));
        // Alpha-power delay cost relative to the nominal threshold.
        let cost = ((1.0 - 0.22) / (1.0 - vth)).powf(model.params().alpha) - 1.0;
        println!(
            "{:>10.2} {:>12} {:>13.0}% {:>12.1} nA {:>11.1}%",
            vth,
            mv(dv),
            (dv / nominal - 1.0) * 100.0,
            ioff * 1e9,
            cost * 100.0
        );
    }
    println!();
    println!("(raising Vth0 trades nominal speed for both leakage and aging margin —");
    println!(" the paper's rationale for why LP libraries barely feel NBTI)");
}

//! Table 3 — impact of the IVC technique on circuit performance
//! degradation.
//!
//! For each benchmark: search the MLV set (probability-based, leakage band
//! 4%), evaluate the NBTI-induced degradation of each MLV, and report the
//! best. `RAS = 1:5`, `T_standby = 330 K` (the paper's Table 3 setup).
//!
//! The headline: the spread between MLVs ("MLV diff") is a tiny fraction of
//! the circuit delay at this cool standby temperature — IVC alone is a weak
//! NBTI mitigation knob.

use relia_bench::{pct, table_suite, ua};
use relia_core::{Kelvin, Ras};
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_ivc::{co_optimize, search_mlv_set, MlvSearchConfig};
use relia_netlist::iscas;

fn main() {
    println!("Table 3: IVC impact on NBTI degradation (RAS = 1:5, T_s = 330 K)");
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "circuit", "gates", "min leak", "worst deg", "best deg", "MLV diff", "nom [ps]", "MLVs"
    );
    relia_bench::rule(86);

    let mut spreads = Vec::new();
    let mut bests = Vec::new();
    for name in table_suite() {
        let circuit = iscas::circuit(name).expect("known benchmark");
        let config =
            FlowConfig::with_schedule(Ras::new(1.0, 5.0).expect("constant"), Kelvin(330.0))
                .expect("valid schedule");
        let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");

        let search = MlvSearchConfig {
            vectors_per_round: 64,
            max_rounds: 10,
            max_set_size: 8,
            ..MlvSearchConfig::default()
        };
        let set = search_mlv_set(&analysis, &search).expect("search succeeds");
        let co = co_optimize(&analysis, &set).expect("evaluations succeed");
        let worst = analysis
            .run(&StandbyPolicy::AllInternalZero)
            .expect("valid policy");

        println!(
            "{:>8} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10.1} {:>8}",
            name,
            circuit.gates().len(),
            ua(set.min_leakage()),
            pct(worst.degradation_fraction()),
            pct(co.best().degradation),
            pct(co.degradation_spread()),
            co.nominal_delay_ps,
            set.vectors().len(),
        );
        spreads.push(co.degradation_spread());
        bests.push(co.best().degradation);
    }
    relia_bench::rule(86);
    let avg_best = bests.iter().sum::<f64>() / bests.len() as f64;
    let avg_spread = spreads.iter().sum::<f64>() / spreads.len() as f64;
    println!(
        "average best-MLV degradation: {} (paper: ~4.3%)",
        pct(avg_best)
    );
    println!(
        "average MLV-to-MLV spread:    {} (paper: ~0.14%)",
        pct(avg_spread)
    );
}

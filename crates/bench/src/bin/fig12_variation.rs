//! Fig. 12 — circuit delay distribution under process variation and NBTI
//! (C880 Monte Carlo).
//!
//! Per-gate `V_th0 ~ N(220 mV, 10 mV)`. With aging, the distribution's mean
//! grows while its sigma *shrinks* (low-V_th gates age faster, compressing
//! the spread). The paper's marker: the −3σ delay after three years exceeds
//! the +3σ delay at time zero.

use relia_core::Seconds;
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy, VariationConfig, VariationStudy};
use relia_netlist::iscas;

fn main() {
    let circuit = iscas::circuit("c880").expect("known benchmark");
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");
    let var = VariationConfig {
        samples: 300,
        ..VariationConfig::paper_defaults().expect("built-in")
    };
    let times = [
        Seconds(0.0),
        Seconds::from_years(1.0),
        Seconds::from_years(3.0),
        Seconds(1.0e8),
    ];

    println!(
        "Fig. 12: C880 delay distribution under variation + NBTI ({} samples)",
        var.samples
    );
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>12}",
        "time [yr]", "mean [ps]", "sigma", "mu-3s [ps]", "mu+3s [ps]"
    );
    relia_bench::rule(62);
    let pts = VariationStudy::run(&analysis, &StandbyPolicy::AllInternalZero, &var, &times)
        .expect("study runs");
    for p in &pts {
        println!(
            "{:>10.2} {:>12.2} {:>10.3} {:>12.2} {:>12.2}",
            p.time.to_years(),
            p.delay.mean,
            p.delay.std_dev,
            p.delay.lower(3.0),
            p.delay.upper(3.0)
        );
    }
    println!();
    let fresh_hi = pts[0].delay.upper(3.0);
    let aged_lo = pts[2].delay.lower(3.0);
    println!(
        "-3sigma at 3 years ({aged_lo:.2} ps) vs +3sigma at time 0 ({fresh_hi:.2} ps): {}",
        if aged_lo > fresh_hi {
            "aged lower bound EXCEEDS fresh upper bound (paper's marker)"
        } else {
            "no crossover at this calibration"
        }
    );
    println!(
        "sigma compression: {:.3} -> {:.3} ps (aging narrows the spread)",
        pts[0].delay.std_dev, pts[3].delay.std_dev
    );
}

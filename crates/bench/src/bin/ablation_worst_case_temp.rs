//! Ablation — how pessimistic is the classic worst-case-temperature
//! assumption that this paper replaces?
//!
//! Prior circuit-aging models (Kumar et al., Paul et al.) evaluate NBTI at
//! a constant worst-case temperature. This ablation quantifies the
//! guardband those models over-charge relative to the temperature-aware
//! model, as a function of the standby temperature and the standby share.

use relia_bench::{mv, pct, schedule};
use relia_core::{DelayDegradation, Kelvin, NbtiModel, PmosStress, Seconds};

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let dd = DelayDegradation::new(model.params());
    let lifetime = Seconds(1.0e8);
    let stress = PmosStress::worst_case();
    let temps = [310.0, 330.0, 350.0, 370.0];
    let ras_list: [(f64, f64); 3] = [(1.0, 1.0), (1.0, 5.0), (1.0, 9.0)];

    // The worst-case model: the whole lifetime at 400 K.
    let worst_case = model
        .delta_vth(lifetime, &schedule(1.0, 9.0, Kelvin(400.0)), &stress)
        .expect("valid inputs");

    println!("Ablation: worst-case-temperature pessimism at 1e8 s");
    println!(
        "worst-case model dVth (Ts = Ta = 400 K): {} -> delay guardband {}",
        mv(worst_case),
        pct(dd.linear(worst_case).expect("bounded"))
    );
    println!();
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>16}",
        "T_s [K]", "RAS", "aware dVth", "overestimate", "guardband waste"
    );
    relia_bench::rule(66);
    for temp in temps {
        for (a, s) in ras_list {
            let aware = model
                .delta_vth(lifetime, &schedule(a, s, Kelvin(temp)), &stress)
                .expect("valid inputs");
            let over = worst_case / aware - 1.0;
            let waste =
                dd.linear(worst_case).expect("bounded") - dd.linear(aware).expect("bounded");
            println!(
                "{:>10.0} {:>8} {:>12} {:>13.0}% {:>16}",
                temp,
                format!("{a:.0}:{s:.0}"),
                mv(aware),
                over * 100.0,
                pct(waste)
            );
        }
    }
    println!();
    println!("(the cooler and longer the standby, the more the classic model over-charges)");
}

//! `bench_surface` — measures an interpolated surface lookup against the
//! exact model evaluation it replaces and maintains the committed
//! `BENCH_surface.json` record.
//!
//! ```text
//! bench_surface            measure and print (no file IO)
//! bench_surface --write    re-measure and rewrite BENCH_surface.json
//! bench_surface --check    re-measure and gate against the committed file
//! ```
//!
//! `--check` fails (exit 1) when either the fresh measurement or the
//! committed record falls below the required speedup, or when the
//! committed ns/lookup numbers drift outside a generous tolerance band of
//! the fresh ones (machine noise is expected; a regression of the lookup
//! itself is not). Flag mistakes exit 2.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use relia_core::{Kelvin, NbtiModel};
use relia_jobs::SWEEP_TEMP_ACTIVE_K;
use relia_surface::{
    build, evaluate_exact, kelvin_spaced, lin_spaced, log_spaced, BuildSpec, Surface, SurfaceQuery,
};

/// Distinct in-domain query points both paths are timed over.
const QUERIES: usize = 256;
/// Lookups per repetition for the interpolated path (cheap, so many).
const LOOKUP_ITERS: usize = 200_000;
/// Exact evaluations per repetition (micro-seconds each, so fewer).
const EXACT_ITERS: usize = 2_000;
/// Timing repetitions; the reported number is the median.
const REPS: usize = 5;
/// Required surface-over-exact speedup, fresh and committed.
const MIN_SPEEDUP: f64 = 100.0;
/// Committed ns/lookup may differ from a fresh measurement by this factor
/// in either direction before `--check` calls it a drift.
const DRIFT_FACTOR: f64 = 8.0;

struct Record {
    grid_values: u64,
    sup_error: f64,
    exact_ns_per_eval: f64,
    surface_ns_per_lookup: f64,
    speedup: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"grid_values\": {},\n  \"sup_error\": {:e},\n  \"exact_ns_per_eval\": {:.1},\n  \"surface_ns_per_lookup\": {:.1},\n  \"speedup\": {:.1}\n}}\n",
            self.grid_values, self.sup_error, self.exact_ns_per_eval, self.surface_ns_per_lookup, self.speedup
        )
    }
}

/// Pulls `"name": <number>` out of the committed record without a JSON
/// dependency — the file is machine-written by `to_json` above.
fn json_number(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = &text[text.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Deterministic in-domain query points: a low-discrepancy walk over the
/// standby-temperature, RAS and lifetime axes at the artifact's stress
/// pair, so both paths price the same workload.
fn queries() -> Vec<SurfaceQuery> {
    (0..QUERIES)
        .map(|i| {
            let f = |k: usize| ((i * k + 1) % QUERIES) as f64 / QUERIES as f64;
            SurfaceQuery {
                t_active_k: Kelvin(SWEEP_TEMP_ACTIVE_K),
                t_standby_k: Kelvin(322.0 + 76.0 * f(7)),
                ras_fraction: 0.12 + 0.76 * f(11),
                lifetime_s: 10f64.powf(6.1 + 2.8 * f(13)),
                p_active: 0.5,
                p_standby: 1.0,
            }
        })
        .collect()
}

fn measure() -> Record {
    let model = NbtiModel::ptm90().expect("ptm90 calibration is valid");
    let spec = BuildSpec {
        t_standby_k: kelvin_spaced(320.0, 400.0, 9),
        ras_fraction: lin_spaced(0.1, 0.9, 9),
        lifetime_s: log_spaced(1e6, 1e9, 13),
        workers: 0,
        ..BuildSpec::paper_defaults()
    };
    let artifact = build(&model, &spec).expect("bench grid builds");
    let grid_values = (artifact.pairs.len() * artifact.grid.len()) as u64;
    let sup_error = artifact.sup_error;
    let surface = Surface::from_artifact(artifact).expect("bench grid holds the bound");
    let points = queries();

    // Exact path: the full Ras -> ModeSchedule -> PmosStress -> hoist
    // pipeline the server runs on a surface miss.
    let exact_ns = median(
        (0..REPS)
            .map(|_| {
                let mut sum = 0.0;
                let start = Instant::now();
                for i in 0..EXACT_ITERS {
                    let q = &points[i % points.len()];
                    sum += evaluate_exact(&model, surface.artifact().period_s, q)
                        .expect("in-domain point evaluates");
                }
                black_box(sum);
                start.elapsed().as_nanos() as f64 / EXACT_ITERS as f64
            })
            .collect(),
    );

    // Surface path: bracket + 16-corner blend, nothing else.
    let surface_ns = median(
        (0..REPS)
            .map(|_| {
                let mut sum = 0.0;
                let start = Instant::now();
                for i in 0..LOOKUP_ITERS {
                    let q = &points[i % points.len()];
                    sum += surface.lookup(q).expect("known pair").delta_vth_v;
                }
                black_box(sum);
                start.elapsed().as_nanos() as f64 / LOOKUP_ITERS as f64
            })
            .collect(),
    );

    Record {
        grid_values,
        sup_error,
        exact_ns_per_eval: exact_ns,
        surface_ns_per_lookup: surface_ns,
        speedup: exact_ns / surface_ns,
    }
}

fn record_path() -> PathBuf {
    // crates/bench -> workspace root, so the record lives next to the
    // figure goldens regardless of the invoking directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_surface.json")
}

fn check(fresh: &Record) -> Result<(), String> {
    let path = record_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed_exact = json_number(&text, "exact_ns_per_eval")
        .ok_or("committed record lacks exact_ns_per_eval")?;
    let committed_surface = json_number(&text, "surface_ns_per_lookup")
        .ok_or("committed record lacks surface_ns_per_lookup")?;
    let committed_speedup =
        json_number(&text, "speedup").ok_or("committed record lacks speedup")?;
    if committed_speedup < MIN_SPEEDUP {
        return Err(format!(
            "committed speedup {committed_speedup:.1}x is below the required {MIN_SPEEDUP:.1}x"
        ));
    }
    if fresh.speedup < MIN_SPEEDUP {
        return Err(format!(
            "measured speedup {:.1}x is below the required {MIN_SPEEDUP:.1}x",
            fresh.speedup
        ));
    }
    for (name, committed, measured) in [
        (
            "exact_ns_per_eval",
            committed_exact,
            fresh.exact_ns_per_eval,
        ),
        (
            "surface_ns_per_lookup",
            committed_surface,
            fresh.surface_ns_per_lookup,
        ),
    ] {
        let ratio = if measured > committed {
            measured / committed
        } else {
            committed / measured
        };
        if !(ratio.is_finite() && ratio <= DRIFT_FACTOR) {
            return Err(format!(
                "{name} drifted: committed {committed:.1}, measured {measured:.1} \
                 (beyond {DRIFT_FACTOR:.0}x tolerance; rerun with --write on this machine)"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        None => "print",
        Some("--write") => "write",
        Some("--check") => "check",
        Some(other) => {
            eprintln!("bench_surface: unknown flag {other}");
            eprintln!("usage: bench_surface [--write | --check]");
            return ExitCode::from(2);
        }
    };

    let fresh = measure();
    println!(
        "surface bench: {} grid values, sup-error {:e} (median of {REPS} reps)",
        fresh.grid_values, fresh.sup_error
    );
    println!("exact  : {:>10.1} ns/eval", fresh.exact_ns_per_eval);
    println!("surface: {:>10.1} ns/lookup", fresh.surface_ns_per_lookup);
    println!("speedup: {:>10.1}x", fresh.speedup);

    match mode {
        "write" => {
            let path = record_path();
            if let Err(e) = std::fs::write(&path, fresh.to_json()) {
                eprintln!("bench_surface: cannot write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        "check" => match check(&fresh) {
            Ok(()) => {
                println!("check: committed record within tolerance, speedup gate held");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_surface: {e}");
                ExitCode::from(1)
            }
        },
        _ => ExitCode::SUCCESS,
    }
}

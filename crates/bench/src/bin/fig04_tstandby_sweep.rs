//! Fig. 4 — ΔV_th over time for different standby temperatures.
//!
//! RAS fixed at 1:5; `T_standby` swept from 330 K to 400 K. Worst-case
//! standby stress (PMOS gate low). The shift grows monotonically with the
//! standby temperature, matching the temperature-variation data the paper
//! cites.

use relia_bench::{log_times, schedule};
use relia_core::{NbtiModel, PmosStress};

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let stress = PmosStress::worst_case();
    let temps = [330.0, 340.0, 350.0, 360.0, 370.0, 380.0, 390.0, 400.0];

    println!("Fig. 4: dVth vs time under different T_standby (RAS = 1:5)");
    print!("{:>12}", "time [s]");
    for temp in temps {
        print!(" {:>8}", format!("{temp:.0}K"));
    }
    println!();
    relia_bench::rule(86);
    for t in log_times(1.0e4, 1.0e8, 9) {
        print!("{:>12.3e}", t.0);
        for temp in temps {
            let dv = model
                .delta_vth(t, &schedule(1.0, 5.0, temp), &stress)
                .expect("valid inputs");
            print!(" {:>7.2}m", dv * 1e3);
        }
        println!();
    }
    println!();
    println!("(values in mV; monotone in T_standby)");
}

//! Fig. 4 — ΔV_th over time for different standby temperatures.
//!
//! RAS fixed at 1:5; `T_standby` swept from 330 K to 400 K. Worst-case
//! standby stress (PMOS gate low). The shift grows monotonically with the
//! standby temperature, matching the temperature-variation data the paper
//! cites.
//!
//! Driven by the `relia-jobs` sweep engine (see `fig03_ras_sweep` for the
//! equivalence argument): one 8 x 9 [`SweepSpec`] grid, evaluated in
//! parallel with memoization.

use relia_bench::{log_times, model_sweep_grid, rule};
use relia_core::Kelvin;

fn main() {
    let temps = [330.0, 340.0, 350.0, 360.0, 370.0, 380.0, 390.0, 400.0];
    let times = log_times(1.0e4, 1.0e8, 9);
    let grid = model_sweep_grid(&[(1.0, 5.0)], &temps.map(Kelvin), &times);

    println!("Fig. 4: dVth vs time under different T_standby (RAS = 1:5)");
    print!("{:>12}", "time [s]");
    for temp in temps {
        print!(" {:>8}", format!("{temp:.0}K"));
    }
    println!();
    rule(86);
    for (i, t) in times.iter().enumerate() {
        print!("{:>12.3e}", t.0);
        for ti in 0..temps.len() {
            // Grid order is t_standby-major, lifetime-minor.
            print!(" {:>7.2}m", grid[ti * times.len() + i] * 1e3);
        }
        println!();
    }
    println!();
    println!("(values in mV; monotone in T_standby)");
}

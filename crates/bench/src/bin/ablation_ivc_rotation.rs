//! Ablation — alternating IVC (vector rotation, the paper's ref.\[23\]) and
//! the effect of a permanent degradation component on IVC's value.
//!
//! Two of the paper's discussion points, quantified:
//! 1. rotating several MLVs spreads standby stress across different PMOS
//!    devices, beating the best single vector;
//! 2. with a permanent (unrecoverable) damage component — the paper's
//!    high-k caveat — standby-state choices matter *more*, so the
//!    vector-to-vector spread grows.

use relia_bench::{pct, schedule};
use relia_core::{Kelvin, NbtiModel, PmosStress, Seconds};
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_ivc::{evaluate_rotation, search_mlv_set, MlvSearchConfig};
use relia_netlist::iscas;

fn main() {
    let circuit = iscas::circuit("c880").expect("known benchmark");
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("valid analysis");

    // Part 1: rotation vs fixed vectors.
    let set = search_mlv_set(&analysis, &MlvSearchConfig::default()).expect("search");
    let vectors: Vec<Vec<bool>> = set.vectors().iter().map(|(v, _)| v.clone()).collect();
    println!(
        "Part 1 — alternating IVC on c880 ({} MLVs in rotation)",
        vectors.len()
    );
    let mut worst_single = 0.0f64;
    let mut best_single = f64::MAX;
    for v in &vectors {
        let d = analysis
            .run(&StandbyPolicy::InputVector(v.clone()))
            .expect("run")
            .degradation_fraction();
        worst_single = worst_single.max(d);
        best_single = best_single.min(d);
    }
    let rot = evaluate_rotation(&analysis, &vectors).expect("rotation");
    println!("  best single MLV:  {}", pct(best_single));
    println!("  worst single MLV: {}", pct(worst_single));
    println!("  rotation of all:  {}", pct(rot.degradation));
    println!(
        "  rotation leakage stays in band: {:.2} uA vs minimum {:.2} uA",
        rot.mean_leakage * 1e6,
        set.min_leakage() * 1e6
    );
    println!();

    // Part 2: permanent-damage sensitivity at the device level.
    println!("Part 2 — permanent (unrecoverable) damage widens the standby-state stakes");
    let model = NbtiModel::ptm90().expect("built-in");
    let sched = schedule(1.0, 9.0, Kelvin(330.0));
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "perm frac", "stressed dVth", "relaxed dVth", "spread"
    );
    relia_bench::rule(56);
    for perm in [0.0, 0.25, 0.5, 1.0] {
        let stressed = model
            .delta_vth_with_permanent(Seconds(1.0e8), &sched, &PmosStress::worst_case(), perm)
            .expect("valid");
        let relaxed = model
            .delta_vth_with_permanent(Seconds(1.0e8), &sched, &PmosStress::best_case(), perm)
            .expect("valid");
        println!(
            "{:>12.2} {:>12.1} m {:>12.1} m {:>11.1}m",
            perm,
            stressed * 1e3,
            relaxed * 1e3,
            (stressed - relaxed) * 1e3
        );
    }
    println!();
    println!("(the stressed-vs-relaxed gap persists at ~7 mV regardless of the permanent");
    println!(" fraction: unrecoverable damage keeps standby-state choices load-bearing");
    println!(" for the whole lifetime, the regime where the paper says IVC pays off)");
}

//! Fig. 9 — NBTI-aware sleep-transistor size margin Δ(W/L)/(W/L) versus
//! initial threshold and RAS (eq. 31).
//!
//! A safe PMOS header must be drawn larger by `ΔV_th/(V_dd − V_thST − V_ST)`
//! so the virtual rail still meets its drop budget at end of life. Paper
//! range: ~1.13% to ~3.94%; the margin grows as technology scaling pushes
//! ST thresholds down.

use relia_bench::schedule;
use relia_core::{Kelvin, NbtiModel, Seconds};
use relia_sleep::StSizing;

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let lifetime = Seconds(1.0e8);
    let vths = [0.20, 0.25, 0.30, 0.35, 0.40];
    let ras_list: [(f64, f64); 5] = [(9.0, 1.0), (5.0, 1.0), (1.0, 1.0), (1.0, 5.0), (1.0, 9.0)];

    println!("Fig. 9: NBTI-aware ST size margin d(W/L) [%] vs initial Vth and RAS");
    print!("{:>10}", "Vth0 [V]");
    for (a, s) in ras_list {
        print!(" {:>9}", format!("{a:.0}:{s:.0}"));
    }
    println!();
    relia_bench::rule(62);

    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for vth in vths {
        print!("{:>10.2}", vth);
        for (a, s) in ras_list {
            let sizing = StSizing::paper_defaults(0.05, vth).expect("valid sizing");
            let dv = sizing
                .st_delta_vth(&model, &schedule(a, s, Kelvin(330.0)), lifetime)
                .expect("valid inputs");
            let margin = sizing.nbti_size_margin(dv).expect("bounded shift");
            lo = lo.min(margin);
            hi = hi.max(margin);
            print!(" {:>8.2}%", margin * 100.0);
        }
        println!();
    }
    println!();
    println!(
        "range: {:.2}% .. {:.2}% (paper: 1.13% .. 3.94%)",
        lo * 100.0,
        hi * 100.0
    );
}

//! Fig. 1 — conceptual DC-stress versus AC-stress threshold degradation.
//!
//! Regenerates the paper's opening illustration: under DC stress the PMOS
//! threshold follows the `t^(1/4)` law; under 50%-duty AC stress the
//! periodic recovery keeps the long-term shift at ~76% of the DC value.

use relia_bench::{log_times, mv};
use relia_core::{AcStress, Kelvin, NbtiModel, Seconds};

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let temp = Kelvin(400.0);
    let ac = AcStress::new(0.5, Seconds(1.0e-3)).expect("constant pattern");

    println!("Fig. 1: PMOS dVth under DC vs AC stress (T = 400 K, duty = 0.5)");
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "time [s]", "DC dVth", "AC dVth", "AC/DC"
    );
    relia_bench::rule(54);
    for t in log_times(1.0e3, 1.0e8, 11) {
        let dc = model.delta_vth_dc(t, temp).expect("valid time");
        let acv = model.delta_vth_ac(t, temp, &ac).expect("valid time");
        println!(
            "{:>12.3e} {:>14} {:>14} {:>8.3}",
            t.0,
            mv(dc),
            mv(acv),
            acv / dc
        );
    }
    println!();
    println!(
        "long-run AC/DC ratio -> (c/(1+beta))^(1/4) = {:.3}",
        relia_core::ac::ac_to_dc_ratio(0.5)
    );
}

//! Ablation — does the paper's two-steady-temperature abstraction hold
//! against a full thermal-trace integration?
//!
//! The paper assumes the die snaps between `T_active` and `T_standby`
//! (justified by the millisecond RC time constant). Here we simulate the
//! actual mode-switching thermal transient with the RC model, feed the
//! *entire trace* through the generalized equivalent-stress transform, and
//! compare against the two-temperature abstraction.

use relia_bench::{mv, schedule};
use relia_core::{Kelvin, NbtiModel, PmosStress, Seconds, StressInterval};
use relia_thermal::{RcThermalModel, TaskSet};

fn main() {
    let model = NbtiModel::ptm90().expect("built-in calibration");
    let thermal = RcThermalModel::air_cooled();
    let lifetime = Seconds(1.0e8);

    // Mode powers chosen so the steady states are the paper's 400 K / 330 K.
    let p_active = (400.0 - thermal.ambient.0) / thermal.r_th;
    let p_standby = (330.0 - thermal.ambient.0) / thermal.r_th;
    println!(
        "mode powers for 400/330 K steady states: {:.1} W active, {:.1} W standby",
        p_active, p_standby
    );

    println!();
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "RAS", "two-temp dVth", "full-trace dVth", "error"
    );
    relia_bench::rule(54);
    for (a, s) in [(1.0, 1.0), (1.0, 5.0), (1.0, 9.0)] {
        // Two-temperature abstraction.
        let sched = schedule(a, s, Kelvin(330.0));
        let abstracted = model
            .delta_vth(lifetime, &sched, &PmosStress::worst_case())
            .expect("valid inputs");

        // Full transient: simulate one mode cycle (scaled down to seconds so
        // the RC transient is visible relative to the phase lengths).
        let cycle_seconds = 1.0; // 1 s macro-cycle with ms-scale transients
        let t_active = cycle_seconds * a / (a + s);
        let t_standby = cycle_seconds - t_active;
        let tasks = TaskSet::duty_cycle(
            p_active,
            p_standby,
            Seconds(t_active),
            Seconds(t_standby),
            1,
        );
        let trace = thermal.simulate(tasks.profile(), 1.0e-3);
        // Convert the temperature trace to stress intervals: stressed at
        // SP 0.5 while active, fully stressed in standby (worst case).
        let intervals: Vec<StressInterval> = trace
            .iter()
            .map(|pt| StressInterval {
                duration: Seconds(1.0e-3),
                temp: pt.temp,
                stress_fraction: if pt.power > (p_active + p_standby) / 2.0 {
                    0.5
                } else {
                    1.0
                },
            })
            .collect();
        let traced = model
            .delta_vth_trace(lifetime, &intervals, relia_core::Kelvin(400.0))
            .expect("valid trace");

        println!(
            "{:>8} {:>16} {:>16} {:>9.2}%",
            format!("{a:.0}:{s:.0}"),
            mv(abstracted),
            mv(traced),
            (traced / abstracted - 1.0) * 100.0
        );
    }
    println!();
    println!("(sub-percent error: the paper's instantaneous-switch assumption is sound");
    println!(" whenever mode dwell times dwarf the ~10 ms thermal time constant)");
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` for the experiment index), plus shared helpers and Criterion
//! performance benches of the analysis engines.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p relia-bench --bin table1_vth_ras
//! ```

use relia_core::{Kelvin, ModeSchedule, Ras, Seconds};
use relia_jobs::{
    builtin_resolver, run_sweep, JobResult, JobStatus, SweepOptions, SweepSpec, Workload,
};

/// Log-spaced time points from `lo` to `hi` seconds (inclusive).
pub fn log_times(lo: f64, hi: f64, points: usize) -> Vec<Seconds> {
    assert!(points >= 2 && lo > 0.0 && hi > lo);
    let step = (hi / lo).ln() / (points - 1) as f64;
    (0..points)
        .map(|i| Seconds(lo * (step * i as f64).exp()))
        .collect()
}

/// The paper's standard schedule builder: `T_active = 400 K`, 1000 s mode
/// period.
///
/// # Panics
///
/// Panics on invalid ratio/temperature (the harness passes constants).
pub fn schedule(ras_active: f64, ras_standby: f64, temp_standby: Kelvin) -> ModeSchedule {
    ModeSchedule::new(
        // relia-lint: allow(unwrap-in-lib)
        Ras::new(ras_active, ras_standby).expect("harness constants are valid"),
        Seconds(1000.0),
        Kelvin(400.0),
        temp_standby,
    )
    // Documented panic: the figure harness passes known-good constants.
    // relia-lint: allow(unwrap-in-lib)
    .expect("harness constants are valid")
}

/// Evaluates a worst-case-stress ΔV_th grid (`ras` x `temps` x `times`)
/// through the `relia-jobs` sweep engine and returns the shifts in volts,
/// ras-major / lifetime-minor (the engine's grid order).
///
/// Uses the paper's standard schedule (1000 s period, `T_active = 400 K`,
/// SP 0.5 active / 1.0 standby) — the engine's own sweep constants.
///
/// # Panics
///
/// Panics if the engine rejects the grid or any point fails: the figure
/// harness passes known-good constants.
pub fn model_sweep_grid(ras: &[(f64, f64)], temps: &[Kelvin], times: &[Seconds]) -> Vec<f64> {
    let spec = SweepSpec {
        workload: Workload::ModelDeltaVth {
            p_active: 0.5,
            p_standby: 1.0,
        },
        ras: ras.to_vec(),
        t_standby: temps.to_vec(),
        lifetimes: times.to_vec(),
    };
    let outcome = run_sweep(&spec, &SweepOptions::default(), builtin_resolver)
        // relia-lint: allow(unwrap-in-lib)
        .expect("harness constants are valid");
    outcome
        .statuses
        .into_iter()
        .map(|status| match status {
            JobStatus::Completed(JobResult::Model { delta_vth }) => delta_vth,
            other => panic!("model sweep point did not complete: {other:?}"),
        })
        .collect()
}

/// The benchmark subset used by table experiments: small enough for a
/// quick run, spanning 6 to ~550 gates.
pub fn table_suite() -> Vec<&'static str> {
    vec!["c17", "c432", "c499", "c880", "c1355"]
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats volts as millivolts with one decimal.
pub fn mv(x: f64) -> String {
    format!("{:.1} mV", x * 1e3)
}

/// Formats amperes as nanoamperes with one decimal.
pub fn na(x: f64) -> String {
    format!("{:.1} nA", x * 1e9)
}

/// Formats amperes as microamperes with two decimals.
pub fn ua(x: f64) -> String {
    format!("{:.2} uA", x * 1e6)
}

/// Prints a separator line sized to `width`.
pub fn rule(width: usize) {
    // The harness's table separator: figure binaries own stdout by design.
    // relia-lint: allow(print-in-lib)
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_times_are_increasing_and_bounded() {
        let t = log_times(1.0e3, 1.0e8, 11);
        assert_eq!(t.len(), 11);
        assert!((t[0].0 - 1.0e3).abs() < 1e-6);
        assert!((t[10].0 - 1.0e8).abs() / 1.0e8 < 1e-9);
        for w in t.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0512), "5.12%");
        assert_eq!(mv(0.0303), "30.3 mV");
        assert_eq!(na(1.5e-9), "1.5 nA");
        assert_eq!(ua(2.34e-6), "2.34 uA");
    }

    #[test]
    fn schedule_helper_matches_paper() {
        let s = schedule(1.0, 9.0, Kelvin(330.0));
        assert_eq!(s.temp_active(), Kelvin(400.0));
        assert_eq!(s.temp_standby(), Kelvin(330.0));
    }
}

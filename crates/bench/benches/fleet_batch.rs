//! Criterion bench: scalar per-sample NBTI evaluation vs the hoisted batch
//! kernel — the speedup `relia-fleet` exists to deliver. The scalar path
//! redoes the Arrhenius exponentials, the AC-recursion setup, and the
//! equivalent-stress-time transform for every sample; the hoisted path pays
//! for them once per stress point and leaves only the per-device tail.

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relia_core::{NbtiModel, Volts};
use relia_fleet::{ChunkAccum, FleetEvaluator, FleetSpec, SplitMix64};

fn bench_fleet(c: &mut Criterion) {
    let spec = FleetSpec::paper_defaults().unwrap();
    let model = NbtiModel::ptm90().unwrap();
    let schedule = spec.schedule().unwrap();
    let stress = spec.stress().unwrap();
    let time = *spec.times.last().unwrap();
    let hoisted = model.hoist(time, &schedule, &stress).unwrap();
    let eval = FleetEvaluator::prepare(&spec).unwrap();

    c.bench_function("scalar_delta_vth_one_sample", |b| {
        b.iter(|| {
            model
                .delta_vth_with_vth0(black_box(time), &schedule, &stress, Volts(0.22))
                .unwrap()
        })
    });
    c.bench_function("hoisted_delta_vth_one_sample", |b| {
        b.iter(|| hoisted.delta_vth_at(black_box(0.22)))
    });
    c.bench_function("fleet_sample_into_three_times", |b| {
        let mut rng = SplitMix64::new(1);
        let mut acc = ChunkAccum::new(spec.times.len());
        b.iter(|| eval.sample_into(&mut rng, &mut acc))
    });
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);

//! Criterion bench: static-timing throughput on the benchmark suite
//! (nominal and NBTI-degraded analyses; drives Tables 3-4, Figs 5/11/12).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use relia_core::NbtiParams;
use relia_netlist::iscas;
use relia_sta::TimingAnalysis;

fn bench_sta(c: &mut Criterion) {
    let params = NbtiParams::ptm90().unwrap();
    for name in ["c432", "c880", "c2670"] {
        let circuit = iscas::circuit(name).unwrap();
        let shifts = vec![0.02; circuit.gates().len()];
        c.bench_function(&format!("sta_nominal_{name}"), |b| {
            b.iter(|| TimingAnalysis::nominal(&circuit).max_delay_ps())
        });
        c.bench_function(&format!("sta_degraded_{name}"), |b| {
            b.iter(|| {
                TimingAnalysis::degraded(&circuit, &shifts, &params)
                    .unwrap()
                    .max_delay_ps()
            })
        });
    }
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);

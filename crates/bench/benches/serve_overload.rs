//! Criterion bench: the overload-control paths of `relia-serve`.
//!
//! Overload control only helps if its answers cost less than the work it
//! refuses. These benches time the two paths a browned-out server lives
//! on — the breaker fast-path shed (503 + Retry-After, no evaluation)
//! and the brownout cache hit (a full memoized answer) — plus the
//! closed-breaker gate overhead a healthy request pays.

#![allow(clippy::unwrap_used)]
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relia_core::{CancelToken, Deadline, Kelvin};
use relia_serve::{handle, DegradeQuery, Endpoint, EvalGate, OverloadConfig, Request, ServeState};

const QUERY: DegradeQuery = DegradeQuery {
    ras: (1.0, 9.0),
    t_standby_k: Kelvin(330.0),
    lifetime_s: 1.0e8,
    p_active: 0.5,
    p_standby: 1.0,
};

fn degrade_request(body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        target: "/v1/degrade".to_owned(),
        http11: true,
        headers: vec![],
        body: body.as_bytes().to_vec(),
    }
}

fn deadline() -> Deadline {
    Deadline::new(CancelToken::new(), Instant::now() + Duration::from_secs(60))
}

fn bench_overload(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_overload");
    let body = QUERY.to_body();
    let request = degrade_request(&body);

    // Closed-breaker gate: the per-request overhead every healthy request
    // pays for the protection (one atomic load on the fast path).
    let healthy = ServeState::new(Duration::from_secs(60)).unwrap();
    group.bench_function("gate_closed_breaker", |b| {
        b.iter(|| {
            black_box(
                healthy
                    .overload
                    .gate(black_box(Endpoint::Degrade), Instant::now()),
            )
        })
    });

    // Breaker fast-path shed: open breaker, cold key → full dispatch to a
    // 503 + Retry-After without touching the model.
    let shedding = ServeState::new(Duration::from_secs(60))
        .unwrap()
        .with_overload(OverloadConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..OverloadConfig::default()
        });
    shedding
        .overload
        .settle(Endpoint::Degrade, 500, Instant::now());
    let warmup = handle(&shedding, &request, &deadline());
    assert_eq!(warmup.0.status, 503);
    group.bench_function("breaker_shed_503", |b| {
        b.iter(|| handle(black_box(&shedding), &request, &deadline()))
    });

    // Brownout cache hit: same open breaker, but the key is memoized — a
    // full 200, served without evaluation. The cooldown is parked far out
    // so no half-open probe can close the breaker mid-measurement.
    let browned = ServeState::new(Duration::from_secs(60))
        .unwrap()
        .with_overload(OverloadConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..OverloadConfig::default()
        });
    let warm = handle(&browned, &request, &deadline());
    assert_eq!(warm.0.status, 200, "warms the memo cache");
    browned
        .overload
        .settle(Endpoint::Degrade, 500, Instant::now());
    assert_eq!(
        browned.overload.gate(Endpoint::Degrade, Instant::now()),
        EvalGate::CacheOnly
    );
    let hit = handle(&browned, &request, &deadline());
    assert_eq!(hit.0.status, 200, "memoized answer through the brownout");
    group.bench_function("brownout_cache_hit_200", |b| {
        b.iter(|| handle(black_box(&browned), &request, &deadline()))
    });
    group.finish();
}

criterion_group!(benches, bench_overload);
criterion_main!(benches);

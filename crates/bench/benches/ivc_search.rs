//! Criterion bench: the probability-based MLV search (Table 3's engine).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use relia_flow::{AgingAnalysis, FlowConfig};
use relia_ivc::{search_mlv_set, MlvSearchConfig};
use relia_netlist::iscas;

fn bench_mlv(c: &mut Criterion) {
    let circuit = iscas::circuit("c432").unwrap();
    let config = FlowConfig::paper_defaults().unwrap();
    let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
    let search = MlvSearchConfig {
        vectors_per_round: 32,
        max_rounds: 4,
        restarts: 2,
        ..MlvSearchConfig::default()
    };
    let mut group = c.benchmark_group("ivc");
    group.sample_size(10);
    group.bench_function("mlv_search_c432_short", |b| {
        b.iter(|| search_mlv_set(&analysis, &search).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mlv);
criterion_main!(benches);

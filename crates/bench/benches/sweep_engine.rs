//! Criterion bench: the `relia-jobs` sweep engine, cached vs uncached.
//!
//! The cached runs drive a full circuit-aging grid through the sharded
//! memo table (warm after the first job touches each stress point); the
//! uncached baseline is the same per-gate loop through `NoCache`, i.e. a
//! fresh model evaluation per PMOS. The gap is what memoization buys a
//! sweep whose jobs share quantized stress points.

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relia_core::{Kelvin, Seconds};
use relia_flow::{AgingAnalysis, FlowConfig, NoCache, StandbyPolicy};
use relia_jobs::{
    builtin_resolver, run_sweep, PolicySpec, ShardedCache, SweepOptions, SweepSpec, Workload,
};
use relia_netlist::iscas;

fn aging_spec() -> SweepSpec {
    SweepSpec {
        workload: Workload::CircuitAging {
            circuits: vec!["c432".into()],
            policies: vec![PolicySpec::Worst, PolicySpec::Best],
        },
        ras: vec![(1.0, 1.0), (1.0, 5.0), (1.0, 9.0)],
        t_standby: vec![Kelvin(330.0), Kelvin(400.0)],
        lifetimes: vec![Seconds(1.0e7), Seconds(1.0e8)],
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);

    // The whole grid through the engine: pool + sharded cache.
    group.bench_function("c432_grid_cached_pool", |b| {
        b.iter(|| {
            run_sweep(
                black_box(&aging_spec()),
                &SweepOptions::default(),
                builtin_resolver,
            )
            .unwrap()
        })
    });
    group.bench_function("c432_grid_cached_1worker", |b| {
        b.iter(|| {
            run_sweep(
                black_box(&aging_spec()),
                &SweepOptions {
                    workers: 1,
                    ..SweepOptions::default()
                },
                builtin_resolver,
            )
            .unwrap()
        })
    });

    // Single-analysis comparison: one run with a warm sharded cache vs the
    // same run through NoCache (a model evaluation per PMOS).
    let circuit = iscas::circuit("c432").unwrap();
    let config = FlowConfig::paper_defaults().unwrap();
    let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
    let lifetime = Seconds(1.0e8);
    let warm = ShardedCache::default();
    analysis
        .gate_delta_vth_at_cached(&StandbyPolicy::AllInternalZero, lifetime, &warm)
        .unwrap();
    group.bench_function("c432_gate_dvth_warm_cache", |b| {
        b.iter(|| {
            analysis
                .gate_delta_vth_at_cached(
                    black_box(&StandbyPolicy::AllInternalZero),
                    lifetime,
                    &warm,
                )
                .unwrap()
        })
    });
    group.bench_function("c432_gate_dvth_uncached", |b| {
        b.iter(|| {
            analysis
                .gate_delta_vth_at_cached(
                    black_box(&StandbyPolicy::AllInternalZero),
                    lifetime,
                    &NoCache,
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);

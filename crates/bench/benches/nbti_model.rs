//! Criterion bench: throughput of the temperature-aware NBTI model
//! (the per-PMOS evaluation at the heart of every table/figure).

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relia_core::{Kelvin, ModeSchedule, NbtiModel, PmosStress, Ras, Seconds};

fn bench_nbti(c: &mut Criterion) {
    let model = NbtiModel::ptm90().unwrap();
    let schedule = ModeSchedule::new(
        Ras::new(1.0, 9.0).unwrap(),
        Seconds(1000.0),
        Kelvin(400.0),
        Kelvin(330.0),
    )
    .unwrap();
    let stress = PmosStress::worst_case();

    c.bench_function("delta_vth_schedule_1e8s", |b| {
        b.iter(|| {
            model
                .delta_vth(black_box(Seconds(1.0e8)), &schedule, &stress)
                .unwrap()
        })
    });
    c.bench_function("delta_vth_dc", |b| {
        b.iter(|| {
            model
                .delta_vth_dc(black_box(Seconds(1.0e8)), Kelvin(400.0))
                .unwrap()
        })
    });
    c.bench_function("s_n_exact_4096", |b| {
        b.iter(|| relia_core::ac::s_n_exact(black_box(0.5), 4096))
    });
}

criterion_group!(benches, bench_nbti);
criterion_main!(benches);

//! Criterion bench: logic simulation and signal-probability propagation
//! (the statistical front half of the Fig. 6 flow).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use relia_netlist::iscas;
use relia_sim::{logic, monte_carlo, prob};

fn bench_sim(c: &mut Criterion) {
    let circuit = iscas::circuit("c880").unwrap();
    let stim = vec![true; circuit.primary_inputs().len()];
    c.bench_function("logic_sim_c880", |b| {
        b.iter(|| logic::simulate(&circuit, &stim).unwrap())
    });
    c.bench_function("sp_propagate_c880", |b| {
        b.iter(|| prob::propagate_uniform(&circuit).unwrap())
    });
    let probs = vec![0.5; circuit.primary_inputs().len()];
    c.bench_function("monte_carlo_200_vectors_c880", |b| {
        b.iter(|| monte_carlo::estimate(&circuit, &probs, 200, 7).unwrap())
    });
}

criterion_group!(benches, bench_sim, parse_bench::bench_parsers);
criterion_main!(benches);

// Appended: front-end parsing throughput.
mod parse_bench {
    use criterion::Criterion;
    use relia_cells::Library;
    use relia_netlist::{bench as bench_fmt, iscas, verilog};

    pub fn bench_parsers(c: &mut Criterion) {
        let circuit = iscas::circuit("c880").unwrap();
        let bench_text = bench_fmt::write(&circuit);
        let verilog_text = verilog::write(&circuit);
        c.bench_function("parse_bench_c880", |b| {
            b.iter(|| bench_fmt::parse(&bench_text, Library::ptm90()).unwrap())
        });
        c.bench_function("parse_verilog_c880", |b| {
            b.iter(|| verilog::parse(&verilog_text, Library::ptm90()).unwrap())
        });
    }
}

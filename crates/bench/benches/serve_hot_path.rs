//! Criterion bench: the `relia-serve` hot request path.
//!
//! The serving claim is that a warm degrade query costs parse + cache
//! lookup + render, not a model evaluation. These benches isolate each
//! stage — HTTP request framing, JSON body parsing, and the full
//! `handle()` dispatch on a warm cache — plus the cold-evaluation
//! baseline, so a regression in any stage of the hot path is visible in
//! isolation.

#![allow(clippy::unwrap_used)]
use std::io::Cursor;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relia_core::{CancelToken, Deadline, Kelvin};
use relia_serve::{handle, parse_degrade, read_request, DegradeQuery, Limits, Request, ServeState};

const QUERY: DegradeQuery = DegradeQuery {
    ras: (1.0, 9.0),
    t_standby_k: Kelvin(330.0),
    lifetime_s: 1.0e8,
    p_active: 0.5,
    p_standby: 1.0,
};

fn raw_request(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/degrade HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn degrade_request(body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        target: "/v1/degrade".to_owned(),
        http11: true,
        headers: vec![],
        body: body.as_bytes().to_vec(),
    }
}

fn deadline() -> Deadline {
    Deadline::new(CancelToken::new(), Instant::now() + Duration::from_secs(60))
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_hot_path");
    let body = QUERY.to_body();

    // Stage 1: HTTP framing alone.
    let wire = raw_request(&body);
    let limits = Limits::default();
    group.bench_function("http_parse_degrade", |b| {
        b.iter(|| {
            let mut reader = Cursor::new(black_box(wire.as_slice()));
            read_request(&mut reader, &limits).unwrap()
        })
    });

    // Stage 2: JSON body → validated query.
    group.bench_function("json_parse_degrade", |b| {
        b.iter(|| parse_degrade(black_box(body.as_bytes())).unwrap())
    });

    // Stage 3: full dispatch on a warm cache — the steady-state cost of a
    // served query.
    let state = ServeState::new(Duration::from_secs(60)).unwrap();
    let request = degrade_request(&body);
    let warmup = handle(&state, &request, &deadline());
    assert_eq!(warmup.0.status, 200);
    group.bench_function("handle_degrade_warm_cache", |b| {
        b.iter(|| handle(black_box(&state), &request, &deadline()))
    });

    // Baseline: the same dispatch with a cold cache every iteration (one
    // real model evaluation per call). The warm/cold gap is what the
    // shared memo cache buys each served request.
    group.bench_function("handle_degrade_cold_cache", |b| {
        b.iter(|| {
            let cold = ServeState::new(Duration::from_secs(60)).unwrap();
            handle(black_box(&cold), &request, &deadline())
        })
    });

    // Surface tier: the same dispatch answered by multilinear
    // interpolation from a mounted response surface — no model
    // evaluation, no memo cache, just bracket + blend + render. The
    // acceptance claim is >= 100x over the cold baseline.
    let model = relia_core::NbtiModel::ptm90().unwrap();
    let spec = relia_surface::BuildSpec {
        t_standby_k: relia_surface::kelvin_spaced(320.0, 400.0, 9),
        ras_fraction: relia_surface::lin_spaced(0.1, 0.9, 9),
        lifetime_s: relia_surface::log_spaced(1e6, 1e9, 13),
        workers: 2,
        ..relia_surface::BuildSpec::paper_defaults()
    };
    let artifact = relia_surface::build(&model, &spec).unwrap();
    let surface = relia_surface::Surface::from_artifact(artifact).unwrap();
    let surfaced = ServeState::new(Duration::from_secs(60))
        .unwrap()
        .with_surface(surface);
    let warm = handle(&surfaced, &request, &deadline());
    assert_eq!(warm.0.status, 200);
    assert_eq!(
        surfaced.surface().unwrap().hits(),
        1,
        "the bench query must be a surface hit"
    );
    group.bench_function("handle_degrade_surface", |b| {
        b.iter(|| handle(black_box(&surfaced), &request, &deadline()))
    });

    // The lookup alone — what the surface tier substitutes for the model
    // evaluation inside handle_degrade_cold_cache. This pair carries the
    // acceptance claim (>= 100x, gated by `bench_surface --check`); the
    // full-dispatch stages above additionally pay HTTP/JSON framing,
    // which both tiers share.
    let surface_query = relia_surface::SurfaceQuery {
        t_active_k: Kelvin(relia_jobs::SWEEP_TEMP_ACTIVE_K),
        t_standby_k: QUERY.t_standby_k,
        ras_fraction: QUERY.ras.0 / (QUERY.ras.0 + QUERY.ras.1),
        lifetime_s: QUERY.lifetime_s,
        p_active: QUERY.p_active,
        p_standby: QUERY.p_standby,
    };
    let tier = surfaced.surface().unwrap();
    assert!(!tier.surface().lookup(&surface_query).unwrap().clamped);
    group.bench_function("surface_lookup", |b| {
        b.iter(|| tier.surface().lookup(black_box(&surface_query)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);

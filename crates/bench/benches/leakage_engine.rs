//! Criterion bench: leakage-table construction (stack-aware network solve
//! for every cell x vector) and whole-circuit leakage lookups (drives
//! Table 2/3 and the MLV search).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use relia_cells::Library;
use relia_core::Kelvin;
use relia_leakage::{circuit_leakage, DeviceModels, LeakageTable};
use relia_netlist::iscas;

fn bench_leakage(c: &mut Criterion) {
    let lib = Library::ptm90();
    let models = DeviceModels::ptm90();
    c.bench_function("leakage_table_build", |b| {
        b.iter(|| LeakageTable::build(&lib, &models, Kelvin(400.0)))
    });

    let circuit = iscas::circuit("c880").unwrap();
    let table = LeakageTable::build(circuit.library(), &models, Kelvin(400.0));
    let stim = vec![false; circuit.primary_inputs().len()];
    c.bench_function("circuit_leakage_c880", |b| {
        b.iter(|| circuit_leakage(&circuit, &stim, &table).unwrap())
    });
}

criterion_group!(benches, bench_leakage);
criterion_main!(benches);

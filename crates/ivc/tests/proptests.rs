//! Property-based tests for the IVC search.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_flow::{AgingAnalysis, FlowConfig};
use relia_ivc::{evaluate_rotation, search_mlv_set, MlvSearchConfig};
use relia_netlist::iscas;
use std::sync::OnceLock;

fn shared_analysis() -> &'static AgingAnalysis<'static> {
    static S: OnceLock<AgingAnalysis<'static>> = OnceLock::new();
    S.get_or_init(|| {
        let config: &'static FlowConfig =
            Box::leak(Box::new(FlowConfig::paper_defaults().expect("built-in")));
        let circuit: &'static relia_netlist::Circuit = Box::leak(Box::new(iscas::c17()));
        AgingAnalysis::new(config, circuit).expect("analysis")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seed the MLV set is sorted, within the band, duplicate-free,
    /// and hits the exhaustive optimum on c17.
    #[test]
    fn mlv_set_invariants(seed in 0u64..500) {
        let analysis = shared_analysis();
        let set = search_mlv_set(
            analysis,
            &MlvSearchConfig { seed, vectors_per_round: 32, max_rounds: 8, ..MlvSearchConfig::default() },
        ).expect("search");
        prop_assert!(!set.vectors().is_empty());
        prop_assert!(set.relative_spread() <= 0.04 + 1e-12);
        for w in set.vectors().windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
            prop_assert!(w[0].0 != w[1].0);
        }
        // Ground truth on 5 inputs.
        let mut best = f64::MAX;
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            best = best.min(analysis.standby_leakage(&v).expect("valid"));
        }
        prop_assert!((set.min_leakage() - best).abs() / best < 1e-9);
    }

    /// A rotation's leakage is the mean of its members' leakages.
    #[test]
    fn rotation_leakage_is_mean(bits1 in 0u32..32, bits2 in 0u32..32) {
        let analysis = shared_analysis();
        let v1: Vec<bool> = (0..5).map(|i| bits1 >> i & 1 == 1).collect();
        let v2: Vec<bool> = (0..5).map(|i| bits2 >> i & 1 == 1).collect();
        let l1 = analysis.standby_leakage(&v1).expect("valid");
        let l2 = analysis.standby_leakage(&v2).expect("valid");
        let rot = evaluate_rotation(analysis, &[v1, v2]).expect("rotation");
        prop_assert!((rot.mean_leakage - 0.5 * (l1 + l2)).abs() < 1e-15);
    }
}

//! The internal-node-control (INC) potential (the paper's Table 4).
//!
//! IVC can only set internal nodes indirectly through the primary inputs;
//! control-point insertion (Lin et al.) can drive internal nodes directly.
//! The *potential* of such a technique is bounded by the gap between the
//! all-'0' worst case and the all-'1' best case: `(worst − best)/worst`.

use relia_flow::{AgingAnalysis, FlowError, StandbyPolicy};

/// The INC potential of one circuit under one schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncPotential {
    /// Relative delay degradation with every internal node at '0'.
    pub worst_degradation: f64,
    /// Relative delay degradation with every internal node at '1'.
    pub best_degradation: f64,
    /// The circuit's nominal delay in picoseconds.
    pub nominal_delay_ps: f64,
}

impl IncPotential {
    /// `(worst − best)/worst`: the fraction of the worst-case degradation
    /// that internal node control could recover.
    pub fn potential(&self) -> f64 {
        if self.worst_degradation <= 0.0 {
            return 0.0;
        }
        (self.worst_degradation - self.best_degradation) / self.worst_degradation
    }
}

/// Computes the INC potential for the prepared analysis.
///
/// # Errors
///
/// Returns [`FlowError`] if an evaluation fails.
pub fn internal_node_potential(analysis: &AgingAnalysis<'_>) -> Result<IncPotential, FlowError> {
    let worst = analysis.run(&StandbyPolicy::AllInternalZero)?;
    let best = analysis.run(&StandbyPolicy::AllInternalOne)?;
    Ok(IncPotential {
        worst_degradation: worst.degradation_fraction(),
        best_degradation: best.degradation_fraction(),
        nominal_delay_ps: worst.nominal.max_delay_ps(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_core::{Kelvin, Ras};
    use relia_flow::FlowConfig;
    use relia_netlist::iscas;

    fn potential_at(temp_standby: f64) -> IncPotential {
        let circuit = iscas::circuit("c432").unwrap();
        let config =
            FlowConfig::with_schedule(Ras::new(1.0, 9.0).unwrap(), Kelvin(temp_standby)).unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        internal_node_potential(&analysis).unwrap()
    }

    #[test]
    fn potential_grows_with_standby_temperature() {
        // The paper's Table 4 trend: 18.1% at 330 K up to 54.9% at 400 K.
        let cool = potential_at(330.0);
        let hot = potential_at(400.0);
        assert!(hot.potential() > cool.potential());
        assert!(
            cool.potential() > 0.05,
            "cool potential {}",
            cool.potential()
        );
        assert!(hot.potential() < 0.9, "hot potential {}", hot.potential());
    }

    #[test]
    fn best_case_is_temperature_insensitive() {
        // With all internal nodes at '1' the standby phase only relaxes, and
        // relaxation is temperature-insensitive in the model.
        let cool = potential_at(330.0);
        let hot = potential_at(400.0);
        let rel = (cool.best_degradation - hot.best_degradation).abs() / cool.best_degradation;
        assert!(rel < 1e-9, "best-case spread {rel}");
    }

    #[test]
    fn worst_exceeds_best() {
        let p = potential_at(350.0);
        assert!(p.worst_degradation > p.best_degradation);
        assert!(p.potential() > 0.0 && p.potential() < 1.0);
    }
}

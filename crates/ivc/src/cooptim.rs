//! NBTI/leakage co-optimization over the MLV set (the paper's Table 3
//! experiment): among near-minimum-leakage vectors, pick the one whose
//! standby state minimizes the NBTI-induced delay degradation.

use relia_flow::{AgingAnalysis, FlowError, StandbyPolicy};

use crate::mlv::MlvSet;

/// Evaluation of one MLV candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MlvEvaluation {
    /// The standby input vector.
    pub vector: Vec<bool>,
    /// Its standby leakage in amperes.
    pub leakage: f64,
    /// The NBTI-induced relative delay degradation over the configured
    /// lifetime when the circuit parks on this vector.
    pub degradation: f64,
}

/// Result of co-optimizing a set of MLVs.
#[derive(Debug, Clone, PartialEq)]
pub struct CoOptimization {
    /// All evaluations, in the MLV set's (leakage-sorted) order.
    pub evaluations: Vec<MlvEvaluation>,
    /// Index (into `evaluations`) of the degradation-minimizing vector.
    pub best_for_nbti: usize,
    /// The circuit's nominal critical-path delay in picoseconds.
    pub nominal_delay_ps: f64,
}

impl CoOptimization {
    /// The selected vector: minimum degradation within the leakage band.
    pub fn best(&self) -> &MlvEvaluation {
        &self.evaluations[self.best_for_nbti]
    }

    /// Spread of degradation across the set, in absolute delay fraction —
    /// the paper's "MLV diff" column (small at low standby temperature,
    /// which is the paper's headline IVC finding).
    pub fn degradation_spread(&self) -> f64 {
        let lo = self
            .evaluations
            .iter()
            .map(|e| e.degradation)
            .fold(f64::MAX, f64::min);
        let hi = self
            .evaluations
            .iter()
            .map(|e| e.degradation)
            .fold(0.0f64, f64::max);
        hi - lo
    }
}

/// Evaluates the NBTI degradation of every vector in `set` and selects the
/// best (the Fig. 6 co-optimization step).
///
/// # Errors
///
/// Returns [`FlowError`] if an evaluation fails.
pub fn co_optimize(
    analysis: &AgingAnalysis<'_>,
    set: &MlvSet,
) -> Result<CoOptimization, FlowError> {
    assert!(
        !set.vectors().is_empty(),
        "co-optimization needs a nonempty MLV set"
    );
    let mut evaluations = Vec::with_capacity(set.vectors().len());
    let mut nominal = 0.0;
    for (vector, leakage) in set.vectors() {
        let report = analysis.run(&StandbyPolicy::InputVector(vector.clone()))?;
        nominal = report.nominal.max_delay_ps();
        evaluations.push(MlvEvaluation {
            vector: vector.clone(),
            leakage: *leakage,
            degradation: report.degradation_fraction(),
        });
    }
    let best_for_nbti = evaluations
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.degradation.total_cmp(&b.1.degradation))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(CoOptimization {
        evaluations,
        best_for_nbti,
        nominal_delay_ps: nominal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlv::{search_mlv_set, MlvSearchConfig};
    use relia_flow::FlowConfig;
    use relia_netlist::iscas;

    #[test]
    fn co_optimization_selects_minimum_degradation() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let set = search_mlv_set(&analysis, &MlvSearchConfig::default()).unwrap();
        let co = co_optimize(&analysis, &set).unwrap();
        let best = co.best().degradation;
        for e in &co.evaluations {
            assert!(e.degradation >= best - 1e-15);
        }
        assert!(co.nominal_delay_ps > 0.0);
        assert!(co.degradation_spread() >= 0.0);
    }

    #[test]
    fn degradation_spread_is_small_at_cool_standby() {
        // The paper's headline: at T_standby = 330 K the MLV-to-MLV
        // difference is a fraction of a percent of the circuit delay.
        let circuit = iscas::circuit("c432").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let set = search_mlv_set(
            &analysis,
            &MlvSearchConfig {
                vectors_per_round: 48,
                max_rounds: 6,
                max_set_size: 6,
                ..MlvSearchConfig::default()
            },
        )
        .unwrap();
        let co = co_optimize(&analysis, &set).unwrap();
        assert!(
            co.degradation_spread() < 0.01,
            "spread {} should be well under 1%",
            co.degradation_spread()
        );
    }
}

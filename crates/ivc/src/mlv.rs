//! The probability-based MLV-set search (the paper's Fig. 7 pseudocode).
//!
//! The algorithm evolves a population of input vectors:
//!
//! 1. generate `vectors_per_round` random vectors;
//! 2. keep the *MLV set*: every distinct vector whose standby leakage is
//!    within `epsilon` (relative) of the set minimum;
//! 3. estimate each primary input's probability of being 1 from its
//!    frequency in the set;
//! 4. sample the next round from those probabilities;
//! 5. stop when every probability has converged to 0 or 1 (no new vectors
//!    can appear) or the round budget is exhausted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relia_flow::{AgingAnalysis, FlowError};

/// Parameters of the MLV search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlvSearchConfig {
    /// Vectors sampled per round.
    pub vectors_per_round: usize,
    /// Relative leakage band around the set minimum that keeps a vector in
    /// the MLV set (the paper uses 4%).
    pub epsilon: f64,
    /// Maximum number of evolution rounds.
    pub max_rounds: usize,
    /// A probability within this distance of 0 or 1 counts as converged.
    pub convergence: f64,
    /// Cap on the returned set size (lowest-leakage vectors win).
    pub max_set_size: usize,
    /// Independent evolution restarts whose candidate sets are merged —
    /// each restart can converge to a different low-leakage basin, which
    /// keeps the final set diverse.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlvSearchConfig {
    fn default() -> Self {
        MlvSearchConfig {
            vectors_per_round: 128,
            epsilon: 0.04,
            max_rounds: 24,
            convergence: 0.02,
            max_set_size: 16,
            restarts: 4,
            seed: 0x17C,
        }
    }
}

/// The resulting MLV set: distinct vectors within the leakage band, sorted
/// by leakage (lowest first).
#[derive(Debug, Clone, PartialEq)]
pub struct MlvSet {
    vectors: Vec<(Vec<bool>, f64)>,
    rounds_used: usize,
}

impl MlvSet {
    /// `(vector, leakage)` pairs, lowest leakage first.
    pub fn vectors(&self) -> &[(Vec<bool>, f64)] {
        &self.vectors
    }

    /// The minimum leakage found, in amperes.
    pub fn min_leakage(&self) -> f64 {
        self.vectors.first().map(|(_, l)| *l).unwrap_or(f64::NAN)
    }

    /// The spread of leakage across the set, relative to the minimum.
    pub fn relative_spread(&self) -> f64 {
        match (self.vectors.first(), self.vectors.last()) {
            (Some((_, lo)), Some((_, hi))) => (hi - lo) / lo,
            _ => 0.0,
        }
    }

    /// Rounds the search ran before converging.
    pub fn rounds_used(&self) -> usize {
        self.rounds_used
    }
}

/// Runs the probability-based MLV-set search over the prepared analysis.
///
/// # Errors
///
/// Returns [`FlowError`] if leakage evaluation fails (malformed circuit
/// state).
pub fn search_mlv_set(
    analysis: &AgingAnalysis<'_>,
    config: &MlvSearchConfig,
) -> Result<MlvSet, FlowError> {
    let mut merged: Vec<(Vec<bool>, f64)> = Vec::new();
    let mut rounds_total = 0;
    for r in 0..config.restarts.max(1) {
        let one = search_once(analysis, config, config.seed.wrapping_add(r as u64))?;
        rounds_total += one.rounds_used;
        for (v, l) in one.vectors {
            if !merged.iter().any(|(mv, _)| *mv == v) {
                merged.push((v, l));
            }
        }
    }
    merged.sort_by(|a, b| a.1.total_cmp(&b.1));
    let min = merged[0].1;
    merged.retain(|(_, l)| *l <= min * (1.0 + config.epsilon));
    let vectors = diversify(merged, min, config.max_set_size.max(1));
    Ok(MlvSet {
        vectors,
        rounds_used: rounds_total,
    })
}

/// Keeps the set diverse within the leakage band: converged populations
/// emit many twins of the best vector (differing only in don't-care
/// inputs), which would crowd out genuinely different candidates. Each
/// leakage micro-bucket keeps at most two representatives.
fn diversify(sorted: Vec<(Vec<bool>, f64)>, min: f64, cap: usize) -> Vec<(Vec<bool>, f64)> {
    let mut kept: Vec<(Vec<bool>, f64)> = Vec::with_capacity(cap);
    let mut bucket_counts: Vec<(i64, usize)> = Vec::new();
    for (v, l) in sorted {
        let bucket = ((l / min - 1.0) / 1e-4).round() as i64;
        let count = bucket_counts
            .iter_mut()
            .find(|(b, _)| *b == bucket)
            .map(|(_, c)| {
                *c += 1;
                *c
            })
            .unwrap_or_else(|| {
                bucket_counts.push((bucket, 1));
                1
            });
        if count <= 2 {
            kept.push((v, l));
        }
        if kept.len() >= cap {
            break;
        }
    }
    kept
}

/// One evolution run from a single seed.
fn search_once(
    analysis: &AgingAnalysis<'_>,
    config: &MlvSearchConfig,
    seed: u64,
) -> Result<MlvSet, FlowError> {
    let n = analysis.circuit().primary_inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    // The first restart starts unbiased; later restarts start from random
    // biases so they can converge to different low-leakage basins.
    let mut probs: Vec<f64> = if seed == config.seed {
        vec![0.5; n]
    } else {
        (0..n).map(|_| rng.gen_range(0.15..0.85)).collect()
    };
    // The evolving MLV set, keyed by vector; (vector, leakage).
    let mut set: Vec<(Vec<bool>, f64)> = Vec::new();
    let mut rounds_used = config.max_rounds;

    for round in 0..config.max_rounds {
        for _ in 0..config.vectors_per_round {
            let v: Vec<bool> = probs.iter().map(|&p| rng.gen_bool(p)).collect();
            if set.iter().any(|(sv, _)| *sv == v) {
                continue;
            }
            let leakage = analysis.standby_leakage(&v)?;
            set.push((v, leakage));
        }
        set.sort_by(|a, b| a.1.total_cmp(&b.1));
        let min = set[0].1;
        set.retain(|(_, l)| *l <= min * (1.0 + config.epsilon));
        set = diversify(set, min, config.max_set_size.max(1));

        // Re-estimate per-input probabilities from the surviving set.
        for (i, p) in probs.iter_mut().enumerate() {
            let ones = set.iter().filter(|(v, _)| v[i]).count();
            *p = ones as f64 / set.len() as f64;
            // Keep a sliver of exploration until convergence.
            *p = p.clamp(0.02, 0.98);
        }
        let converged = probs
            .iter()
            .all(|&p| p <= 0.02 + config.convergence || p >= 0.98 - config.convergence);
        if converged {
            rounds_used = round + 1;
            break;
        }
    }

    Ok(MlvSet {
        vectors: set,
        rounds_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_flow::FlowConfig;
    use relia_netlist::iscas;

    fn run(seed: u64) -> MlvSet {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        search_mlv_set(
            &analysis,
            &MlvSearchConfig {
                seed,
                ..MlvSearchConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn finds_the_true_minimum_on_c17() {
        // c17 has 5 inputs: exhaustive ground truth is cheap.
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let mut best = f64::MAX;
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            best = best.min(analysis.standby_leakage(&v).unwrap());
        }
        let set = run(1);
        assert!(
            (set.min_leakage() - best).abs() / best < 1e-9,
            "heuristic {} vs exhaustive {}",
            set.min_leakage(),
            best
        );
    }

    #[test]
    fn set_respects_the_band() {
        let set = run(2);
        assert!(set.relative_spread() <= 0.04 + 1e-12);
        for w in set.vectors().windows(2) {
            assert!(w[0].1 <= w[1].1, "set must be sorted");
        }
    }

    #[test]
    fn vectors_are_distinct() {
        let set = run(3);
        let mut vs: Vec<&Vec<bool>> = set.vectors().iter().map(|(v, _)| v).collect();
        let before = vs.len();
        vs.sort();
        vs.dedup();
        assert_eq!(vs.len(), before);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(7).vectors(), run(7).vectors());
    }
}

//! Exhaustive minimum-leakage-vector search (ground truth for the
//! heuristic, feasible for small input counts).

use relia_flow::{AgingAnalysis, FlowError};

/// Upper bound on the input count accepted by [`exhaustive_mlv`].
pub const MAX_EXHAUSTIVE_INPUTS: usize = 16;

/// Finds the true minimum-leakage vector by enumerating all `2^n` inputs.
///
/// Returns `(vector, leakage)`.
///
/// # Errors
///
/// Returns [`FlowError`] when leakage evaluation fails.
///
/// # Panics
///
/// Panics when the circuit has more than [`MAX_EXHAUSTIVE_INPUTS`] primary
/// inputs (use the probability-based search instead).
pub fn exhaustive_mlv(analysis: &AgingAnalysis<'_>) -> Result<(Vec<bool>, f64), FlowError> {
    let n = analysis.circuit().primary_inputs().len();
    assert!(
        n <= MAX_EXHAUSTIVE_INPUTS,
        "exhaustive search over {n} inputs would enumerate 2^{n} vectors"
    );
    let mut best: Option<(Vec<bool>, f64)> = None;
    for bits in 0..(1u64 << n) {
        let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let leakage = analysis.standby_leakage(&v)?;
        if best.as_ref().map(|(_, l)| leakage < *l).unwrap_or(true) {
            best = Some((v, leakage));
        }
    }
    // The 0..2^n loop runs at least once (bits = 0), so `best` is set.
    // relia-lint: allow(unwrap-in-lib)
    Ok(best.expect("n >= 0 always yields at least one vector"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_flow::FlowConfig;
    use relia_netlist::iscas;

    #[test]
    fn exhaustive_is_truly_minimal_on_c17() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let (v, l) = exhaustive_mlv(&analysis).unwrap();
        assert_eq!(v.len(), 5);
        for bits in 0..32u32 {
            let w: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert!(analysis.standby_leakage(&w).unwrap() >= l - 1e-18);
        }
    }
}

//! Greedy control-point insertion for internal node control (Lin et al.,
//! the paper's ref.\[9\]).
//!
//! The idealized INC bound (Table 4) assumes *every* internal node can be
//! driven; real control-point insertion pays area and delay per point, so
//! only a few gates get one. The greedy selector repeatedly places a
//! control point on the gate that currently dominates the aged critical
//! path, re-evaluating after each insertion — producing the
//! degradation-vs-budget curve a designer actually needs.

use relia_flow::{AgingAnalysis, FlowError, StandbyPolicy};
use relia_netlist::GateId;
use relia_sta::TimingAnalysis;

/// One point of the insertion curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPointStep {
    /// Gates forced so far (in insertion order).
    pub forced: Vec<GateId>,
    /// Delay degradation with this set of control points.
    pub degradation: f64,
}

/// Greedily inserts up to `budget` control points on top of the standby
/// vector `vector`, returning the degradation after each insertion
/// (element 0 is the no-control-point baseline).
///
/// Each step forces the *most critical still-unforced gate on the aged
/// critical path*; the loop stops early when the critical path contains no
/// standby-stressed gate (further points cannot help).
///
/// # Errors
///
/// Returns [`FlowError`] for a malformed vector.
pub fn greedy_control_points(
    analysis: &AgingAnalysis<'_>,
    vector: &[bool],
    budget: usize,
) -> Result<Vec<ControlPointStep>, FlowError> {
    let circuit = analysis.circuit();
    let params = analysis.config().nbti.params();
    let nominal = TimingAnalysis::nominal(circuit).max_delay_ps();
    let base_flags = analysis.standby_stress_of_vector(vector)?;

    let mut forced: Vec<GateId> = Vec::new();
    let mut steps = Vec::with_capacity(budget + 1);
    for _ in 0..=budget {
        let policy = StandbyPolicy::ControlPoints {
            vector: vector.to_vec(),
            forced: forced.clone(),
        };
        let shifts = analysis.gate_delta_vth(&policy)?;
        let aged = TimingAnalysis::degraded(circuit, &shifts, params)?;
        steps.push(ControlPointStep {
            forced: forced.clone(),
            degradation: aged.max_delay_ps() / nominal - 1.0,
        });
        if steps.len() > budget {
            break;
        }
        // Pick the largest-shift unforced gate on the aged critical path
        // whose standby state actually stresses a PMOS.
        let candidate = aged
            .critical_path()
            .iter()
            .copied()
            .filter(|g| !forced.contains(g))
            .filter(|g| base_flags[g.index()].iter().any(|&s| s))
            .max_by(|a, b| shifts[a.index()].total_cmp(&shifts[b.index()]));
        match candidate {
            Some(g) => forced.push(g),
            None => break, // nothing stressed on the critical path
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_flow::FlowConfig;
    use relia_netlist::iscas;

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let circuit = iscas::circuit("c432").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let zeros = vec![false; circuit.primary_inputs().len()];
        let steps = greedy_control_points(&analysis, &zeros, 8).unwrap();
        assert!(!steps.is_empty());
        for w in steps.windows(2) {
            assert!(
                w[1].degradation <= w[0].degradation + 1e-12,
                "{} -> {}",
                w[0].degradation,
                w[1].degradation
            );
        }
        // The budgeted curve cannot beat the idealized all-'1' bound.
        let best = analysis
            .run(&StandbyPolicy::AllInternalOne)
            .unwrap()
            .degradation_fraction();
        for s in &steps {
            assert!(s.degradation >= best - 1e-12);
        }
    }

    #[test]
    fn first_insertion_helps_on_stressed_circuit() {
        let circuit = iscas::circuit("c880").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let zeros = vec![false; circuit.primary_inputs().len()];
        let steps = greedy_control_points(&analysis, &zeros, 3).unwrap();
        assert!(steps.len() >= 2, "selector found no stressed critical gate");
        assert!(steps[1].degradation < steps[0].degradation);
        assert_eq!(steps[1].forced.len(), 1);
    }

    #[test]
    fn zero_budget_is_baseline_only() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let steps = greedy_control_points(&analysis, &[false; 5], 0).unwrap();
        assert_eq!(steps.len(), 1);
        assert!(steps[0].forced.is_empty());
    }
}

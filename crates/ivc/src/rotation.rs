//! Alternating input vector control (the Penelope-style rotation of
//! Abella et al., the paper's ref.\[23\]).
//!
//! Any *single* standby vector always stresses the same PMOS devices, so
//! over the lifetime those devices take the full standby damage. Rotating
//! among several vectors that stress *different* devices spreads the
//! damage: each PMOS's standby stress probability becomes the fraction of
//! rotation slots that stress it, and because damage grows sublinearly
//! (`t^(1/4)` with recovery in between), the worst device ages less than
//! under any fixed member of the rotation.

use relia_flow::{AgingAnalysis, FlowError};
use relia_sta::TimingAnalysis;

/// Evaluation of a rotation schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RotationEvaluation {
    /// The rotated vectors.
    pub vectors: Vec<Vec<bool>>,
    /// Relative delay degradation over the configured lifetime under the
    /// rotation.
    pub degradation: f64,
    /// Average standby leakage across the rotation (each vector gets an
    /// equal share of the standby time).
    pub mean_leakage: f64,
}

/// Evaluates an equal-share rotation among `vectors`: each standby period
/// parks the circuit on the next vector in turn, so each PMOS's standby
/// stress probability is its stress frequency across the set.
///
/// # Errors
///
/// Returns [`FlowError`] for an empty set or malformed vectors.
pub fn evaluate_rotation(
    analysis: &AgingAnalysis<'_>,
    vectors: &[Vec<bool>],
) -> Result<RotationEvaluation, FlowError> {
    if vectors.is_empty() {
        return Err(FlowError::GateVectorWidth {
            expected: 1,
            got: 0,
        });
    }
    let circuit = analysis.circuit();
    // Per-gate, per-PMOS stress frequency across the rotation.
    let mut freq: Vec<Vec<f64>> = Vec::new();
    let mut mean_leakage = 0.0;
    for (k, v) in vectors.iter().enumerate() {
        let flags = analysis.standby_stress_of_vector(v)?;
        if k == 0 {
            freq = flags.iter().map(|gate| vec![0.0; gate.len()]).collect();
        }
        for (gf, gv) in freq.iter_mut().zip(flags) {
            for (pf, pv) in gf.iter_mut().zip(gv) {
                if pv {
                    *pf += 1.0;
                }
            }
        }
        mean_leakage += analysis.standby_leakage(v)?;
    }
    let n = vectors.len() as f64;
    for gate in &mut freq {
        for p in gate.iter_mut() {
            *p /= n;
        }
    }
    mean_leakage /= n;

    let shifts = analysis.gate_delta_vth_with_standby_probs(&freq)?;
    let nominal = TimingAnalysis::nominal(circuit);
    let degraded = TimingAnalysis::degraded(circuit, &shifts, analysis.config().nbti.params())?;
    Ok(RotationEvaluation {
        vectors: vectors.to_vec(),
        degradation: degraded.max_delay_ps() / nominal.max_delay_ps() - 1.0,
        mean_leakage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlv::{search_mlv_set, MlvSearchConfig};
    use relia_flow::{FlowConfig, StandbyPolicy};
    use relia_netlist::iscas;

    #[test]
    fn rotation_never_beats_zero_but_beats_worst_member() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        // Two complementary vectors stress disjoint PMOS sets.
        let a = vec![false; 5];
        let b = vec![true; 5];
        let rot = evaluate_rotation(&analysis, &[a.clone(), b.clone()]).unwrap();
        let da = analysis
            .run(&StandbyPolicy::InputVector(a))
            .unwrap()
            .degradation_fraction();
        let db = analysis
            .run(&StandbyPolicy::InputVector(b))
            .unwrap()
            .degradation_fraction();
        let worst_member = da.max(db);
        assert!(
            rot.degradation <= worst_member + 1e-12,
            "rotation {} vs worst member {}",
            rot.degradation,
            worst_member
        );
        assert!(rot.degradation > 0.0);
    }

    #[test]
    fn rotating_the_mlv_set_spreads_damage() {
        let circuit = iscas::circuit("c432").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let set = search_mlv_set(
            &analysis,
            &MlvSearchConfig {
                vectors_per_round: 48,
                max_rounds: 6,
                ..MlvSearchConfig::default()
            },
        )
        .unwrap();
        let vectors: Vec<Vec<bool>> = set.vectors().iter().map(|(v, _)| v.clone()).collect();
        let rot = evaluate_rotation(&analysis, &vectors).unwrap();
        // The rotation's leakage stays within the MLV band.
        assert!(rot.mean_leakage <= set.min_leakage() * 1.04 + 1e-18);
        // And its degradation is no worse than the worst single member.
        let worst_member = vectors
            .iter()
            .map(|v| {
                analysis
                    .run(&StandbyPolicy::InputVector(v.clone()))
                    .unwrap()
                    .degradation_fraction()
            })
            .fold(0.0f64, f64::max);
        assert!(rot.degradation <= worst_member + 1e-12);
    }

    #[test]
    fn empty_rotation_is_error() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        assert!(evaluate_rotation(&analysis, &[]).is_err());
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-ivc
//!
//! Input vector control (IVC) and internal node control (INC) for
//! simultaneous standby-leakage and NBTI mitigation.
//!
//! * [`mlv`] — the paper's probability-based minimum-leakage-vector (MLV)
//!   *set* search (Fig. 7): evolve a population of input vectors toward low
//!   leakage, keeping every vector whose leakage is within a band of the
//!   minimum.
//! * [`exact`] — exhaustive MLV search for small input counts (ground truth
//!   for the heuristic).
//! * [`cooptim`] — the NBTI/leakage co-optimization: evaluate the
//!   NBTI-induced delay degradation of every vector in the MLV set and pick
//!   the one minimizing degradation (the paper's Table 3 experiment).
//! * [`internal_node`] — the internal-node-control *potential*: the gap
//!   between the all-'0' worst case and the all-'1' best case (Table 4).
//! * [`rotation`] — alternating IVC (Abella et al., the paper's ref.\[23\]):
//!   rotate among several vectors so no single PMOS takes the full standby
//!   damage.
//! * [`control_points`] — budgeted internal node control (Lin et al., the
//!   paper's ref.\[9\]): greedily place control points on the aged critical
//!   path.
//!
//! ```
//! use relia_flow::{AgingAnalysis, FlowConfig};
//! use relia_ivc::mlv::{search_mlv_set, MlvSearchConfig};
//! use relia_netlist::iscas;
//!
//! # fn main() -> Result<(), relia_flow::FlowError> {
//! let circuit = iscas::c17();
//! let config = FlowConfig::paper_defaults()?;
//! let analysis = AgingAnalysis::new(&config, &circuit)?;
//! let set = search_mlv_set(&analysis, &MlvSearchConfig::default())?;
//! assert!(!set.vectors().is_empty());
//! # Ok(())
//! # }
//! ```

pub mod control_points;
pub mod cooptim;
pub mod exact;
pub mod internal_node;
pub mod mlv;
pub mod rotation;

pub use control_points::{greedy_control_points, ControlPointStep};
pub use cooptim::{co_optimize, CoOptimization, MlvEvaluation};
pub use exact::exhaustive_mlv;
pub use internal_node::{internal_node_potential, IncPotential};
pub use mlv::{search_mlv_set, MlvSearchConfig, MlvSet};
pub use rotation::{evaluate_rotation, RotationEvaluation};

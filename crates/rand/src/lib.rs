#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Offline stand-in for the `rand` crate.
//!
//! The public registry is unreachable from this build environment, so the
//! workspace vendors the small subset of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`] / [`Rng::gen_bool`] / [`Rng::gen_range`] methods.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with the same contract the
//! workspace relies on: deterministic per seed, distinct across seeds, and
//! statistically uniform. Nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type (subset of `rand`'s range support).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Types that can be drawn from the "standard" distribution via
/// [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Random generators (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A value from the standard distribution (`f64` in `[0, 1)`, uniform
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! The standard generator (subset of `rand::rngs`).

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Uniform integer in `[0, n)` by widening multiply (Lemire reduction
/// without the rejection loop; the bias is < 2^-32 for the small ranges the
/// workspace draws).
fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_samples_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&f));
            let k = rng.gen_range(5u64..=5);
            assert_eq!(k, 5);
        }
        // Every bucket of a small range is eventually hit.
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! The resilience acceptance suite (requires `--features fault-inject`).
//!
//! Each test injects one class of deterministic fault and proves the
//! corresponding recovery path end to end through [`run_sweep`]:
//!
//! 1. an injected cooperative hang becomes [`JobStatus::TimedOut`] without
//!    stalling the pool;
//! 2. an injected transient panic succeeds after retry, and the recovered
//!    sweep is byte-identical to a fault-free run;
//! 3. a checkpoint corrupted behind the engine's back (torn tail, bit
//!    flips, duplicated records) resumes from the salvaged prefix and
//!    still produces byte-identical final output;
//! 4. an injected NaN surfaces as a structured failure and never enters
//!    the memo cache.

#![allow(clippy::unwrap_used)]
#![cfg(feature = "fault-inject")]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use relia_core::units::{Kelvin, Seconds};
use relia_jobs::fault::{self, Fault, FaultPlan};
use relia_jobs::{
    builtin_resolver, load_checkpoint, run_sweep, JobStatus, SweepOptions, SweepSpec, Workload,
};

/// A fast all-model grid (18 points, each a single cached evaluation).
fn model_spec() -> SweepSpec {
    SweepSpec {
        workload: Workload::ModelDeltaVth {
            p_active: 0.5,
            p_standby: 1.0,
        },
        ras: vec![(1.0, 1.0), (1.0, 5.0), (1.0, 9.0)],
        t_standby: vec![Kelvin(330.0), Kelvin(360.0), Kelvin(400.0)],
        lifetimes: vec![Seconds(1.0e6), Seconds(1.0e8)],
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("relia-fi-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn options(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        ..SweepOptions::default()
    }
}

#[test]
fn an_injected_hang_times_out_without_stalling_the_pool() {
    let spec = model_spec();
    let hung = 4usize;
    let opts = SweepOptions {
        workers: 4,
        job_timeout: Some(Duration::from_millis(150)),
        faults: Some(Arc::new(
            FaultPlan::new().with(hung, Fault::Hang { ms: 120_000 }),
        )),
        ..SweepOptions::default()
    };
    let started = Instant::now();
    let out = run_sweep(&spec, &opts, builtin_resolver).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the watchdog, not the 120 s hang budget, must end the job"
    );
    for (i, status) in out.statuses.iter().enumerate() {
        if i == hung {
            match status {
                JobStatus::TimedOut { elapsed_ms } => {
                    assert!(*elapsed_ms >= 100, "ran to the vicinity of the deadline");
                }
                other => panic!("job {hung} should time out, got {other:?}"),
            }
        } else {
            assert!(status.result().is_some(), "job {i} must be unaffected");
        }
    }
    assert_eq!(out.metrics.timed_out_jobs, 1);
    assert_eq!(out.metrics.failed_jobs, 0);
}

#[test]
fn an_injected_transient_panic_succeeds_after_retry() {
    let spec = model_spec();
    let clean = run_sweep(&spec, &options(2), builtin_resolver).unwrap();

    let flaky = 7usize;
    let opts = SweepOptions {
        workers: 2,
        retries: 2,
        faults: Some(Arc::new(
            FaultPlan::new().with(flaky, Fault::Panic { times: 2 }),
        )),
        ..SweepOptions::default()
    };
    let out = run_sweep(&spec, &opts, builtin_resolver).unwrap();
    assert_eq!(out.metrics.failed_jobs, 0, "retries absorbed the panics");
    assert_eq!(out.metrics.retried_jobs, 2);
    // Recovery is invisible in the results: byte-identical to fault-free.
    assert_eq!(out.statuses, clean.statuses);
}

#[test]
fn an_exhausted_retry_budget_reports_the_panic_with_its_attempt_count() {
    let spec = model_spec();
    let flaky = 3usize;
    let opts = SweepOptions {
        workers: 2,
        retries: 1,
        faults: Some(Arc::new(
            FaultPlan::new().with(flaky, Fault::Panic { times: 5 }),
        )),
        ..SweepOptions::default()
    };
    let out = run_sweep(&spec, &opts, builtin_resolver).unwrap();
    match &out.statuses[flaky] {
        JobStatus::Failed { reason, attempts } => {
            assert!(reason.contains("panic"), "reason: {reason}");
            assert_eq!(*attempts, 2, "1 initial + 1 retry");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(out.metrics.failed_jobs, 1);
    assert_eq!(out.metrics.retried_jobs, 1);
}

#[test]
fn a_corrupted_checkpoint_resumes_from_the_salvaged_prefix() {
    let spec = model_spec();
    let clean = run_sweep(&spec, &options(2), builtin_resolver).unwrap();

    // Torn tail: truncate into the middle of the final record.
    let path = tmp("torn");
    let with_ckpt = |p: &PathBuf| SweepOptions {
        workers: 2,
        checkpoint: Some(p.clone()),
        ..SweepOptions::default()
    };
    run_sweep(&spec, &with_ckpt(&path), builtin_resolver).unwrap();
    fault::truncate_tail(&path, 7).unwrap();
    let resumed = run_sweep(&spec, &with_ckpt(&path), builtin_resolver).unwrap();
    assert_eq!(resumed.metrics.salvaged_dropped, 1, "the torn record");
    assert_eq!(resumed.metrics.resumed_jobs, spec.len() - 1);
    assert_eq!(resumed.metrics.executed_jobs, 1, "only the torn job re-ran");
    assert_eq!(resumed.statuses, clean.statuses, "byte-identical output");

    // Bit rot: seeded random flips somewhere in the record region.
    let path2 = tmp("bitrot");
    run_sweep(&spec, &with_ckpt(&path2), builtin_resolver).unwrap();
    fault::flip_random_bits(&path2, 0xdecade, 3).unwrap();
    let resumed = run_sweep(&spec, &with_ckpt(&path2), builtin_resolver).unwrap();
    assert!(resumed.metrics.salvaged_dropped >= 1, "flips were detected");
    assert_eq!(resumed.statuses, clean.statuses, "byte-identical output");

    // Duplicate record: valid CRC, so nothing is dropped — last-wins
    // absorbs it and no work re-runs.
    let path3 = tmp("dup");
    run_sweep(&spec, &with_ckpt(&path3), builtin_resolver).unwrap();
    fault::duplicate_last_record(&path3).unwrap();
    let resumed = run_sweep(&spec, &with_ckpt(&path3), builtin_resolver).unwrap();
    assert_eq!(resumed.metrics.salvaged_dropped, 0);
    assert_eq!(resumed.metrics.executed_jobs, 0);
    assert_eq!(resumed.statuses, clean.statuses);

    // After each salvage + re-run, the file itself is strictly loadable
    // and complete again.
    for p in [&path, &path2, &path3] {
        let ckpt = load_checkpoint(p).unwrap().unwrap();
        assert_eq!(ckpt.completed_indices().count(), spec.len());
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn an_injected_nan_is_a_structured_error_and_never_enters_the_cache() {
    let spec = model_spec();
    let clean = run_sweep(&spec, &options(2), builtin_resolver).unwrap();

    let poisoned = 0usize;
    let opts = SweepOptions {
        workers: 2,
        retries: 3, // must NOT help: a NaN result is a permanent failure
        faults: Some(Arc::new(FaultPlan::new().with(poisoned, Fault::Nan))),
        ..SweepOptions::default()
    };
    let out = run_sweep(&spec, &opts, builtin_resolver).unwrap();
    match &out.statuses[poisoned] {
        JobStatus::Failed { reason, attempts } => {
            assert!(
                reason.contains("non-finite"),
                "structured NonFinite diagnostic, got: {reason}"
            );
            assert_eq!(*attempts, 1, "permanent failures skip the retry budget");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(out.metrics.retried_jobs, 0);
    // The cache holds exactly the same entries as a fault-free run — the
    // NaN was rejected at admission, not stored.
    assert_eq!(out.metrics.cache.entries, clean.metrics.cache.entries);
    // Every other job still produced bit-identical numbers.
    for (i, (a, b)) in out.statuses.iter().zip(&clean.statuses).enumerate() {
        if i != poisoned {
            assert_eq!(a, b, "job {i}");
        }
    }
}

//! Property-based corruption tests for the checkpoint salvage path.
//!
//! The guarantee under test: for *any* written checkpoint damaged by tail
//! truncation or a single bit flip in its record region, [`salvage`]
//! recovers **exactly** the longest valid prefix of records — never a
//! mis-parsed record, never fewer than the intact ones — and rewrites the
//! file so a subsequent strict load succeeds.
//!
//! [`salvage`]: relia_jobs::salvage_checkpoint

#![allow(clippy::unwrap_used)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use relia_jobs::{load_checkpoint, salvage_checkpoint, CheckpointWriter, JobResult, JobStatus};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "relia-ckpt-prop-{}-{}-{name}.jsonl",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// Writes one record per value and returns the file's line layout:
/// `(start, content_len)` byte offsets for every line, header included.
fn write_checkpoint(path: &Path, values: &[f64]) -> Vec<(usize, usize)> {
    let mut w = CheckpointWriter::create(path, 0xfeed, values.len()).unwrap();
    for (i, &v) in values.iter().enumerate() {
        w.record(i, &JobStatus::Completed(JobResult::Model { delta_vth: v }))
            .unwrap();
    }
    drop(w);
    let text = std::fs::read_to_string(path).unwrap();
    let mut layout = Vec::new();
    let mut start = 0usize;
    for line in text.split_inclusive('\n') {
        let content_len = line.trim_end_matches('\n').len();
        layout.push((start, content_len));
        start += line.len();
    }
    layout
}

fn assert_prefix(path: &Path, values: &[f64], expected_records: usize, dropped: usize) {
    let s = salvage_checkpoint(path).unwrap().unwrap();
    assert_eq!(s.dropped_records, dropped, "dropped-record count");
    assert_eq!(s.checkpoint.statuses.len(), expected_records);
    for (i, &v) in values.iter().enumerate().take(expected_records) {
        // Exactly the valid prefix, bit-equal values, in order.
        assert_eq!(
            s.checkpoint.statuses.get(&i),
            Some(&JobStatus::Completed(JobResult::Model { delta_vth: v })),
            "record {i}"
        );
    }
    // The rewrite left a strictly loadable file behind.
    let reloaded = load_checkpoint(path).unwrap().unwrap();
    assert_eq!(reloaded.statuses.len(), expected_records);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tail truncation of any length: every record whose content bytes are
    /// fully intact survives; everything at or past the cut is dropped.
    #[test]
    fn salvage_recovers_exactly_the_valid_prefix_after_truncation(
        values in prop::collection::vec(-1.0e3f64..1.0e3, 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = tmp("trunc");
        let layout = write_checkpoint(&path, &values);
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        // Cut somewhere inside the record region (never into the header).
        let (header_start, header_len) = layout[0];
        let record_region = file_len - (header_start + header_len + 1);
        let cut = 1 + (cut_frac * (record_region.saturating_sub(1)) as f64) as usize;
        let keep = file_len - cut;

        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep as u64).unwrap();
        drop(f);

        // A record survives iff all of its content bytes survive (a lost
        // trailing newline alone does not invalidate the line). Records cut
        // off entirely are simply absent; only a torn partial line still
        // present in the file counts as "dropped" by salvage.
        let surviving = layout[1..]
            .iter()
            .take_while(|&&(start, content_len)| start + content_len <= keep)
            .count();
        let present = layout[1..].iter().filter(|&&(start, _)| start < keep).count();
        assert_prefix(&path, &values, surviving, present - surviving);
        std::fs::remove_file(&path).ok();
    }

    /// A single bit flip anywhere in the record region: the CRC catches
    /// it, the damaged line and everything after it are dropped, and
    /// every record before the flip survives untouched.
    #[test]
    fn salvage_recovers_exactly_the_valid_prefix_after_a_bit_flip(
        values in prop::collection::vec(-1.0e3f64..1.0e3, 1..8),
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let path = tmp("flip");
        let layout = write_checkpoint(&path, &values);
        let mut bytes = std::fs::read(&path).unwrap();
        let record_start = layout[1].0;
        let target = record_start
            + (pos_frac * (bytes.len() - record_start - 1) as f64) as usize;
        bytes[target] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // The first line whose span (content + newline) contains the flip
        // is damaged; flipping an *interior* newline merges two lines into
        // one damaged line — either way the valid prefix ends there, and
        // the dropped count is over the lines actually present afterwards.
        let first_damaged = layout[1..]
            .iter()
            .position(|&(start, content_len)| target < start + content_len + 1)
            .unwrap();
        let merges_two_lines = layout[1..]
            .iter()
            .any(|&(start, content_len)| target == start + content_len)
            && target != bytes.len() - 1;
        let present = values.len() - usize::from(merges_two_lines);
        assert_prefix(&path, &values, first_damaged, present - first_damaged);
        std::fs::remove_file(&path).ok();
    }
}

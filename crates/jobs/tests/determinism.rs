//! The engine's headline guarantees: scheduling determinism, bit-exact
//! checkpoint/resume, per-job fault isolation, and a working memo cache.

#![allow(clippy::unwrap_used)]
use std::path::PathBuf;

use relia_core::units::{Kelvin, Seconds};
use relia_jobs::{
    builtin_resolver, load_checkpoint, run_sweep, CheckpointWriter, JobStatus, PolicySpec,
    SweepError, SweepOptions, SweepSpec, Workload,
};

fn aging_spec() -> SweepSpec {
    SweepSpec {
        workload: Workload::CircuitAging {
            circuits: vec!["c17".into()],
            policies: vec![PolicySpec::Worst, PolicySpec::Best, PolicySpec::Footer],
        },
        ras: vec![(1.0, 1.0), (1.0, 9.0)],
        t_standby: vec![Kelvin(330.0), Kelvin(400.0)],
        lifetimes: vec![Seconds(1.0e7), Seconds(1.0e8)],
    }
}

fn model_spec() -> SweepSpec {
    SweepSpec {
        workload: Workload::ModelDeltaVth {
            p_active: 0.5,
            p_standby: 1.0,
        },
        ras: vec![(1.0, 1.0), (1.0, 5.0), (1.0, 9.0)],
        t_standby: vec![Kelvin(330.0), Kelvin(360.0), Kelvin(400.0)],
        lifetimes: vec![Seconds(1.0e6), Seconds(1.0e8)],
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("relia-jobs-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn options(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        ..SweepOptions::default()
    }
}

#[test]
fn one_worker_and_many_workers_agree_exactly() {
    for spec in [aging_spec(), model_spec()] {
        let solo = run_sweep(&spec, &options(1), builtin_resolver).unwrap();
        for workers in [2, 8] {
            let parallel = run_sweep(&spec, &options(workers), builtin_resolver).unwrap();
            // PartialEq on JobStatus compares the f64 payloads exactly:
            // the results must be byte-identical, not merely close.
            assert_eq!(solo.statuses, parallel.statuses, "workers={workers}");
            assert_eq!(solo.points, parallel.points);
        }
        assert_eq!(solo.metrics.total_jobs, spec.len());
        assert_eq!(solo.metrics.failed_jobs, 0);
    }
}

#[test]
fn cache_gets_hits_on_an_aging_sweep() {
    let out = run_sweep(&aging_spec(), &options(4), builtin_resolver).unwrap();
    // Every gate of c17 whose worst PMOS sees the same quantized stress
    // point lands on the same key, so hits are guaranteed within one job,
    // let alone across the grid.
    assert!(out.metrics.cache.hits > 0, "{:?}", out.metrics.cache);
    assert!(out.metrics.cache.misses > 0);
    assert!(out.metrics.cache.entries as u64 <= out.metrics.cache.misses);
    assert!(out.metrics.cache.hit_rate() > 0.0);
}

#[test]
fn resumed_sweep_matches_uninterrupted_sweep() {
    let spec = aging_spec();
    let uninterrupted = run_sweep(&spec, &options(4), builtin_resolver).unwrap();

    // Run once with a checkpoint to collect the record lines, then build a
    // truncated checkpoint holding only the first half of the jobs —
    // exactly what a kill partway through leaves behind.
    let full_path = tmp("full");
    run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            checkpoint: Some(full_path.clone()),
            ..SweepOptions::default()
        },
        builtin_resolver,
    )
    .unwrap();
    let full = load_checkpoint(&full_path).unwrap().unwrap();

    let half_path = tmp("half");
    let mut w = CheckpointWriter::create(&half_path, spec.fingerprint(), spec.len()).unwrap();
    for (&index, status) in full.statuses.iter().take(spec.len() / 2) {
        w.record(index, status).unwrap();
    }
    drop(w);

    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            workers: 4,
            checkpoint: Some(half_path.clone()),
            ..SweepOptions::default()
        },
        builtin_resolver,
    )
    .unwrap();
    assert_eq!(resumed.metrics.resumed_jobs, spec.len() / 2);
    assert_eq!(resumed.metrics.executed_jobs, spec.len() - spec.len() / 2);
    assert_eq!(resumed.statuses, uninterrupted.statuses);

    // The resumed checkpoint now holds every job; a further resume
    // executes nothing and still agrees.
    let third = run_sweep(
        &spec,
        &SweepOptions {
            workers: 4,
            checkpoint: Some(half_path.clone()),
            ..SweepOptions::default()
        },
        builtin_resolver,
    )
    .unwrap();
    assert_eq!(third.metrics.executed_jobs, 0);
    assert_eq!(third.metrics.resumed_jobs, spec.len());
    assert_eq!(third.statuses, uninterrupted.statuses);

    std::fs::remove_file(&full_path).ok();
    std::fs::remove_file(&half_path).ok();
}

#[test]
fn checkpoint_from_a_different_spec_is_rejected() {
    let path = tmp("mismatch");
    run_sweep(
        &model_spec(),
        &SweepOptions {
            workers: 2,
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        },
        builtin_resolver,
    )
    .unwrap();
    let err = run_sweep(
        &aging_spec(),
        &SweepOptions {
            workers: 2,
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        },
        builtin_resolver,
    )
    .unwrap_err();
    assert!(
        matches!(err, SweepError::CheckpointMismatch { .. }),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_degenerate_point_fails_alone() {
    let mut spec = aging_spec();
    // (0, 0) RAS weights are rejected by Ras::new → that point fails while
    // the rest of the grid completes.
    spec.ras.push((0.0, 0.0));
    let out = run_sweep(&spec, &options(4), builtin_resolver).unwrap();
    let failed = out
        .statuses
        .iter()
        .filter(|s| matches!(s, JobStatus::Failed { .. }))
        .count();
    // One bad ras × 2 temps × 2 lifetimes × 3 policies.
    assert_eq!(failed, 12);
    assert_eq!(out.metrics.failed_jobs, 12);
    let completed = out.statuses.iter().filter(|s| s.result().is_some()).count();
    assert_eq!(completed, spec.len() - 12);
}

#[test]
fn unknown_circuit_is_a_sweep_error() {
    let mut spec = aging_spec();
    if let Workload::CircuitAging { circuits, .. } = &mut spec.workload {
        circuits.push("not-a-benchmark".into());
    }
    let err = run_sweep(&spec, &options(1), builtin_resolver).unwrap_err();
    assert!(matches!(err, SweepError::UnknownCircuit { .. }), "{err}");
}

#[test]
fn empty_grid_is_a_sweep_error() {
    let mut spec = aging_spec();
    spec.lifetimes.clear();
    assert!(matches!(
        run_sweep(&spec, &options(1), builtin_resolver),
        Err(SweepError::EmptySpec)
    ));
}

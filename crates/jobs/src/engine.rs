//! The sweep engine: prepare once per circuit, fan out over workers, memoize
//! model evaluations, checkpoint as results land.
//!
//! Determinism contract: for a given [`SweepSpec`] and circuit resolver,
//! [`run_sweep`] produces an identical `statuses` vector for **any** worker
//! count and **any** interruption/resume pattern. The three pieces that
//! make this hold:
//!
//! 1. the grid enumeration is a pure function of the spec
//!    ([`SweepSpec::points`]);
//! 2. every model evaluation goes through a [`StressKey`]'s canonical
//!    point, so a cache hit equals the miss-path computation bit-for-bit;
//! 3. checkpointed floats round-trip exactly (shortest `Display` ↔
//!    `parse`), so resumed values equal freshly computed ones.
//!
//! Resilience contract, layered on top:
//!
//! * jobs that fail **transiently** (panics, cancelled hangs) retry up to
//!   [`SweepOptions::retries`] times with bounded exponential backoff;
//!   **permanent** failures (invalid parameters, analysis errors) fail
//!   fast;
//! * with [`SweepOptions::job_timeout`] set, a watchdog cancels straggling
//!   jobs cooperatively — they surface as [`JobStatus::TimedOut`] and the
//!   pool drains instead of hanging;
//! * checkpoints are opened through [`checkpoint::salvage`], so a file
//!   damaged by a crash (torn tail, bit rot) resumes from its longest
//!   valid prefix instead of aborting the batch — the dropped-record count
//!   lands in [`SweepMetrics::salvaged_dropped`];
//! * a non-finite ΔV_th is rejected at the cache-admission boundary
//!   ([`ShardedCache::insert_checked`]) and becomes a structured job
//!   failure; `NaN` can never enter the memo table.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use relia_core::{
    CancelToken, Kelvin, ModeSchedule, NbtiModel, PmosStress, Ras, Seconds, StressKey,
};
use relia_flow::{AgingAnalysis, AnalysisPrep, DeltaVthCache, FlowConfig, FlowError};
use relia_netlist::Circuit;

use relia_obs::{LatencyHist, Tracer};

use crate::cache::ShardedCache;
use crate::checkpoint::{self, CheckpointError, CheckpointWriter};
use crate::metrics::{SweepMetrics, SweepTimings};
use crate::pool::{self, JobFailure, PoolConfig, RetryPolicy};
use crate::spec::{JobPoint, JobResult, JobStatus, JobTask, SweepSpec, Workload};

#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;

/// Mode-cycle period shared by every sweep point (the paper's baseline).
pub const SWEEP_PERIOD_S: f64 = 1000.0;
/// Active-mode temperature shared by every sweep point.
pub const SWEEP_TEMP_ACTIVE_K: f64 = 400.0;

/// Knobs of one engine run.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 means [`pool::default_workers`].
    pub workers: usize,
    /// Checkpoint file: created if absent, resumed from (salvaging a
    /// corrupted tail) if present.
    pub checkpoint: Option<PathBuf>,
    /// Memo-cache shard count; 0 means [`crate::cache::DEFAULT_SHARDS`].
    /// Ignored when [`SweepOptions::shared_cache`] is set.
    pub cache_shards: usize,
    /// A process-wide ΔV_th memo cache to evaluate through instead of a
    /// run-private one. A long-lived host (e.g. `relia-serve`) passes its
    /// cache here so batch sweeps and point queries share one memo table —
    /// results are unchanged either way, because cached values are
    /// canonical per [`StressKey`].
    pub shared_cache: Option<Arc<ShardedCache>>,
    /// Extra attempts for transiently failing jobs (0 disables retrying).
    pub retries: u32,
    /// Per-job soft deadline; stragglers become [`JobStatus::TimedOut`].
    pub job_timeout: Option<Duration>,
    /// When set, the run records spans — the pool's queue-wait/execute/
    /// retry spans plus `checkpoint_flush` — into this tracer. Latency
    /// histograms ([`SweepTimings`]) are always collected; spans are
    /// opt-in.
    pub trace: Option<Arc<Tracer>>,
    /// Deterministic fault schedule for resilience tests.
    #[cfg(feature = "fault-inject")]
    pub faults: Option<Arc<FaultPlan>>,
}

/// Why a sweep could not run (job-level failures do *not* land here — they
/// become [`JobStatus::Failed`] entries so one bad point cannot sink a
/// batch).
#[derive(Debug)]
pub enum SweepError {
    /// The spec's grid has no points.
    EmptySpec,
    /// A filesystem operation failed.
    Io(io::Error),
    /// The checkpoint file could not be read, written, or trusted.
    Checkpoint(CheckpointError),
    /// The circuit resolver rejected a name.
    UnknownCircuit {
        /// The name that failed to resolve.
        name: String,
        /// Resolver diagnostic.
        detail: String,
    },
    /// Building a circuit's [`AnalysisPrep`] failed.
    Prep {
        /// The circuit being prepared.
        name: String,
        /// Flow-layer diagnostic.
        detail: String,
    },
    /// The checkpoint belongs to a different spec.
    CheckpointMismatch {
        /// Fingerprint of the spec being run.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptySpec => write!(f, "sweep grid is empty (an axis has no values)"),
            SweepError::Io(e) => write!(f, "sweep I/O failed: {e}"),
            SweepError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            SweepError::UnknownCircuit { name, detail } => {
                write!(f, "cannot load circuit {name:?}: {detail}")
            }
            SweepError::Prep { name, detail } => {
                write!(f, "cannot prepare circuit {name:?}: {detail}")
            }
            SweepError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different sweep \
                 (spec fingerprint {expected:016x}, checkpoint {found:016x})"
            ),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io(e) => Some(e),
            SweepError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<CheckpointError> for SweepError {
    fn from(e: CheckpointError) -> Self {
        SweepError::Checkpoint(e)
    }
}

/// Everything a finished sweep hands back: the enumerated grid, one status
/// per point (index-aligned with the grid), and the run's metrics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The enumerated grid, in canonical order.
    pub points: Vec<JobPoint>,
    /// `statuses[i]` is the fate of `points[i]`.
    pub statuses: Vec<JobStatus>,
    /// Operational summary.
    pub metrics: SweepMetrics,
}

/// Resolves builtin benchmark names (`c17`, `c432`, …) via
/// [`relia_netlist::iscas`]. The CLI layers file loading on top; library
/// users can pass any closure.
pub fn builtin_resolver(name: &str) -> Result<Circuit, String> {
    relia_netlist::iscas::try_circuit(name).map_err(|e| e.to_string())
}

/// Runs the sweep described by `spec`.
///
/// `resolve` maps circuit names from the spec's workload to circuits
/// (see [`builtin_resolver`]).
///
/// # Errors
///
/// Returns [`SweepError`] for an empty grid, unresolvable circuits, failed
/// preparation, or checkpoint problems. Per-job analysis errors, panics,
/// and timeouts are *not* errors at this level; they surface as
/// [`JobStatus::Failed`] / [`JobStatus::TimedOut`] entries in the outcome.
pub fn run_sweep<R>(
    spec: &SweepSpec,
    options: &SweepOptions,
    resolve: R,
) -> Result<SweepOutcome, SweepError>
where
    R: Fn(&str) -> Result<Circuit, String>,
{
    let points = spec.points();
    if points.is_empty() {
        return Err(SweepError::EmptySpec);
    }
    let fingerprint = spec.fingerprint();
    let t_prepare = Instant::now();

    // --- Prepare phase: one circuit + AnalysisPrep per distinct name. ---
    let mut prepared: HashMap<String, Arc<(Circuit, AnalysisPrep)>> = HashMap::new();
    // relia-lint: allow(unwrap-in-lib)
    let base_config = FlowConfig::paper_defaults().expect("paper defaults are valid");
    if let Workload::CircuitAging { circuits, .. } = &spec.workload {
        for name in circuits {
            if prepared.contains_key(name) {
                continue;
            }
            let circuit = resolve(name).map_err(|detail| SweepError::UnknownCircuit {
                name: name.clone(),
                detail,
            })?;
            let prep =
                AgingAnalysis::prep(&base_config, &circuit).map_err(|e| SweepError::Prep {
                    name: name.clone(),
                    detail: e.to_string(),
                })?;
            prepared.insert(name.clone(), Arc::new((circuit, prep)));
        }
    }
    // relia-lint: allow(unwrap-in-lib)
    let model = NbtiModel::ptm90().expect("built-in calibration is valid");
    let prepare_secs = t_prepare.elapsed().as_secs_f64();

    // --- Checkpoint phase: salvage previous results, open the writer. ---
    let mut statuses: Vec<Option<JobStatus>> = vec![None; points.len()];
    let mut resumed_jobs = 0usize;
    let mut salvaged_dropped = 0usize;
    let mut writer: Option<CheckpointWriter> = None;
    if let Some(path) = &options.checkpoint {
        match checkpoint::salvage(path)? {
            Some(salvaged) => {
                let ckpt = salvaged.checkpoint;
                salvaged_dropped = salvaged.dropped_records;
                if ckpt.fingerprint != fingerprint || ckpt.total != points.len() {
                    return Err(SweepError::CheckpointMismatch {
                        expected: fingerprint,
                        found: ckpt.fingerprint,
                    });
                }
                for (index, status) in ckpt.statuses {
                    // Only completed jobs are final; failed and timed-out
                    // ones re-run.
                    if index < points.len() && matches!(status, JobStatus::Completed(_)) {
                        statuses[index] = Some(status);
                        resumed_jobs += 1;
                    }
                }
                writer = Some(CheckpointWriter::append(path)?);
            }
            None => {
                writer = Some(CheckpointWriter::create(path, fingerprint, points.len())?);
            }
        }
    }
    let pending: Vec<usize> = (0..points.len())
        .filter(|&i| statuses[i].is_none())
        .collect();

    // --- Execute phase. ---
    let workers = if options.workers == 0 {
        pool::default_workers()
    } else {
        options.workers
    };
    let cache: Arc<ShardedCache> = match &options.shared_cache {
        Some(shared) => Arc::clone(shared),
        None => Arc::new(ShardedCache::new(if options.cache_shards == 0 {
            crate::cache::DEFAULT_SHARDS
        } else {
            options.cache_shards
        })),
    };
    let pool_config = PoolConfig {
        workers,
        retry: RetryPolicy::retries(options.retries),
        job_timeout: options.job_timeout,
        trace: options.trace.clone(),
    };
    let job_hist = LatencyHist::new();
    let checkpoint_hist = LatencyHist::new();
    let t_execute = Instant::now();
    let mut checkpoint_error: Option<CheckpointError> = None;
    let run = pool::run_pool(
        &pending,
        &pool_config,
        |_, &index, token| {
            let t_job = Instant::now();
            let result = (|| {
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &options.faults {
                    plan.before_execute(index, token)?;
                }
                let result = execute_point(&points[index], &prepared, &model, &cache, token)?;
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &options.faults {
                    if plan.poisons(index) {
                        return poison_point(&points[index], &cache);
                    }
                }
                Ok(result)
            })();
            job_hist.record(t_job.elapsed());
            result
        },
        |k, outcome| {
            if let Some(w) = writer.as_mut() {
                if checkpoint_error.is_none() {
                    let status = JobStatus::from_outcome(outcome.clone());
                    let flush_span = options.trace.as_deref().map(|t| t.span("checkpoint_flush"));
                    let t_flush = Instant::now();
                    let flushed = w.record(pending[k], &status);
                    checkpoint_hist.record(t_flush.elapsed());
                    drop(flush_span);
                    if let Err(e) = flushed {
                        checkpoint_error = Some(e);
                    }
                }
            }
        },
    );
    let execute_secs = t_execute.elapsed().as_secs_f64();
    if let Some(e) = checkpoint_error {
        return Err(SweepError::Checkpoint(e));
    }
    for (k, outcome) in run.outcomes.into_iter().enumerate() {
        statuses[pending[k]] = Some(JobStatus::from_outcome(outcome));
    }

    let statuses: Vec<JobStatus> = statuses
        .into_iter()
        // Every index is either resumed from the checkpoint or executed.
        // relia-lint: allow(unwrap-in-lib)
        .map(|s| s.expect("every index resolved or executed"))
        .collect();
    let failed_jobs = statuses
        .iter()
        .filter(|s| matches!(s, JobStatus::Failed { .. }))
        .count();
    let timed_out_jobs = statuses
        .iter()
        .filter(|s| matches!(s, JobStatus::TimedOut { .. }))
        .count();
    let metrics = SweepMetrics {
        total_jobs: points.len(),
        executed_jobs: pending.len(),
        resumed_jobs,
        failed_jobs,
        timed_out_jobs,
        retried_jobs: run.retries,
        salvaged_dropped,
        workers,
        cache: cache.stats(),
        prepare_secs,
        execute_secs,
        timings: SweepTimings {
            job: job_hist.snapshot(),
            checkpoint: checkpoint_hist.snapshot(),
        },
    };
    Ok(SweepOutcome {
        points,
        statuses,
        metrics,
    })
}

/// Maps a flow-layer error to its retry classification: cancellation is
/// transient by construction (the watchdog interrupted otherwise-valid
/// work); everything else the flow reports is deterministic — the same
/// inputs will fail the same way, so retrying would only burn time.
fn classify_flow(e: FlowError) -> JobFailure {
    match e {
        FlowError::Cancelled => JobFailure::transient(e.to_string()),
        other => JobFailure::permanent(other.to_string()),
    }
}

/// Evaluates one grid point. Analysis errors become `Err(JobFailure)` with
/// a transient/permanent classification; the pool catches panics
/// separately.
fn execute_point(
    point: &JobPoint,
    prepared: &HashMap<String, Arc<(Circuit, AnalysisPrep)>>,
    model: &NbtiModel,
    cache: &ShardedCache,
    token: &CancelToken,
) -> Result<JobResult, JobFailure> {
    let ras =
        Ras::new(point.ras.0, point.ras.1).map_err(|e| JobFailure::permanent(e.to_string()))?;
    match &point.task {
        JobTask::Aging { circuit, policy } => {
            let pair = prepared.get(circuit).ok_or_else(|| {
                JobFailure::permanent(format!("circuit {circuit:?} was not prepared"))
            })?;
            let mut config = FlowConfig::with_schedule(ras, point.t_standby)
                .map_err(|e| JobFailure::permanent(e.to_string()))?;
            config.lifetime = point.lifetime;
            let analysis = AgingAnalysis::from_prep(&config, &pair.0, pair.1.clone());
            let report = analysis
                .run_with_cache_cancellable(&policy.to_policy(), cache, token)
                .map_err(classify_flow)?;
            Ok(JobResult::Aging {
                worst_delta_vth: report.worst_delta_vth(),
                degradation: report.degradation_fraction(),
                nominal_delay_ps: report.nominal.max_delay_ps(),
                degraded_delay_ps: report.degraded.max_delay_ps(),
                standby_leakage: report.standby_leakage,
                active_leakage: report.active_leakage,
            })
        }
        JobTask::Model {
            p_active,
            p_standby,
        } => {
            let schedule = ModeSchedule::new(
                ras,
                Seconds(SWEEP_PERIOD_S),
                Kelvin(SWEEP_TEMP_ACTIVE_K),
                point.t_standby,
            )
            .map_err(|e| JobFailure::permanent(e.to_string()))?;
            let stress = PmosStress::new(*p_active, *p_standby)
                .map_err(|e| JobFailure::permanent(e.to_string()))?;
            let key = StressKey::quantize(&schedule, &stress, point.lifetime);
            let delta_vth = cache
                .delta_vth(key, model)
                .map_err(|e| JobFailure::permanent(e.to_string()))?;
            Ok(JobResult::Model { delta_vth })
        }
    }
}

/// Pushes an injected `NaN` for this point through the real cache-admission
/// guardrail. The guardrail rejects it ([`ShardedCache::insert_checked`]),
/// so the fault surfaces as the same structured, permanent failure a
/// genuine non-finite model output would — and the memo table stays clean.
#[cfg(feature = "fault-inject")]
fn poison_point(point: &JobPoint, cache: &ShardedCache) -> Result<JobResult, JobFailure> {
    let ras =
        Ras::new(point.ras.0, point.ras.1).map_err(|e| JobFailure::permanent(e.to_string()))?;
    let schedule = ModeSchedule::new(
        ras,
        Seconds(SWEEP_PERIOD_S),
        Kelvin(SWEEP_TEMP_ACTIVE_K),
        point.t_standby,
    )
    .map_err(|e| JobFailure::permanent(e.to_string()))?;
    let stress = PmosStress::new(0.5, 1.0).map_err(|e| JobFailure::permanent(e.to_string()))?;
    let key = StressKey::quantize(&schedule, &stress, point.lifetime);
    cache
        .insert_checked(key, f64::NAN)
        .map(|_| unreachable!("NaN cannot pass the admission guardrail"))
        .map_err(|e| JobFailure::permanent(e.to_string()))
}

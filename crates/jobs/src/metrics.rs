//! Summary statistics of one sweep run.

use std::fmt;

use crate::cache::CacheStats;

/// What a sweep did, for the operator: job counts, resilience accounting
/// (retries, timeouts, salvaged checkpoint damage), cache effectiveness,
/// and wall-clock split between the prepare and execute phases.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepMetrics {
    /// Grid size of the spec.
    pub total_jobs: usize,
    /// Jobs actually executed this run.
    pub executed_jobs: usize,
    /// Jobs skipped because a checkpoint already held their results.
    pub resumed_jobs: usize,
    /// Jobs that ended in [`JobStatus::Failed`](crate::JobStatus::Failed).
    pub failed_jobs: usize,
    /// Jobs that ended in [`JobStatus::TimedOut`](crate::JobStatus::TimedOut).
    pub timed_out_jobs: usize,
    /// Retry attempts across all jobs (a job that succeeded on its second
    /// attempt contributes 1).
    pub retried_jobs: u64,
    /// Corrupt trailing checkpoint records dropped by the salvage pass.
    pub salvaged_dropped: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Memo-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Seconds spent resolving circuits and building [`AnalysisPrep`]s.
    ///
    /// [`AnalysisPrep`]: relia_flow::AnalysisPrep
    pub prepare_secs: f64,
    /// Seconds spent in the worker pool.
    pub execute_secs: f64,
}

impl fmt::Display for SweepMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep: {} jobs ({} executed, {} resumed, {} failed, {} timed out) on {} workers",
            self.total_jobs,
            self.executed_jobs,
            self.resumed_jobs,
            self.failed_jobs,
            self.timed_out_jobs,
            self.workers
        )?;
        if self.retried_jobs > 0 || self.salvaged_dropped > 0 {
            writeln!(
                f,
                "resilience: {} retries, {} corrupt checkpoint records salvaged away",
                self.retried_jobs, self.salvaged_dropped
            )?;
        }
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries
        )?;
        write!(
            f,
            "time: {:.3}s prepare + {:.3}s execute",
            self.prepare_secs, self.execute_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_headline_number() {
        let m = SweepMetrics {
            total_jobs: 40,
            executed_jobs: 30,
            resumed_jobs: 10,
            failed_jobs: 2,
            timed_out_jobs: 1,
            retried_jobs: 3,
            salvaged_dropped: 4,
            workers: 8,
            cache: CacheStats {
                hits: 75,
                misses: 25,
                entries: 25,
            },
            prepare_secs: 0.25,
            execute_secs: 1.5,
        };
        let text = m.to_string();
        for needle in [
            "40 jobs",
            "30 executed",
            "10 resumed",
            "2 failed",
            "1 timed out",
            "3 retries",
            "4 corrupt checkpoint records",
            "8 workers",
            "75.0% hit rate",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
    }

    #[test]
    fn resilience_line_is_omitted_when_quiet() {
        let m = SweepMetrics::default();
        assert!(!m.to_string().contains("resilience"));
    }
}

//! Summary statistics of one sweep run, and the typed snapshot API that
//! every renderer (the CLI sweep summary, `relia-serve`'s Prometheus
//! `/metrics` endpoint) draws from.

use std::fmt;

use relia_obs::{fmt_ns, HistSnapshot};

use crate::cache::CacheStats;

/// A typed, named snapshot of counters and gauges.
///
/// This is the **one source of truth** for exposing operational numbers:
/// anything that renders metrics — the sweep summary, a Prometheus
/// exposition, a JSON status endpoint — iterates these typed pairs instead
/// of `Debug`-formatting internal structs, so names stay stable and no
/// renderer can drift from the counters themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters as `(name, value)`, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Point-in-time gauges as `(name, value)`, in declaration order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Latency histograms as `(name, snapshot)`, in declaration order.
    ///
    /// Names carry a `_seconds` suffix by convention: samples are stored
    /// as log2-bucketed nanoseconds ([`HistSnapshot`]) and renderers
    /// convert to seconds at the edge (e.g. Prometheus `le` labels).
    pub histograms: Vec<(&'static str, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Appends every series of `other` after this snapshot's own (callers
    /// namespace their series, so concatenation is collision-free).
    pub fn merged(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self
    }
}

impl CacheStats {
    /// Typed snapshot of the memo-cache counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("cache_hits", self.hits),
                ("cache_misses", self.misses),
                ("cache_entries", self.entries as u64),
                ("cache_evictions", self.evictions),
            ],
            gauges: vec![("cache_hit_rate", self.hit_rate())],
            histograms: vec![],
        }
    }
}

/// Per-sweep latency distributions, recorded while the pool runs and
/// frozen into the outcome's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepTimings {
    /// Wall time of each executed job (one sample per attempt that
    /// completed, successfully or not).
    pub job: HistSnapshot,
    /// Wall time of each checkpoint record flush.
    pub checkpoint: HistSnapshot,
}

impl SweepTimings {
    /// The histogram section these timings contribute to a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![
                ("sweep_job_seconds", self.job.clone()),
                ("sweep_checkpoint_seconds", self.checkpoint.clone()),
            ],
        }
    }
}

/// What a sweep did, for the operator: job counts, resilience accounting
/// (retries, timeouts, salvaged checkpoint damage), cache effectiveness,
/// and wall-clock split between the prepare and execute phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepMetrics {
    /// Grid size of the spec.
    pub total_jobs: usize,
    /// Jobs actually executed this run.
    pub executed_jobs: usize,
    /// Jobs skipped because a checkpoint already held their results.
    pub resumed_jobs: usize,
    /// Jobs that ended in [`JobStatus::Failed`](crate::JobStatus::Failed).
    pub failed_jobs: usize,
    /// Jobs that ended in [`JobStatus::TimedOut`](crate::JobStatus::TimedOut).
    pub timed_out_jobs: usize,
    /// Retry attempts across all jobs (a job that succeeded on its second
    /// attempt contributes 1).
    pub retried_jobs: u64,
    /// Corrupt trailing checkpoint records dropped by the salvage pass.
    pub salvaged_dropped: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Memo-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Seconds spent resolving circuits and building [`AnalysisPrep`]s.
    ///
    /// [`AnalysisPrep`]: relia_flow::AnalysisPrep
    pub prepare_secs: f64,
    /// Seconds spent in the worker pool.
    pub execute_secs: f64,
    /// Per-job and per-checkpoint-flush latency distributions.
    pub timings: SweepTimings,
}

impl SweepMetrics {
    /// Typed snapshot of every field, cache counters included.
    ///
    /// The `Display` rendering below and any external exposition (e.g.
    /// `relia-serve`'s `/metrics`) must both derive from this method, so a
    /// field added here is never silently missing from one of them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("sweep_total_jobs", self.total_jobs as u64),
                ("sweep_executed_jobs", self.executed_jobs as u64),
                ("sweep_resumed_jobs", self.resumed_jobs as u64),
                ("sweep_failed_jobs", self.failed_jobs as u64),
                ("sweep_timed_out_jobs", self.timed_out_jobs as u64),
                ("sweep_retried_jobs", self.retried_jobs),
                ("sweep_salvaged_dropped", self.salvaged_dropped as u64),
                ("sweep_workers", self.workers as u64),
            ],
            gauges: vec![
                ("sweep_prepare_seconds", self.prepare_secs),
                ("sweep_execute_seconds", self.execute_secs),
            ],
            histograms: vec![],
        }
        .merged(self.timings.snapshot())
        .merged(self.cache.snapshot())
    }
}

impl fmt::Display for SweepMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep: {} jobs ({} executed, {} resumed, {} failed, {} timed out) on {} workers",
            self.total_jobs,
            self.executed_jobs,
            self.resumed_jobs,
            self.failed_jobs,
            self.timed_out_jobs,
            self.workers
        )?;
        if self.retried_jobs > 0 || self.salvaged_dropped > 0 {
            writeln!(
                f,
                "resilience: {} retries, {} corrupt checkpoint records salvaged away",
                self.retried_jobs, self.salvaged_dropped
            )?;
        }
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries
        )?;
        write!(
            f,
            "time: {:.3}s prepare + {:.3}s execute",
            self.prepare_secs, self.execute_secs
        )?;
        if self.timings.job.count > 0 {
            let j = &self.timings.job;
            write!(
                f,
                "\njob latency: p50 {} / p90 {} / p99 {} over {} executions",
                fmt_ns(j.p50()),
                fmt_ns(j.p90()),
                fmt_ns(j.p99()),
                j.count
            )?;
        }
        if self.timings.checkpoint.count > 0 {
            let c = &self.timings.checkpoint;
            write!(
                f,
                "\ncheckpoint flush: p50 {} / p99 {} over {} records",
                fmt_ns(c.p50()),
                fmt_ns(c.p99()),
                c.count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_headline_number() {
        let m = SweepMetrics {
            total_jobs: 40,
            executed_jobs: 30,
            resumed_jobs: 10,
            failed_jobs: 2,
            timed_out_jobs: 1,
            retried_jobs: 3,
            salvaged_dropped: 4,
            workers: 8,
            cache: CacheStats {
                hits: 75,
                misses: 25,
                entries: 25,
                evictions: 0,
            },
            prepare_secs: 0.25,
            execute_secs: 1.5,
            timings: SweepTimings::default(),
        };
        let text = m.to_string();
        for needle in [
            "40 jobs",
            "30 executed",
            "10 resumed",
            "2 failed",
            "1 timed out",
            "3 retries",
            "4 corrupt checkpoint records",
            "8 workers",
            "75.0% hit rate",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
    }

    #[test]
    fn resilience_line_is_omitted_when_quiet() {
        let m = SweepMetrics::default();
        assert!(!m.to_string().contains("resilience"));
    }

    #[test]
    fn snapshot_exposes_every_field_with_stable_names() {
        let m = SweepMetrics {
            total_jobs: 40,
            executed_jobs: 30,
            resumed_jobs: 10,
            failed_jobs: 2,
            timed_out_jobs: 1,
            retried_jobs: 3,
            salvaged_dropped: 4,
            workers: 8,
            cache: CacheStats {
                hits: 75,
                misses: 25,
                entries: 25,
                evictions: 6,
            },
            prepare_secs: 0.25,
            execute_secs: 1.5,
            timings: SweepTimings::default(),
        };
        let s = m.snapshot();
        assert_eq!(s.counter("sweep_total_jobs"), Some(40));
        assert_eq!(s.counter("sweep_executed_jobs"), Some(30));
        assert_eq!(s.counter("sweep_resumed_jobs"), Some(10));
        assert_eq!(s.counter("sweep_failed_jobs"), Some(2));
        assert_eq!(s.counter("sweep_timed_out_jobs"), Some(1));
        assert_eq!(s.counter("sweep_retried_jobs"), Some(3));
        assert_eq!(s.counter("sweep_salvaged_dropped"), Some(4));
        assert_eq!(s.counter("sweep_workers"), Some(8));
        assert_eq!(s.counter("cache_hits"), Some(75));
        assert_eq!(s.counter("cache_misses"), Some(25));
        assert_eq!(s.counter("cache_entries"), Some(25));
        assert_eq!(s.counter("cache_evictions"), Some(6));
        assert_eq!(s.gauge("sweep_prepare_seconds"), Some(0.25));
        assert_eq!(s.gauge("sweep_execute_seconds"), Some(1.5));
        assert_eq!(s.gauge("cache_hit_rate"), Some(0.75));
        assert_eq!(s.counter("no_such_series"), None);
        assert_eq!(s.gauge("no_such_series"), None);
        // Guard against a field added to SweepMetrics but not the
        // snapshot: counters cover all 8 integer fields + 4 cache series.
        assert_eq!(s.counters.len(), 12);
        assert_eq!(s.gauges.len(), 3);
        assert_eq!(s.histograms.len(), 2);
        assert!(s.histogram("sweep_job_seconds").is_some());
        assert!(s.histogram("sweep_checkpoint_seconds").is_some());
        assert!(s.histogram("no_such_series").is_none());
    }

    #[test]
    fn display_appends_timing_percentiles_when_present() {
        let hist = relia_obs::LatencyHist::new();
        for us in [50u64, 100, 200, 400] {
            hist.record_ns(us * 1_000);
        }
        let m = SweepMetrics {
            executed_jobs: 4,
            timings: SweepTimings {
                job: hist.snapshot(),
                checkpoint: HistSnapshot::default(),
            },
            ..SweepMetrics::default()
        };
        let text = m.to_string();
        assert!(text.contains("job latency: p50"), "{text}");
        assert!(text.contains("over 4 executions"), "{text}");
        assert!(!text.contains("checkpoint flush"), "{text}");
    }

    #[test]
    fn merged_snapshots_concatenate() {
        let a = MetricsSnapshot {
            counters: vec![("a_one", 1)],
            gauges: vec![],
            histograms: vec![],
        };
        let b = MetricsSnapshot {
            counters: vec![("b_two", 2)],
            gauges: vec![("b_rate", 0.5)],
            histograms: vec![("b_lat_seconds", HistSnapshot::default())],
        };
        let m = a.merged(b);
        assert_eq!(m.counter("a_one"), Some(1));
        assert_eq!(m.counter("b_two"), Some(2));
        assert_eq!(m.gauge("b_rate"), Some(0.5));
        assert!(m.histogram("b_lat_seconds").is_some());
    }
}

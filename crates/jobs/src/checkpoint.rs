//! Crash-safe JSONL checkpointing for interruptible sweeps.
//!
//! A checkpoint file is a header line followed by one JSON object per
//! finished job, appended (and flushed) as results arrive. Every line —
//! header included — ends with a CRC-32 of the rest of the object, so
//! corruption (torn writes, bit rot, editor accidents) is *detected*
//! rather than silently parsed into wrong numbers:
//!
//! ```text
//! {"header":"relia-sweep-checkpoint","version":2,"fingerprint":"9a3c…","total":40,"crc":"1b2c3d4e"}
//! {"index":7,"kind":"aging","worst_delta_vth":0.0312,…,"crc":"5e6f7a8b"}
//! {"index":3,"kind":"model","delta_vth":0.0287,"crc":"9c0d1e2f"}
//! {"index":5,"kind":"failed","reason":"panic: …","attempts":3,"crc":"30415263"}
//! ```
//!
//! Floats are serialized with Rust's shortest-round-trip `Display` and
//! parsed back with `str::parse::<f64>`, so a resumed value is *bit-equal*
//! to the original — resuming cannot perturb results. The header carries
//! the [`SweepSpec`](crate::SweepSpec) fingerprint; resuming against a
//! different spec is rejected rather than silently mixing grids.
//!
//! Two read paths with different contracts:
//!
//! * [`load`] is **strict**: any invalid record line is a
//!   [`CheckpointError::CorruptRecord`]. Use it when corruption should be
//!   surfaced, not papered over.
//! * [`salvage`] recovers the **longest valid prefix**: records are
//!   consumed up to the first invalid line; that line and everything after
//!   it are dropped (the count is reported), and when anything was dropped
//!   the file is atomically rewritten to exactly the valid prefix — so a
//!   later append continues from a clean line boundary instead of
//!   concatenating onto a torn one.
//!
//! File creation and the salvage rewrite both go through a temp-file +
//! rename, so a crash mid-create never leaves a half-written header for
//! the next run to trip over.
//!
//! The values are flat and self-describing, so the hand-rolled parser below
//! only handles what the writer emits: one-level objects of strings,
//! numbers, and `null`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::spec::{JobResult, JobStatus};

const HEADER_NAME: &str = "relia-sweep-checkpoint";
const VERSION: u64 = 2;

/// Typed error for checkpoint I/O and decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// The file exists but has no header line.
    Empty,
    /// The header line is damaged or is not a relia sweep checkpoint.
    BadHeader {
        /// What was wrong with it.
        what: &'static str,
    },
    /// The header names a version this build cannot read.
    UnsupportedVersion {
        /// The version found in the file.
        found: u64,
    },
    /// A record line failed its CRC or did not parse (strict [`load`]
    /// only; [`salvage`] recovers the prefix instead).
    CorruptRecord {
        /// 1-based line number of the first bad line.
        line_no: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Empty => write!(f, "checkpoint file is empty"),
            CheckpointError::BadHeader { what } => write!(f, "checkpoint header: {what}"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (want {VERSION})")
            }
            CheckpointError::CorruptRecord { line_no } => {
                write!(f, "corrupt checkpoint record at line {line_no}")
            }
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A loaded checkpoint: the header identity plus the last recorded status
/// of every job index present in the file.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Spec fingerprint recorded at creation.
    pub fingerprint: u64,
    /// Grid size recorded at creation.
    pub total: usize,
    /// Last-written status per job index.
    pub statuses: BTreeMap<usize, JobStatus>,
}

impl Checkpoint {
    /// Indices whose jobs completed (these are skipped on resume).
    pub fn completed_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.statuses
            .iter()
            .filter(|(_, s)| matches!(s, JobStatus::Completed(_)))
            .map(|(&i, _)| i)
    }
}

/// What [`salvage`] recovered from a (possibly corrupted) checkpoint.
#[derive(Debug)]
pub struct Salvage {
    /// The longest valid prefix, parsed.
    pub checkpoint: Checkpoint,
    /// Record lines dropped (the first invalid line and everything after
    /// it). When non-zero, the file on disk has been rewritten to the
    /// valid prefix.
    pub dropped_records: usize,
}

/// The parsed header plus the raw record lines that follow it.
struct RawCheckpoint {
    header_line: String,
    fingerprint: u64,
    total: usize,
    record_lines: Vec<String>,
}

fn read_raw(path: &Path) -> Result<Option<RawCheckpoint>, CheckpointError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.is_empty() {
        return Err(CheckpointError::Empty);
    }
    // Decode line by line, lossily: bit rot can produce invalid UTF-8,
    // which must surface as an invalid *record* (the mangled text fails
    // its CRC) rather than an unreadable file.
    let mut raw_lines = bytes.split(|&b| b == b'\n');
    let header_line = std::str::from_utf8(raw_lines.next().unwrap_or_default())
        .map_err(|_| CheckpointError::BadHeader {
            what: "not valid UTF-8",
        })?
        .to_owned();
    let header_body = verify_crc(&header_line).ok_or(CheckpointError::BadHeader {
        what: "crc mismatch or missing",
    })?;
    let header = parse_object(header_body).ok_or(CheckpointError::BadHeader {
        what: "not a JSON object",
    })?;
    if header.str_field("header") != Some(HEADER_NAME) {
        return Err(CheckpointError::BadHeader {
            what: "not a relia sweep checkpoint",
        });
    }
    match header.num_field("version") {
        Some(v) if v == VERSION as f64 => {}
        Some(v) => {
            return Err(CheckpointError::UnsupportedVersion { found: v as u64 });
        }
        None => {
            return Err(CheckpointError::BadHeader {
                what: "missing version",
            });
        }
    }
    let fingerprint = header
        .str_field("fingerprint")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or(CheckpointError::BadHeader {
            what: "missing fingerprint",
        })?;
    let total =
        header
            .num_field("total")
            .map(|n| n as usize)
            .ok_or(CheckpointError::BadHeader {
                what: "missing total",
            })?;
    let mut record_lines: Vec<String> = raw_lines
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect();
    // `split` yields one empty tail after a final newline; drop it so
    // line counts match the writer's one-record-per-line layout.
    if record_lines.last().is_some_and(String::is_empty) {
        record_lines.pop();
    }
    Ok(Some(RawCheckpoint {
        header_line,
        fingerprint,
        total,
        record_lines,
    }))
}

/// Validates one record line (CRC + parse). `None` when invalid.
fn decode_record(line: &str) -> Option<(usize, JobStatus)> {
    let body = verify_crc(line)?;
    record_from(&parse_object(body)?)
}

/// Loads a checkpoint strictly, or `Ok(None)` when `path` does not exist.
///
/// # Errors
///
/// Any unreadable file, damaged header, or invalid record line (CRC
/// mismatch, torn tail, unparseable object) is an error. Use [`salvage`]
/// to recover the valid prefix of a damaged file instead.
pub fn load(path: &Path) -> Result<Option<Checkpoint>, CheckpointError> {
    let Some(raw) = read_raw(path)? else {
        return Ok(None);
    };
    let mut statuses = BTreeMap::new();
    for (offset, line) in raw.record_lines.iter().enumerate() {
        if line.trim().is_empty() {
            // A trailing newline artifact, not data; strict mode tolerates
            // blank lines only at the very end.
            if raw.record_lines[offset..]
                .iter()
                .all(|l| l.trim().is_empty())
            {
                break;
            }
            return Err(CheckpointError::CorruptRecord {
                line_no: offset + 2,
            });
        }
        let Some((index, status)) = decode_record(line) else {
            return Err(CheckpointError::CorruptRecord {
                line_no: offset + 2, // +1 header, +1 one-based
            });
        };
        statuses.insert(index, status);
    }
    Ok(Some(Checkpoint {
        fingerprint: raw.fingerprint,
        total: raw.total,
        statuses,
    }))
}

/// Loads the longest valid prefix of a checkpoint, or `Ok(None)` when
/// `path` does not exist.
///
/// Records are consumed up to the first invalid line; that line and every
/// line after it count as dropped. When anything was dropped the file is
/// **atomically rewritten** (temp file + rename) to exactly the valid
/// prefix, so a subsequent [`CheckpointWriter::append`] starts on a clean
/// line boundary.
///
/// # Errors
///
/// Filesystem errors and a damaged/foreign *header* are still fatal — a
/// file whose identity cannot be established is not safe to resume from.
pub fn salvage(path: &Path) -> Result<Option<Salvage>, CheckpointError> {
    let Some(raw) = read_raw(path)? else {
        return Ok(None);
    };
    let mut statuses = BTreeMap::new();
    let mut valid_lines = 0usize;
    for line in &raw.record_lines {
        let Some((index, status)) = decode_record(line) else {
            break;
        };
        statuses.insert(index, status);
        valid_lines += 1;
    }
    let dropped_records = raw.record_lines.len() - valid_lines;
    if dropped_records > 0 {
        // Rewrite the valid prefix through a temp file so a crash here
        // leaves either the old damaged file or the new clean one — never
        // a half-written hybrid.
        let tmp = tmp_sibling(path);
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            writeln!(out, "{}", raw.header_line)?;
            for line in &raw.record_lines[..valid_lines] {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
        }
        fs::rename(&tmp, path)?;
    }
    Ok(Some(Salvage {
        checkpoint: Checkpoint {
            fingerprint: raw.fingerprint,
            total: raw.total,
            statuses,
        },
        dropped_records,
    }))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        |n| n.to_os_string(),
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// An open checkpoint being appended to, one flushed line per result.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
}

impl CheckpointWriter {
    /// Creates a checkpoint with a fresh header, atomically: the header is
    /// written to a temp sibling and renamed into place, so `path` never
    /// holds a half-written header.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from creation, the header write, or the rename.
    pub fn create(path: &Path, fingerprint: u64, total: usize) -> Result<Self, CheckpointError> {
        let header_body = format!(
            "{{\"header\":\"{HEADER_NAME}\",\"version\":{VERSION},\
             \"fingerprint\":\"{fingerprint:016x}\",\"total\":{total}}}"
        );
        let tmp = tmp_sibling(path);
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            writeln!(out, "{}", seal(&header_body))?;
            out.flush()?;
        }
        fs::rename(&tmp, path)?;
        CheckpointWriter::append(path)
    }

    /// Reopens an existing checkpoint for appending (the header is already
    /// on disk; the caller has verified it via [`load`] or [`salvage`]).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from opening.
    pub fn append(path: &Path) -> Result<Self, CheckpointError> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one job's status (with its CRC) and flushes, so a kill
    /// loses at most the line being written — and [`salvage`] detects that
    /// torn line instead of mis-parsing it.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the write.
    pub fn record(&mut self, index: usize, status: &JobStatus) -> Result<(), CheckpointError> {
        let body = record_body(index, status);
        writeln!(self.out, "{}", seal(&body))?;
        self.out.flush()?;
        Ok(())
    }
}

/// Serializes one record as a flat JSON object (without the CRC field).
fn record_body(index: usize, status: &JobStatus) -> String {
    match status {
        JobStatus::Completed(JobResult::Aging {
            worst_delta_vth,
            degradation,
            nominal_delay_ps,
            degraded_delay_ps,
            standby_leakage,
            active_leakage,
        }) => {
            let standby = match standby_leakage {
                Some(v) => fmt_f64(*v),
                None => "null".to_owned(),
            };
            format!(
                "{{\"index\":{index},\"kind\":\"aging\",\
                 \"worst_delta_vth\":{},\"degradation\":{},\
                 \"nominal_delay_ps\":{},\"degraded_delay_ps\":{},\
                 \"standby_leakage\":{standby},\"active_leakage\":{}}}",
                fmt_f64(*worst_delta_vth),
                fmt_f64(*degradation),
                fmt_f64(*nominal_delay_ps),
                fmt_f64(*degraded_delay_ps),
                fmt_f64(*active_leakage),
            )
        }
        JobStatus::Completed(JobResult::Model { delta_vth }) => {
            format!(
                "{{\"index\":{index},\"kind\":\"model\",\"delta_vth\":{}}}",
                fmt_f64(*delta_vth)
            )
        }
        JobStatus::Failed { reason, attempts } => {
            format!(
                "{{\"index\":{index},\"kind\":\"failed\",\"reason\":\"{}\",\
                 \"attempts\":{attempts}}}",
                escape(reason)
            )
        }
        JobStatus::TimedOut { elapsed_ms } => {
            format!("{{\"index\":{index},\"kind\":\"timed_out\",\"elapsed_ms\":{elapsed_ms}}}")
        }
    }
}

/// Appends the CRC-32 of `body` as a final `"crc"` field:
/// `{…}` becomes `{…,"crc":"xxxxxxxx"}`.
fn seal(body: &str) -> String {
    debug_assert!(body.starts_with('{') && body.ends_with('}'));
    format!(
        "{},\"crc\":\"{:08x}\"}}",
        &body[..body.len() - 1],
        crc32(body.as_bytes())
    )
}

/// Checks a sealed line's CRC and returns the body (the object without the
/// CRC field) on success.
fn verify_crc(line: &str) -> Option<&str> {
    let line = line.trim_end();
    let marker = ",\"crc\":\"";
    let pos = line.rfind(marker)?;
    let hex = &line[pos + marker.len()..];
    let hex = hex.strip_suffix("\"}")?;
    if hex.len() != 8 {
        return None;
    }
    let stored = u32::from_str_radix(hex, 16).ok()?;
    // The body is everything before the crc field, re-closed.
    let prefix = &line[..pos];
    let mut crc = 0xffff_ffffu32;
    for &b in prefix.as_bytes() {
        crc = crc32_step(crc, b);
    }
    crc = crc32_step(crc, b'}');
    if !crc == stored {
        // The prefix is the body minus its closing brace; `parse_object`
        // treats end-of-input as the close, so the slice parses as the
        // original object without a copy.
        Some(prefix)
    } else {
        None
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), one byte.
fn crc32_step(crc: u32, byte: u8) -> u32 {
    let mut crc = crc ^ byte as u32;
    for _ in 0..8 {
        let mask = (crc & 1).wrapping_neg();
        crc = (crc >> 1) ^ (0xedb8_8320 & mask);
    }
    crc
}

/// CRC-32 of a whole buffer.
fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(0xffff_ffffu32, |c, &b| crc32_step(c, b))
}

/// Shortest-round-trip float serialization; keeps non-finite values
/// representable (JSON has no infinities, so they are quoted strings — the
/// parser maps them back).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A parser for exactly the JSON subset the writer emits: one flat object
// per line, values limited to strings, numbers, and null. The object may
// arrive without its closing brace (the CRC verifier hands back the body
// prefix); end-of-input after a complete field counts as the close.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Null,
}

#[derive(Debug, Default)]
struct FlatObject {
    fields: Vec<(String, Value)>,
}

impl FlatObject {
    fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn num_field(&self, name: &str) -> Option<f64> {
        match self.field(name) {
            Some(Value::Num(n)) => Some(*n),
            // Non-finite floats round-trip as quoted strings.
            Some(Value::Str(s)) => s.parse().ok(),
            _ => None,
        }
    }
}

fn parse_object(line: &str) -> Option<FlatObject> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut obj = FlatObject::default();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            None => break, // CRC-verified body prefix: end of input closes
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
                continue;
            }
            Some('"') => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let value = parse_value(&mut chars)?;
                obj.fields.push((key, value));
            }
            _ => return None,
        }
    }
    Some(obj)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<Value> {
    match chars.peek()? {
        '"' => parse_string(chars).map(Value::Str),
        'n' => {
            for expected in "null".chars() {
                if chars.next()? != expected {
                    return None;
                }
            }
            Some(Value::Null)
        }
        _ => {
            let mut token = String::new();
            while chars
                .peek()
                .is_some_and(|&c| c != ',' && c != '}' && !c.is_whitespace())
            {
                token.push(chars.next()?);
            }
            token.parse().ok().map(Value::Num)
        }
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn record_from(obj: &FlatObject) -> Option<(usize, JobStatus)> {
    let index = obj.num_field("index")? as usize;
    let status = match obj.str_field("kind")? {
        "aging" => JobStatus::Completed(JobResult::Aging {
            worst_delta_vth: obj.num_field("worst_delta_vth")?,
            degradation: obj.num_field("degradation")?,
            nominal_delay_ps: obj.num_field("nominal_delay_ps")?,
            degraded_delay_ps: obj.num_field("degraded_delay_ps")?,
            standby_leakage: match obj.field("standby_leakage")? {
                Value::Null => None,
                Value::Num(n) => Some(*n),
                Value::Str(s) => Some(s.parse().ok()?),
            },
            active_leakage: obj.num_field("active_leakage")?,
        }),
        "model" => JobStatus::Completed(JobResult::Model {
            delta_vth: obj.num_field("delta_vth")?,
        }),
        "failed" => JobStatus::Failed {
            reason: obj.str_field("reason")?.to_owned(),
            attempts: obj.num_field("attempts")? as u32,
        },
        "timed_out" => JobStatus::TimedOut {
            elapsed_ms: obj.num_field("elapsed_ms")? as u64,
        },
        _ => return None,
    };
    Some((index, status))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("relia-ckpt-{}-{name}.jsonl", std::process::id()));
        p
    }

    fn aging(v: f64) -> JobStatus {
        JobStatus::Completed(JobResult::Aging {
            worst_delta_vth: v,
            degradation: 0.05 + v,
            nominal_delay_ps: 123.456,
            degraded_delay_ps: 130.0,
            standby_leakage: Some(1.25e-6),
            active_leakage: 2.5e-6,
        })
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
    }

    #[test]
    fn round_trips_bit_exactly() {
        let path = tmp("roundtrip");
        let mut w = CheckpointWriter::create(&path, 0xdead_beef, 5).unwrap();
        let statuses = [
            aging(0.031_234_567_890_123),
            JobStatus::Completed(JobResult::Model {
                delta_vth: 1.0 / 3.0,
            }),
            JobStatus::Failed {
                reason: "panic: \"quoted\"\nand newline \t tab".into(),
                attempts: 3,
            },
            JobStatus::Completed(JobResult::Aging {
                worst_delta_vth: 0.0,
                degradation: 0.0,
                nominal_delay_ps: 100.0,
                degraded_delay_ps: 100.0,
                standby_leakage: None,
                active_leakage: f64::MIN_POSITIVE,
            }),
            JobStatus::TimedOut { elapsed_ms: 1234 },
        ];
        for (i, s) in statuses.iter().enumerate() {
            w.record(i, s).unwrap();
        }
        drop(w);

        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(ckpt.fingerprint, 0xdead_beef);
        assert_eq!(ckpt.total, 5);
        assert_eq!(ckpt.statuses.len(), 5);
        for (i, s) in statuses.iter().enumerate() {
            assert_eq!(ckpt.statuses.get(&i), Some(s), "index {i}");
        }
        assert_eq!(ckpt.completed_indices().collect::<Vec<_>>(), vec![0, 1, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none() {
        assert!(load(&tmp("missing-never-created")).unwrap().is_none());
        assert!(salvage(&tmp("missing-never-created")).unwrap().is_none());
    }

    #[test]
    fn strict_load_rejects_a_torn_last_line() {
        let path = tmp("torn-strict");
        let mut w = CheckpointWriter::create(&path, 7, 3).unwrap();
        w.record(0, &aging(0.01)).unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a record.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"index\":1,\"kind\":\"ag").unwrap();
        drop(f);

        match load(&path) {
            Err(CheckpointError::CorruptRecord { line_no }) => assert_eq!(line_no, 3),
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_recovers_the_valid_prefix_and_rewrites() {
        let path = tmp("torn-salvage");
        let mut w = CheckpointWriter::create(&path, 7, 3).unwrap();
        w.record(0, &aging(0.01)).unwrap();
        w.record(1, &aging(0.02)).unwrap();
        drop(w);
        let clean = std::fs::read_to_string(&path).unwrap();
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"index\":2,\"kind\":\"ag").unwrap();
        drop(f);

        let s = salvage(&path).unwrap().unwrap();
        assert_eq!(s.dropped_records, 1);
        assert_eq!(s.checkpoint.statuses.len(), 2);
        assert_eq!(s.checkpoint.statuses.get(&0), Some(&aging(0.01)));
        // The file was rewritten back to exactly the clean prefix…
        assert_eq!(std::fs::read_to_string(&path).unwrap(), clean);
        // …so a follow-up append produces a loadable file.
        let mut w = CheckpointWriter::append(&path).unwrap();
        w.record(2, &aging(0.03)).unwrap();
        drop(w);
        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(ckpt.statuses.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_bit_flip_is_detected_and_everything_after_it_dropped() {
        let path = tmp("bitflip");
        let mut w = CheckpointWriter::create(&path, 9, 4).unwrap();
        for i in 0..4 {
            w.record(i, &aging(0.01 * (i + 1) as f64)).unwrap();
        }
        drop(w);
        // Flip one bit in the digits of record line 2 (index 1).
        let mut bytes = std::fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let target = line_starts[2] + 20;
        bytes[target] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        assert!(matches!(
            load(&path),
            Err(CheckpointError::CorruptRecord { line_no: 3 })
        ));
        let s = salvage(&path).unwrap().unwrap();
        assert_eq!(s.dropped_records, 3, "bad line + 2 after it");
        assert_eq!(s.checkpoint.statuses.len(), 1);
        assert_eq!(s.checkpoint.statuses.get(&0), Some(&aging(0.01)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appended_records_win_over_earlier_ones() {
        let path = tmp("lastwins");
        let mut w = CheckpointWriter::create(&path, 7, 3).unwrap();
        w.record(
            2,
            &JobStatus::Failed {
                reason: "first".into(),
                attempts: 1,
            },
        )
        .unwrap();
        drop(w);
        let mut w = CheckpointWriter::append(&path).unwrap();
        w.record(2, &aging(0.02)).unwrap();
        drop(w);
        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(ckpt.statuses.get(&2), Some(&aging(0.02)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_header_is_an_error_even_for_salvage() {
        let path = tmp("badheader");
        std::fs::write(&path, "{\"header\":\"something-else\",\"version\":2}\n").unwrap();
        assert!(load(&path).is_err());
        assert!(salvage(&path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Empty)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn old_version_is_rejected_with_its_number() {
        let path = tmp("oldversion");
        let body = "{\"header\":\"relia-sweep-checkpoint\",\"version\":1,\
                    \"fingerprint\":\"0000000000000007\",\"total\":1}";
        std::fs::write(&path, format!("{}\n", seal(body))).unwrap();
        assert!(matches!(
            load(&path),
            Err(CheckpointError::UnsupportedVersion { found: 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_floats_survive() {
        let path = tmp("nonfinite");
        let mut w = CheckpointWriter::create(&path, 1, 1).unwrap();
        w.record(
            0,
            &JobStatus::Completed(JobResult::Model {
                delta_vth: f64::INFINITY,
            }),
        )
        .unwrap();
        drop(w);
        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(
            ckpt.statuses.get(&0),
            Some(&JobStatus::Completed(JobResult::Model {
                delta_vth: f64::INFINITY
            }))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_leaves_no_temp_file_behind() {
        let path = tmp("atomic");
        let w = CheckpointWriter::create(&path, 1, 1).unwrap();
        drop(w);
        assert!(path.exists());
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }
}

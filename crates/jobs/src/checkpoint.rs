//! JSONL checkpointing for interruptible sweeps.
//!
//! A checkpoint file is a header line followed by one JSON object per
//! finished job, appended (and flushed) as results arrive:
//!
//! ```text
//! {"header":"relia-sweep-checkpoint","version":1,"fingerprint":"9a3c…","total":40}
//! {"index":7,"kind":"aging","worst_delta_vth":0.0312,…}
//! {"index":3,"kind":"model","delta_vth":0.0287}
//! {"index":5,"kind":"failed","reason":"panic: …"}
//! ```
//!
//! Floats are serialized with Rust's shortest-round-trip `Display` and
//! parsed back with `str::parse::<f64>`, so a resumed value is *bit-equal*
//! to the original — resuming cannot perturb results. The header carries
//! the [`SweepSpec`](crate::SweepSpec) fingerprint; resuming against a
//! different spec is rejected rather than silently mixing grids. A torn
//! final line (the process was killed mid-write) is ignored on load.
//!
//! The values are flat and self-describing, so the hand-rolled parser below
//! only handles what the writer emits: one-level objects of strings,
//! numbers, and `null`.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::spec::{JobResult, JobStatus};

const HEADER_NAME: &str = "relia-sweep-checkpoint";
const VERSION: u64 = 1;

/// A loaded checkpoint: the header identity plus the last recorded status
/// of every job index present in the file.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Spec fingerprint recorded at creation.
    pub fingerprint: u64,
    /// Grid size recorded at creation.
    pub total: usize,
    /// Last-written status per job index.
    pub statuses: BTreeMap<usize, JobStatus>,
}

impl Checkpoint {
    /// Indices whose jobs completed (these are skipped on resume).
    pub fn completed_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.statuses
            .iter()
            .filter(|(_, s)| matches!(s, JobStatus::Completed(_)))
            .map(|(&i, _)| i)
    }
}

/// Loads a checkpoint, or `Ok(None)` when `path` does not exist.
///
/// # Errors
///
/// Returns an error for unreadable files or a missing/corrupt header; torn
/// or malformed *record* lines are skipped (only a prefix of the file is
/// guaranteed intact after a kill).
pub fn load(path: &Path) -> io::Result<Option<Checkpoint>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = BufReader::new(file).lines();
    let header_line = lines
        .next()
        .transpose()?
        .ok_or_else(|| bad_data("checkpoint file is empty"))?;
    let header = parse_object(&header_line)
        .ok_or_else(|| bad_data("checkpoint header is not a JSON object"))?;
    if header.str_field("header") != Some(HEADER_NAME) {
        return Err(bad_data("not a relia sweep checkpoint"));
    }
    if header.num_field("version") != Some(VERSION as f64) {
        return Err(bad_data("unsupported checkpoint version"));
    }
    let fingerprint = header
        .str_field("fingerprint")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| bad_data("checkpoint header lacks a fingerprint"))?;
    let total = header
        .num_field("total")
        .map(|n| n as usize)
        .ok_or_else(|| bad_data("checkpoint header lacks a total"))?;

    let mut statuses = BTreeMap::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // Torn/corrupt record lines are skipped, not fatal: everything up
        // to the interruption point is still valid.
        let Some(obj) = parse_object(&line) else {
            continue;
        };
        let Some((index, status)) = record_from(&obj) else {
            continue;
        };
        statuses.insert(index, status);
    }
    Ok(Some(Checkpoint {
        fingerprint,
        total,
        statuses,
    }))
}

/// An open checkpoint being appended to, one flushed line per result.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint with a fresh header.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from creation or the header write.
    pub fn create(path: &Path, fingerprint: u64, total: usize) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(
            out,
            "{{\"header\":\"{HEADER_NAME}\",\"version\":{VERSION},\
             \"fingerprint\":\"{fingerprint:016x}\",\"total\":{total}}}"
        )?;
        out.flush()?;
        Ok(CheckpointWriter { out })
    }

    /// Reopens an existing checkpoint for appending (the header is already
    /// on disk; the caller has verified it via [`load`]).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from opening.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one job's status and flushes, so a kill loses at most the
    /// line being written.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the write.
    pub fn record(&mut self, index: usize, status: &JobStatus) -> io::Result<()> {
        match status {
            JobStatus::Completed(JobResult::Aging {
                worst_delta_vth,
                degradation,
                nominal_delay_ps,
                degraded_delay_ps,
                standby_leakage,
                active_leakage,
            }) => {
                let standby = match standby_leakage {
                    Some(v) => fmt_f64(*v),
                    None => "null".to_owned(),
                };
                writeln!(
                    self.out,
                    "{{\"index\":{index},\"kind\":\"aging\",\
                     \"worst_delta_vth\":{},\"degradation\":{},\
                     \"nominal_delay_ps\":{},\"degraded_delay_ps\":{},\
                     \"standby_leakage\":{standby},\"active_leakage\":{}}}",
                    fmt_f64(*worst_delta_vth),
                    fmt_f64(*degradation),
                    fmt_f64(*nominal_delay_ps),
                    fmt_f64(*degraded_delay_ps),
                    fmt_f64(*active_leakage),
                )?;
            }
            JobStatus::Completed(JobResult::Model { delta_vth }) => {
                writeln!(
                    self.out,
                    "{{\"index\":{index},\"kind\":\"model\",\"delta_vth\":{}}}",
                    fmt_f64(*delta_vth)
                )?;
            }
            JobStatus::Failed { reason } => {
                writeln!(
                    self.out,
                    "{{\"index\":{index},\"kind\":\"failed\",\"reason\":\"{}\"}}",
                    escape(reason)
                )?;
            }
        }
        self.out.flush()
    }
}

/// Shortest-round-trip float serialization; keeps non-finite values
/// representable (JSON has no infinities, so they are quoted strings — the
/// parser maps them back).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure the token parses as a number even for integral values.
        s
    } else {
        format!("\"{v}\"")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// A parser for exactly the JSON subset the writer emits: one flat object
// per line, values limited to strings, numbers, and null.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Null,
}

#[derive(Debug, Default)]
struct FlatObject {
    fields: Vec<(String, Value)>,
}

impl FlatObject {
    fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn num_field(&self, name: &str) -> Option<f64> {
        match self.field(name) {
            Some(Value::Num(n)) => Some(*n),
            // Non-finite floats round-trip as quoted strings.
            Some(Value::Str(s)) => s.parse().ok(),
            _ => None,
        }
    }
}

fn parse_object(line: &str) -> Option<FlatObject> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut obj = FlatObject::default();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let value = parse_value(&mut chars)?;
                obj.fields.push((key, value));
            }
            _ => return None,
        }
    }
    Some(obj)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<Value> {
    match chars.peek()? {
        '"' => parse_string(chars).map(Value::Str),
        'n' => {
            for expected in "null".chars() {
                if chars.next()? != expected {
                    return None;
                }
            }
            Some(Value::Null)
        }
        _ => {
            let mut token = String::new();
            while chars
                .peek()
                .is_some_and(|&c| c != ',' && c != '}' && !c.is_whitespace())
            {
                token.push(chars.next()?);
            }
            token.parse().ok().map(Value::Num)
        }
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn record_from(obj: &FlatObject) -> Option<(usize, JobStatus)> {
    let index = obj.num_field("index")? as usize;
    let status = match obj.str_field("kind")? {
        "aging" => JobStatus::Completed(JobResult::Aging {
            worst_delta_vth: obj.num_field("worst_delta_vth")?,
            degradation: obj.num_field("degradation")?,
            nominal_delay_ps: obj.num_field("nominal_delay_ps")?,
            degraded_delay_ps: obj.num_field("degraded_delay_ps")?,
            standby_leakage: match obj.field("standby_leakage")? {
                Value::Null => None,
                Value::Num(n) => Some(*n),
                Value::Str(s) => Some(s.parse().ok()?),
            },
            active_leakage: obj.num_field("active_leakage")?,
        }),
        "model" => JobStatus::Completed(JobResult::Model {
            delta_vth: obj.num_field("delta_vth")?,
        }),
        "failed" => JobStatus::Failed {
            reason: obj.str_field("reason")?.to_owned(),
        },
        _ => return None,
    };
    Some((index, status))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("relia-ckpt-{}-{name}.jsonl", std::process::id()));
        p
    }

    fn aging(v: f64) -> JobStatus {
        JobStatus::Completed(JobResult::Aging {
            worst_delta_vth: v,
            degradation: 0.05 + v,
            nominal_delay_ps: 123.456,
            degraded_delay_ps: 130.0,
            standby_leakage: Some(1.25e-6),
            active_leakage: 2.5e-6,
        })
    }

    #[test]
    fn round_trips_bit_exactly() {
        let path = tmp("roundtrip");
        let mut w = CheckpointWriter::create(&path, 0xdead_beef, 5).unwrap();
        let statuses = [
            aging(0.031_234_567_890_123),
            JobStatus::Completed(JobResult::Model {
                delta_vth: 1.0 / 3.0,
            }),
            JobStatus::Failed {
                reason: "panic: \"quoted\"\nand newline \t tab".into(),
            },
            JobStatus::Completed(JobResult::Aging {
                worst_delta_vth: 0.0,
                degradation: 0.0,
                nominal_delay_ps: 100.0,
                degraded_delay_ps: 100.0,
                standby_leakage: None,
                active_leakage: f64::MIN_POSITIVE,
            }),
        ];
        for (i, s) in statuses.iter().enumerate() {
            w.record(i, s).unwrap();
        }
        drop(w);

        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(ckpt.fingerprint, 0xdead_beef);
        assert_eq!(ckpt.total, 5);
        assert_eq!(ckpt.statuses.len(), 4);
        for (i, s) in statuses.iter().enumerate() {
            assert_eq!(ckpt.statuses.get(&i), Some(s), "index {i}");
        }
        assert_eq!(ckpt.completed_indices().collect::<Vec<_>>(), vec![0, 1, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none() {
        assert_eq!(load(&tmp("missing-never-created")).unwrap(), None);
    }

    #[test]
    fn torn_last_line_is_ignored() {
        let path = tmp("torn");
        let mut w = CheckpointWriter::create(&path, 7, 3).unwrap();
        w.record(0, &aging(0.01)).unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a record.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"index\":1,\"kind\":\"ag").unwrap();
        drop(f);

        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(ckpt.statuses.len(), 1);
        assert!(ckpt.statuses.contains_key(&0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appended_records_win_over_earlier_ones() {
        let path = tmp("lastwins");
        let mut w = CheckpointWriter::create(&path, 7, 3).unwrap();
        w.record(
            2,
            &JobStatus::Failed {
                reason: "first".into(),
            },
        )
        .unwrap();
        drop(w);
        let mut w = CheckpointWriter::append(&path).unwrap();
        w.record(2, &aging(0.02)).unwrap();
        drop(w);
        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(ckpt.statuses.get(&2), Some(&aging(0.02)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_header_is_an_error() {
        let path = tmp("badheader");
        std::fs::write(&path, "{\"header\":\"something-else\",\"version\":1}\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_floats_survive() {
        let path = tmp("nonfinite");
        let mut w = CheckpointWriter::create(&path, 1, 1).unwrap();
        w.record(
            0,
            &JobStatus::Completed(JobResult::Model {
                delta_vth: f64::INFINITY,
            }),
        )
        .unwrap();
        drop(w);
        let ckpt = load(&path).unwrap().unwrap();
        assert_eq!(
            ckpt.statuses.get(&0),
            Some(&JobStatus::Completed(JobResult::Model {
                delta_vth: f64::INFINITY
            }))
        );
        std::fs::remove_file(&path).ok();
    }
}

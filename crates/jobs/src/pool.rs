//! A std-only ordered worker pool with per-job fault isolation, bounded
//! retry, and watchdog deadlines.
//!
//! Workers claim jobs from a shared atomic counter (work stealing without
//! queues), run each attempt under [`std::panic::catch_unwind`], and report
//! `(index, outcome)` pairs over a channel. The collector reassembles
//! results **by job index**, so the output order is a function of the job
//! list alone — never of thread scheduling — and a failing job poisons
//! nothing: it becomes [`JobOutcome::Failed`] (or
//! [`JobOutcome::TimedOut`]) while every other job completes normally.
//!
//! Failure handling, per attempt:
//!
//! * a **panic** is caught and classified *transient* (environmental —
//!   worth retrying);
//! * an `Err(`[`JobFailure`]`)` return carries its own
//!   transient/permanent classification — permanent failures (invalid
//!   parameters, structural errors) fail fast without burning retries;
//! * transient failures are retried up to [`RetryPolicy::max_retries`]
//!   times with bounded exponential backoff;
//! * when [`PoolConfig::job_timeout`] is set, a watchdog thread cancels the
//!   attempt's [`CancelToken`] once the soft deadline passes. Cancellation
//!   is cooperative: the job polls the token (see
//!   `AgingAnalysis::run_with_cache_cancellable`) and returns early; the
//!   pool reports the job as [`JobOutcome::TimedOut`] and drains instead of
//!   hanging.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use relia_core::CancelToken;
use relia_obs::Tracer;

/// One failed attempt at a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attempt {
    /// What went wrong (panic message or the job's own diagnostic).
    pub reason: String,
    /// Whether the failure was classified as retryable.
    pub transient: bool,
}

/// A job's own failure report, carrying the transient/permanent
/// classification that drives the retry loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Human-readable diagnostic.
    pub reason: String,
    /// True when a retry could plausibly succeed (environmental hiccup);
    /// false for deterministic failures (invalid parameters) that would
    /// only fail again.
    pub transient: bool,
}

impl JobFailure {
    /// A retryable failure.
    pub fn transient(reason: impl Into<String>) -> Self {
        JobFailure {
            reason: reason.into(),
            transient: true,
        }
    }

    /// A fail-fast failure: no retry will be attempted.
    pub fn permanent(reason: impl Into<String>) -> Self {
        JobFailure {
            reason: reason.into(),
            transient: false,
        }
    }
}

/// The fate of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// Every permitted attempt failed; `attempts` is the full history in
    /// order (the last entry is the terminal failure).
    Failed {
        /// One record per attempt, oldest first.
        attempts: Vec<Attempt>,
    },
    /// The watchdog deadline expired and the job honored its cancellation
    /// token. Earlier failed attempts (if the timeout hit during a retry)
    /// are preserved in `attempts`.
    TimedOut {
        /// Wall-clock milliseconds the final attempt ran before stopping.
        elapsed_ms: u64,
        /// Failed attempts that preceded the timeout, oldest first.
        attempts: Vec<Attempt>,
    },
}

impl<T> JobOutcome<T> {
    /// True for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The completed value, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// The terminal failure reason, if the job did not complete.
    pub fn failure_reason(&self) -> Option<&str> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Failed { attempts } => attempts.last().map(|a| a.reason.as_str()),
            JobOutcome::TimedOut { .. } => Some("watchdog deadline expired"),
        }
    }
}

/// Retry knobs: how many times a transient failure may re-run and how the
/// backoff between attempts grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff (the exponential curve is clamped
    /// here).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` extra attempts and the default backoff
    /// curve.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based): `base · 2^(retry−1)`,
    /// clamped to `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32
            .checked_shl(retry.saturating_sub(1))
            .unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// Full configuration of one pool run.
#[derive(Debug, Clone, Default)]
pub struct PoolConfig {
    /// Worker threads; 0 means [`default_workers`].
    pub workers: usize,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-job soft deadline. `None` disables the watchdog.
    pub job_timeout: Option<Duration>,
    /// When set, the pool records `job_queue_wait` (claim delay from pool
    /// start), `job_execute` (per attempt), and `job_retry_backoff` spans
    /// into this tracer.
    pub trace: Option<Arc<Tracer>>,
}

impl PoolConfig {
    /// A config running `workers` threads with no retries and no watchdog.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            ..PoolConfig::default()
        }
    }
}

/// What a pool run hands back: outcomes in job order plus run-wide retry
/// accounting (completed jobs do not carry their attempt history, so the
/// pool counts retries centrally).
#[derive(Debug)]
pub struct PoolRun<T> {
    /// `outcomes[i]` is the fate of `jobs[i]`.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Total retry attempts across all jobs (successful or not).
    pub retries: u64,
}

/// The number of workers to use when the caller does not care: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Why [`TaskPool::try_submit`] rejected a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; the caller should shed load
    /// (retry later, or answer 503 in a serving context).
    QueueFull,
    /// The pool has begun draining and accepts no new work.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "task queue is full"),
            SubmitError::Draining => write!(f, "task pool is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A long-lived worker pool with a **bounded** submission queue.
///
/// Where [`run_pool`] executes a finite job list and returns, `TaskPool`
/// serves an open-ended stream of tasks — the shape a request-serving
/// workload needs. The queue bound is the backpressure mechanism: when
/// producers outrun the workers, [`TaskPool::try_submit`] fails with
/// [`SubmitError::QueueFull`] *immediately* instead of buffering without
/// limit, so the caller can shed load while the system is still healthy.
///
/// Every task runs under [`catch_unwind`]: a panicking task is counted
/// ([`TaskPool::panics`]) and its worker keeps serving.
///
/// [`TaskPool::drain`] is the graceful shutdown: the queue closes (new
/// submissions fail with [`SubmitError::Draining`]), queued and in-flight
/// tasks run to completion, and the workers are joined.
#[derive(Debug)]
pub struct TaskPool {
    tx: Option<mpsc::SyncSender<Task>>,
    handles: Vec<thread::JoinHandle<()>>,
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
    panicked: Arc<AtomicU64>,
}

impl TaskPool {
    /// A pool of `workers` threads (min 1) over a queue of `queue_depth`
    /// waiting tasks (min 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Task>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let completed = Arc::new(AtomicU64::new(0));
        let panicked = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let completed = Arc::clone(&completed);
                let panicked = Arc::clone(&panicked);
                thread::spawn(move || loop {
                    let task = {
                        let guard = match rx.lock() {
                            Ok(g) => g,
                            Err(_) => return, // a sibling panicked holding the lock
                        };
                        // Blocking on recv *is* this lock's purpose: std's
                        // Receiver is !Sync, so the mutex serializes the
                        // dequeue and idle workers must park right here.
                        // relia-lint: allow(guard-across-blocking)
                        guard.recv()
                    };
                    match task {
                        Ok(task) => {
                            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => return, // queue closed: drain complete
                    }
                })
            })
            .collect();
        TaskPool {
            tx: Some(tx),
            handles,
            submitted: Arc::new(AtomicU64::new(0)),
            completed,
            panicked,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submits a task without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::Draining`] once [`TaskPool::drain`] has been called.
    pub fn try_submit(&self, task: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(SubmitError::Draining);
        };
        match tx.try_send(Box::new(task)) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(mpsc::TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(mpsc::TrySendError::Disconnected(_)) => Err(SubmitError::Draining),
        }
    }

    /// Tasks accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Tasks finished (including panicked ones).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Tasks that panicked (their workers survived).
    pub fn panics(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// A shared handle to the panic counter that outlives
    /// [`TaskPool::drain`] (which consumes the pool) — a server can drain
    /// and *then* decide whether the run was clean.
    pub fn panic_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.panicked)
    }

    /// Tasks accepted but not yet finished (queued + in flight).
    pub fn in_flight(&self) -> u64 {
        self.submitted().saturating_sub(self.completed())
    }

    /// Graceful shutdown: closes the queue, lets queued and in-flight
    /// tasks finish, and joins every worker.
    pub fn drain(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.tx = None; // closes the channel; workers exit once drained
        for handle in self.handles.drain(..) {
            // A worker only panics if the runtime itself is broken — every
            // task body is already caught.
            let _ = handle.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// How often the watchdog scans the running-job slots.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// Runs every job and returns the outcomes **in job order** (no retries,
/// no watchdog). `workers` is clamped to `1..=jobs.len()`; `run` receives
/// the job's index and a reference to the job. See [`run_pool`] for the
/// full-featured variant.
pub fn run_ordered<J, T, F>(jobs: &[J], workers: usize, run: F) -> Vec<JobOutcome<T>>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
{
    run_ordered_with(jobs, workers, run, |_, _| {})
}

/// Like [`run_ordered`], with an observer invoked from the collector thread
/// as each `(index, outcome)` arrives — in **completion** order, which is
/// scheduling-dependent. Checkpoint writers hang off this hook; because the
/// observer runs on one thread, it needs no synchronization of its own.
pub fn run_ordered_with<J, T, F, O>(
    jobs: &[J],
    workers: usize,
    run: F,
    observe: O,
) -> Vec<JobOutcome<T>>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
    O: FnMut(usize, &JobOutcome<T>),
{
    run_pool(
        jobs,
        &PoolConfig::with_workers(workers),
        |i, j, _| Ok(run(i, j)),
        observe,
    )
    .outcomes
}

/// Runs every job under the full resilience machinery — retry with bounded
/// exponential backoff, panic isolation, and cooperative watchdog
/// deadlines — returning outcomes **in job order**.
///
/// `run` receives the job's index, the job, and the attempt's
/// [`CancelToken`]; long-running jobs should poll the token so the
/// watchdog can turn a straggler into [`JobOutcome::TimedOut`] instead of
/// a pool-stalling hang. `observe` is invoked from the collector thread in
/// completion order.
pub fn run_pool<J, T, F, O>(jobs: &[J], config: &PoolConfig, run: F, mut observe: O) -> PoolRun<T>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J, &CancelToken) -> Result<T, JobFailure> + Sync,
    O: FnMut(usize, &JobOutcome<T>),
{
    if jobs.is_empty() {
        return PoolRun {
            outcomes: Vec::new(),
            retries: 0,
        };
    }
    let workers = config.workers.max(1).min(jobs.len());
    let pool_start_ns = config.trace.as_ref().map(|t| t.now_ns());
    let next = AtomicUsize::new(0);
    let retries = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // One slot per worker: the token and deadline of the attempt it is
    // currently running, scanned by the watchdog.
    let slots: Vec<Mutex<Option<(CancelToken, Instant)>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>)>();
    let mut out: Vec<Option<JobOutcome<T>>> = (0..jobs.len()).map(|_| None).collect();

    thread::scope(|scope| {
        if config.job_timeout.is_some() {
            let slots = &slots;
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    for slot in slots {
                        if let Ok(guard) = slot.lock() {
                            if let Some((token, deadline)) = guard.as_ref() {
                                if Instant::now() >= *deadline {
                                    token.cancel();
                                }
                            }
                        }
                    }
                    thread::park_timeout(WATCHDOG_TICK);
                }
            });
        }
        for slot in &slots {
            let tx = tx.clone();
            let next = &next;
            let retries = &retries;
            let run = &run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                if let (Some(tracer), Some(t0)) = (config.trace.as_deref(), pool_start_ns) {
                    // Claim delay from pool start: how long the job sat
                    // behind earlier work before a worker reached it.
                    tracer.record("job_queue_wait", 0, t0, tracer.now_ns().saturating_sub(t0));
                }
                let outcome = run_one(i, &jobs[i], config, slot, run, retries);
                if tx.send((i, outcome)).is_err() {
                    break; // collector gone; nothing left to report to
                }
            });
        }
        drop(tx);
        for (i, outcome) in rx {
            observe(i, &outcome);
            out[i] = Some(outcome);
        }
        done.store(true, Ordering::Release);
    });

    PoolRun {
        outcomes: out
            .into_iter()
            // The pool joins all workers before draining the slots.
            // relia-lint: allow(unwrap-in-lib)
            .map(|slot| slot.expect("every claimed job reports exactly once"))
            .collect(),
        retries: retries.load(Ordering::Relaxed),
    }
}

/// The per-job attempt loop: run, classify, retry or report.
fn run_one<J, T, F>(
    index: usize,
    job: &J,
    config: &PoolConfig,
    slot: &Mutex<Option<(CancelToken, Instant)>>,
    run: &F,
    retries: &AtomicU64,
) -> JobOutcome<T>
where
    F: Fn(usize, &J, &CancelToken) -> Result<T, JobFailure>,
{
    let mut attempts: Vec<Attempt> = Vec::new();
    loop {
        let token = CancelToken::new();
        let started = Instant::now();
        if let Some(timeout) = config.job_timeout {
            if let Ok(mut guard) = slot.lock() {
                *guard = Some((token.clone(), started + timeout));
            }
        }
        let attempt_span = config.trace.as_deref().map(|t| t.span("job_execute"));
        let result = catch_unwind(AssertUnwindSafe(|| run(index, job, &token)));
        drop(attempt_span);
        if let Ok(mut guard) = slot.lock() {
            *guard = None;
        }
        let elapsed_ms = started.elapsed().as_millis() as u64;

        let failure = match result {
            // A value that lands after cancellation is still a valid value:
            // the deadline is soft, and the work is already done.
            Ok(Ok(value)) => return JobOutcome::Completed(value),
            Ok(Err(failure)) => failure,
            Err(payload) => {
                JobFailure::transient(format!("panic: {}", panic_reason(payload.as_ref())))
            }
        };
        if token.is_cancelled() {
            // The watchdog fired during this attempt; whatever error the
            // job surfaced on its way out, the operative fact is the
            // deadline. Timeouts are not retried.
            return JobOutcome::TimedOut {
                elapsed_ms,
                attempts,
            };
        }
        let transient = failure.transient;
        attempts.push(Attempt {
            reason: failure.reason,
            transient,
        });
        let retry_no = attempts.len() as u32; // retries taken so far + 1
        if transient && retry_no <= config.retry.max_retries {
            retries.fetch_add(1, Ordering::Relaxed);
            let backoff_span = config.trace.as_deref().map(|t| t.span("job_retry_backoff"));
            thread::sleep(config.retry.backoff(retry_no));
            drop(backoff_span);
            continue;
        }
        return JobOutcome::Failed { attempts };
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 7, 64, 1000] {
            let out = run_ordered(&jobs, workers, |i, &j| {
                assert_eq!(i as u64, j);
                j * j
            });
            let values: Vec<u64> = out
                .iter()
                .map(|o| *o.completed().expect("no panics here"))
                .collect();
            assert_eq!(values, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<usize> = (0..16).collect();
        let out = run_ordered(&jobs, 4, |_, &j| {
            if j == 7 {
                panic!("job {j} exploded");
            }
            j
        });
        for (i, outcome) in out.iter().enumerate() {
            if i == 7 {
                match outcome {
                    JobOutcome::Failed { attempts } => {
                        assert_eq!(attempts.len(), 1);
                        assert!(attempts[0].reason.contains("exploded"));
                        assert!(attempts[0].transient, "panics classify as transient");
                    }
                    other => panic!("job 7 should fail, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.completed(), Some(&i));
            }
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let runs = AtomicU64::new(0);
        let jobs: Vec<usize> = (0..257).collect();
        let out = run_ordered(&jobs, 8, |_, _| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn observer_sees_every_outcome() {
        let jobs: Vec<usize> = (0..32).collect();
        let mut seen = Vec::new();
        run_ordered_with(&jobs, 4, |_, &j| j, |i, _| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<JobOutcome<()>> = run_ordered(&[] as &[u8], 4, |_, _| {});
        assert!(out.is_empty());
    }

    #[test]
    fn transient_failure_succeeds_after_retry() {
        let calls = AtomicU32::new(0);
        let config = PoolConfig {
            workers: 2,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            },
            job_timeout: None,
            trace: None,
        };
        let run = run_pool(
            &[0usize],
            &config,
            |_, _, _| {
                if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err(JobFailure::transient("flaky"))
                } else {
                    Ok(42)
                }
            },
            |_, _| {},
        );
        assert_eq!(run.outcomes[0].completed(), Some(&42));
        assert_eq!(run.retries, 2);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn permanent_failure_fails_fast() {
        let calls = AtomicU32::new(0);
        let config = PoolConfig {
            workers: 1,
            retry: RetryPolicy::retries(5),
            job_timeout: None,
            trace: None,
        };
        let run = run_pool(
            &[0usize],
            &config,
            |_, _, _| -> Result<(), JobFailure> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(JobFailure::permanent("bad parameter"))
            },
            |_, _| {},
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry burned");
        assert_eq!(run.retries, 0);
        match &run.outcomes[0] {
            JobOutcome::Failed { attempts } => {
                assert_eq!(attempts.len(), 1);
                assert!(!attempts[0].transient);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn retry_budget_exhaustion_preserves_the_history() {
        let config = PoolConfig {
            workers: 1,
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            job_timeout: None,
            trace: None,
        };
        let run = run_pool(
            &[0usize],
            &config,
            |_, _, _| -> Result<(), JobFailure> { Err(JobFailure::transient("still flaky")) },
            |_, _| {},
        );
        match &run.outcomes[0] {
            JobOutcome::Failed { attempts } => {
                assert_eq!(attempts.len(), 4, "1 initial + 3 retries");
                assert!(attempts.iter().all(|a| a.transient));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(run.retries, 3);
    }

    #[test]
    fn a_cooperative_straggler_times_out_without_stalling_the_pool() {
        let jobs: Vec<usize> = (0..8).collect();
        let config = PoolConfig {
            workers: 4,
            retry: RetryPolicy::default(),
            job_timeout: Some(Duration::from_millis(20)),
            trace: None,
        };
        let started = Instant::now();
        let run = run_pool(
            &jobs,
            &config,
            |_, &j, token: &CancelToken| {
                if j == 3 {
                    // A cooperative hang: poll the token like a real
                    // analysis loop would.
                    while !token.is_cancelled() {
                        thread::sleep(Duration::from_millis(1));
                    }
                    return Err(JobFailure::transient("cancelled"));
                }
                Ok(j)
            },
            |_, _| {},
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "pool must drain promptly"
        );
        for (i, outcome) in run.outcomes.iter().enumerate() {
            if i == 3 {
                match outcome {
                    JobOutcome::TimedOut { elapsed_ms, .. } => {
                        assert!(*elapsed_ms >= 15, "ran at least near the deadline");
                    }
                    other => panic!("expected TimedOut, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.completed(), Some(&i), "job {i} unaffected");
            }
        }
        assert_eq!(run.retries, 0, "timeouts are not retried");
    }

    #[test]
    fn pool_records_queue_execute_and_backoff_spans() {
        let tracer = Arc::new(Tracer::new(64));
        let config = PoolConfig {
            workers: 2,
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
            },
            job_timeout: None,
            trace: Some(Arc::clone(&tracer)),
        };
        let calls = AtomicU32::new(0);
        let run = run_pool(
            &[0usize, 1],
            &config,
            |_, _, _| {
                if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    Err(JobFailure::transient("flaky once"))
                } else {
                    Ok(())
                }
            },
            |_, _| {},
        );
        assert_eq!(run.retries, 1);
        let spans = tracer.recent();
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("job_queue_wait"), 2, "one claim per job");
        assert_eq!(count("job_execute"), 3, "two jobs + one retry attempt");
        assert_eq!(count("job_retry_backoff"), 1);
    }

    #[test]
    fn backoff_grows_and_clamps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(65),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(65), "clamped");
        assert_eq!(p.backoff(63), Duration::from_millis(65), "shift saturates");
    }

    #[test]
    fn task_pool_runs_every_submitted_task() {
        let pool = TaskPool::new(4, 64);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            loop {
                let c = Arc::clone(&counter);
                match pool.try_submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) {
                    Ok(()) => break,
                    Err(SubmitError::QueueFull) => thread::yield_now(),
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn task_pool_sheds_load_when_the_queue_is_full() {
        // One worker wedged on a gate, queue depth 1: the first task
        // occupies the worker, the second fills the queue, the third must
        // be rejected with QueueFull.
        let pool = TaskPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let g = Arc::clone(&gate);
        pool.try_submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Whether or not the worker has picked the blocker up yet, the
        // queue holds at most one waiting task — repeated submissions must
        // hit the bound almost immediately.
        let mut saw_full = false;
        for _ in 0..1000 {
            match pool.try_submit(|| {}) {
                Ok(()) => {}
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_full, "a bounded queue must eventually reject");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.drain();
    }

    #[test]
    fn task_pool_survives_panicking_tasks() {
        let pool = TaskPool::new(2, 16);
        pool.try_submit(|| panic!("task exploded")).unwrap();
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        // Submission may race the panic; retry on a full queue only.
        loop {
            let r2 = Arc::clone(&r);
            match pool.try_submit(move || {
                r2.fetch_add(1, Ordering::Relaxed);
            }) {
                Ok(()) => break,
                Err(SubmitError::QueueFull) => thread::yield_now(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "worker survived the panic");
    }

    #[test]
    fn drained_pool_rejects_and_drop_is_clean() {
        let pool = TaskPool::new(1, 4);
        assert_eq!(pool.workers(), 1);
        pool.try_submit(|| {}).unwrap();
        pool.drain();
        let pool = TaskPool::new(1, 4);
        drop(pool); // Drop also joins
    }

    #[test]
    fn task_pool_counters_add_up() {
        let pool = TaskPool::new(2, 32);
        for _ in 0..10 {
            while pool.try_submit(|| {}) == Err(SubmitError::QueueFull) {
                thread::yield_now();
            }
        }
        while pool.completed() < 10 {
            thread::yield_now();
        }
        assert_eq!(pool.submitted(), 10);
        assert_eq!(pool.completed(), 10);
        assert_eq!(pool.panics(), 0);
        assert_eq!(pool.in_flight(), 0);
        pool.drain();
    }

    #[test]
    fn failure_reason_reports_the_terminal_attempt() {
        let failed: JobOutcome<()> = JobOutcome::Failed {
            attempts: vec![
                Attempt {
                    reason: "first".into(),
                    transient: true,
                },
                Attempt {
                    reason: "second".into(),
                    transient: false,
                },
            ],
        };
        assert_eq!(failed.failure_reason(), Some("second"));
        let done: JobOutcome<u8> = JobOutcome::Completed(1);
        assert_eq!(done.failure_reason(), None);
    }
}

//! A std-only ordered worker pool with per-job fault isolation.
//!
//! Workers claim jobs from a shared atomic counter (work stealing without
//! queues), run each job under [`std::panic::catch_unwind`], and report
//! `(index, outcome)` pairs over a channel. The collector reassembles
//! results **by job index**, so the output order is a function of the job
//! list alone — never of thread scheduling — and a panicking job poisons
//! nothing: it becomes [`JobOutcome::Failed`] while every other job
//! completes normally.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// The fate of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked; `reason` is the stringified panic payload.
    Failed {
        /// Panic message (or a placeholder for non-string payloads).
        reason: String,
    },
}

impl<T> JobOutcome<T> {
    /// True for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The completed value, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Failed { .. } => None,
        }
    }
}

/// The number of workers to use when the caller does not care: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every job and returns the outcomes **in job order**.
///
/// `workers` is clamped to `1..=jobs.len()`; `run` receives the job's index
/// and a reference to the job. See [`run_ordered_with`] for the streaming
/// variant.
pub fn run_ordered<J, T, F>(jobs: &[J], workers: usize, run: F) -> Vec<JobOutcome<T>>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
{
    run_ordered_with(jobs, workers, run, |_, _| {})
}

/// Like [`run_ordered`], with an observer invoked from the collector thread
/// as each `(index, outcome)` arrives — in **completion** order, which is
/// scheduling-dependent. Checkpoint writers hang off this hook; because the
/// observer runs on one thread, it needs no synchronization of its own.
pub fn run_ordered_with<J, T, F, O>(
    jobs: &[J],
    workers: usize,
    run: F,
    mut observe: O,
) -> Vec<JobOutcome<T>>
where
    J: Sync,
    T: Send,
    F: Fn(usize, &J) -> T + Sync,
    O: FnMut(usize, &JobOutcome<T>),
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>)>();
    let mut out: Vec<Option<JobOutcome<T>>> = (0..jobs.len()).map(|_| None).collect();

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let run = &run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let outcome = match catch_unwind(AssertUnwindSafe(|| run(i, &jobs[i]))) {
                    Ok(value) => JobOutcome::Completed(value),
                    Err(payload) => JobOutcome::Failed {
                        reason: panic_reason(payload.as_ref()),
                    },
                };
                if tx.send((i, outcome)).is_err() {
                    break; // collector gone; nothing left to report to
                }
            });
        }
        drop(tx);
        for (i, outcome) in rx {
            observe(i, &outcome);
            out[i] = Some(outcome);
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("every claimed job reports exactly once"))
        .collect()
}

/// Extracts a human-readable message from a panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 7, 64, 1000] {
            let out = run_ordered(&jobs, workers, |i, &j| {
                assert_eq!(i as u64, j);
                j * j
            });
            let values: Vec<u64> = out
                .iter()
                .map(|o| *o.completed().expect("no panics here"))
                .collect();
            assert_eq!(values, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<usize> = (0..16).collect();
        let out = run_ordered(&jobs, 4, |_, &j| {
            if j == 7 {
                panic!("job {j} exploded");
            }
            j
        });
        for (i, outcome) in out.iter().enumerate() {
            if i == 7 {
                match outcome {
                    JobOutcome::Failed { reason } => assert!(reason.contains("exploded")),
                    JobOutcome::Completed(_) => panic!("job 7 should fail"),
                }
            } else {
                assert_eq!(outcome.completed(), Some(&i));
            }
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let runs = AtomicU64::new(0);
        let jobs: Vec<usize> = (0..257).collect();
        let out = run_ordered(&jobs, 8, |_, _| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn observer_sees_every_outcome() {
        let jobs: Vec<usize> = (0..32).collect();
        let mut seen = Vec::new();
        run_ordered_with(&jobs, 4, |_, &j| j, |i, _| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<JobOutcome<()>> = run_ordered(&[] as &[u8], 4, |_, _| {});
        assert!(out.is_empty());
    }
}

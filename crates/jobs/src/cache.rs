//! A sharded, thread-safe, **bounded** memoization cache for NBTI model
//! evaluations.
//!
//! Keys are [`StressKey`]s (quantized stress points); the stored value is
//! the model's ΔV_th at the key's *canonical* point. Because
//! [`StressKey::evaluate`] is a pure function of the key, two threads that
//! race on the same missing key compute the identical value — insertion
//! order cannot change any result, which is what keeps multi-worker sweeps
//! byte-identical to single-worker ones.
//!
//! Sharding bounds contention: the key's FNV fingerprint picks one of `N`
//! independently locked hash maps, so workers rarely serialize on the same
//! mutex even under full cache pressure.
//!
//! Capacity bounds memory: each shard holds at most `capacity` entries and
//! evicts its least-recently-*touched* entry (tracked by a per-shard use
//! tick) when a new key would overflow it. Long-running servers therefore
//! cannot grow the memo table without bound, and eviction pressure is
//! observable through [`CacheStats::evictions`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use relia_core::{ModelError, NbtiModel, StressKey};
use relia_flow::DeltaVthCache;

/// Default shard count: enough to keep a machine's worth of workers off
/// each other's locks without wasting memory on tiny sweeps.
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard capacity. With [`DEFAULT_SHARDS`] shards this caps the
/// table at 65 536 stress points — far beyond any sweep in the repo, small
/// enough (~4 MB) that a resident server stays bounded.
pub const DEFAULT_PER_SHARD_CAPACITY: usize = 4096;

/// Hit/miss/occupancy snapshot of a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that had to evaluate the model.
    pub misses: u64,
    /// Distinct keys currently stored.
    pub entries: usize,
    /// Entries displaced to respect the per-shard capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: a hash map of `key → (value, last-touched tick)` plus the
/// shard's monotonically increasing tick counter.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<StressKey, (f64, u64)>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A sharded, capacity-bounded ΔV_th memo table shared by all sweep
/// workers.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ShardedCache {
    fn default() -> Self {
        ShardedCache::new(DEFAULT_SHARDS)
    }
}

impl ShardedCache {
    /// A cache with `shards` independently locked segments (min 1), each
    /// bounded at [`DEFAULT_PER_SHARD_CAPACITY`] entries.
    pub fn new(shards: usize) -> Self {
        ShardedCache::with_capacity(shards, DEFAULT_PER_SHARD_CAPACITY)
    }

    /// A cache with `shards` segments of at most `per_shard` entries each
    /// (both clamped to a minimum of 1).
    pub fn with_capacity(shards: usize, per_shard: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity: per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum entries across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity * self.shards.len()
    }

    /// Counters and occupancy at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                // relia-lint: allow(unwrap-in-lib)
                .map(|s| s.lock().expect("cache shard poisoned").map.len())
                .sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, key: &StressKey) -> &Mutex<Shard> {
        &self.shards[key.fingerprint() as usize % self.shards.len()]
    }

    /// Read-only lookup: the memoized ΔV_th for `key`, if present.
    /// Refreshes the entry's LRU tick (a key a brownout keeps answering
    /// from should stay resident) but records neither a hit nor a miss —
    /// cache-hit-only serving must not skew the hit-rate statistics.
    pub fn peek(&self, key: &StressKey) -> Option<f64> {
        let mut shard = self
            .shard(key)
            .lock()
            // relia-lint: allow(unwrap-in-lib)
            .expect("cache shard poisoned");
        let tick = shard.touch();
        let entry = shard.map.get_mut(key)?;
        entry.1 = tick;
        Some(entry.0)
    }

    /// Admits `value` for `key` only after a finiteness check: a NaN or
    /// infinite ΔV_th is rejected as [`ModelError::NonFinite`] and **never
    /// enters the memo table**, where it would silently poison every later
    /// hit. All insertion paths go through here; a full shard first evicts
    /// its least-recently-touched entry.
    pub fn insert_checked(&self, key: StressKey, value: f64) -> Result<f64, ModelError> {
        if !value.is_finite() {
            return Err(ModelError::NonFinite {
                what: "delta_vth (cache admission)",
                value,
            });
        }
        let mut shard = self
            .shard(&key)
            .lock()
            // Poisoned-lock recovery is meaningless for a memo table.
            // relia-lint: allow(unwrap-in-lib)
            .expect("cache shard poisoned");
        if shard.map.len() >= self.capacity && !shard.map.contains_key(&key) {
            // LRU-ish: displace the entry with the stalest use tick.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, &(_, tick))| tick)
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let tick = shard.touch();
        shard.map.insert(key, (value, tick));
        Ok(value)
    }
}

impl DeltaVthCache for ShardedCache {
    fn delta_vth(&self, key: StressKey, model: &NbtiModel) -> Result<f64, ModelError> {
        {
            let mut shard = self
                .shard(&key)
                .lock()
                // relia-lint: allow(unwrap-in-lib)
                .expect("cache shard poisoned");
            let tick = shard.touch();
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.1 = tick;
                let v = entry.0;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
        }
        // Evaluate outside the lock: a racing thread computes the identical
        // value (evaluation is a pure function of the key), so double
        // insertion is harmless and lock hold times stay tiny.
        let v = key.evaluate(model)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.insert_checked(key, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_core::{Kelvin, ModeSchedule, PmosStress, Ras, Seconds};

    fn key(p_standby: f64) -> StressKey {
        let schedule = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap();
        let stress = PmosStress::new(0.5, p_standby).unwrap();
        StressKey::quantize(&schedule, &stress, Seconds(1.0e8))
    }

    #[test]
    fn second_lookup_hits() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        let a = cache.delta_vth(key(1.0), &model).unwrap();
        let b = cache.delta_vth(key(1.0), &model).unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries, stats.evictions),
            (1, 1, 1, 0)
        );
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peek_reads_without_touching_hit_statistics() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        assert_eq!(cache.peek(&key(1.0)), None, "cold key peeks to nothing");
        let v = cache.delta_vth(key(1.0), &model).unwrap();
        assert_eq!(cache.peek(&key(1.0)), Some(v));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 1),
            "peeks are invisible to hit/miss counters"
        );
    }

    #[test]
    fn peek_refreshes_the_lru_tick() {
        let model = NbtiModel::ptm90().unwrap();
        // One shard, two slots: inserting a third key evicts the stalest.
        let cache = ShardedCache::with_capacity(1, 2);
        let keep = key(1.0);
        let v = cache.delta_vth(keep, &model).unwrap();
        cache.delta_vth(key(0.9), &model).unwrap();
        // Touch the older entry via peek, then overflow the shard: the
        // *untouched* middle entry must be the victim.
        assert_eq!(cache.peek(&keep), Some(v));
        cache.delta_vth(key(0.8), &model).unwrap();
        assert_eq!(cache.peek(&keep), Some(v), "peeked entry stayed resident");
        assert_eq!(cache.peek(&key(0.9)), None, "stale entry was evicted");
    }

    #[test]
    fn cached_value_is_canonical() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::new(4);
        let k = key(0.25);
        let via_cache = cache.delta_vth(k, &model).unwrap();
        assert_eq!(via_cache, k.evaluate(&model).unwrap());
    }

    #[test]
    fn distinct_keys_occupy_distinct_entries() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::new(2);
        for i in 0..10 {
            cache.delta_vth(key(i as f64 / 10.0), &model).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 10);
        assert_eq!(stats.misses, 10);
    }

    #[test]
    fn non_finite_values_never_enter_the_cache() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        let k = key(0.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match cache.insert_checked(k, bad) {
                Err(ModelError::NonFinite { .. }) => {}
                other => panic!("expected NonFinite rejection, got {other:?}"),
            }
        }
        assert_eq!(cache.stats().entries, 0, "rejected values are not stored");
        // A later legitimate lookup still computes the canonical value.
        let v = cache.delta_vth(k, &model).unwrap();
        assert_eq!(v, k.evaluate(&model).unwrap());
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        let model = NbtiModel::ptm90().unwrap();
        // One shard, three slots: insertion number four must evict.
        let cache = ShardedCache::with_capacity(1, 3);
        assert_eq!(cache.capacity(), 3);
        for i in 0..8 {
            cache.delta_vth(key(i as f64 / 10.0), &model).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3, "shard never exceeds its capacity");
        assert_eq!(stats.evictions, 5, "each overflow evicts exactly one");
        assert_eq!(stats.misses, 8);
    }

    #[test]
    fn eviction_displaces_the_least_recently_touched_key() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::with_capacity(1, 2);
        let (a, b, c) = (key(0.1), key(0.2), key(0.3));
        cache.delta_vth(a, &model).unwrap();
        cache.delta_vth(b, &model).unwrap();
        // Touch `a` so `b` is now the stalest, then overflow with `c`.
        cache.delta_vth(a, &model).unwrap();
        cache.delta_vth(c, &model).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // `a` and `c` hit; `b` was evicted and must miss again.
        let before = cache.stats().misses;
        cache.delta_vth(a, &model).unwrap();
        cache.delta_vth(c, &model).unwrap();
        assert_eq!(cache.stats().misses, before);
        cache.delta_vth(b, &model).unwrap();
        assert_eq!(cache.stats().misses, before + 1);
    }

    #[test]
    fn evicted_keys_recompute_identical_values() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::with_capacity(1, 2);
        let keys: Vec<StressKey> = (0..6).map(|i| key(i as f64 / 10.0)).collect();
        let first: Vec<f64> = keys
            .iter()
            .map(|k| cache.delta_vth(*k, &model).unwrap())
            .collect();
        // Thrash the cache again; every value must round-trip bit-equal
        // whether it came from the memo table or a re-evaluation.
        let second: Vec<f64> = keys
            .iter()
            .map(|k| cache.delta_vth(*k, &model).unwrap())
            .collect();
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn concurrent_lookups_agree() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        let keys: Vec<StressKey> = (0..50).map(|i| key(i as f64 / 100.0)).collect();
        let values = crate::pool::run_ordered(&keys, 8, |_, k| {
            // Every thread looks up every key; all must agree.
            keys.iter()
                .map(|k2| cache.delta_vth(*k2, &model).unwrap())
                .collect::<Vec<f64>>()[keys.iter().position(|k2| k2 == k).unwrap()]
        });
        let solo: Vec<f64> = keys.iter().map(|k| k.evaluate(&model).unwrap()).collect();
        for (o, s) in values.iter().zip(&solo) {
            assert_eq!(o.completed(), Some(s));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 50);
        // 50 jobs × 50 lookups each. Racing threads may each take the miss
        // path for the same key before the first insert lands, so misses
        // can exceed the entry count — but never one per (worker, key).
        assert_eq!(stats.hits + stats.misses, 50 * 50);
        assert!(stats.misses >= 50);
        assert!(stats.misses <= 8 * 50, "misses={}", stats.misses);
    }
}

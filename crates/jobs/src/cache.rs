//! A sharded, thread-safe memoization cache for NBTI model evaluations.
//!
//! Keys are [`StressKey`]s (quantized stress points); the stored value is
//! the model's ΔV_th at the key's *canonical* point. Because
//! [`StressKey::evaluate`] is a pure function of the key, two threads that
//! race on the same missing key compute the identical value — insertion
//! order cannot change any result, which is what keeps multi-worker sweeps
//! byte-identical to single-worker ones.
//!
//! Sharding bounds contention: the key's FNV fingerprint picks one of `N`
//! independently locked hash maps, so workers rarely serialize on the same
//! mutex even under full cache pressure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use relia_core::{ModelError, NbtiModel, StressKey};
use relia_flow::DeltaVthCache;

/// Default shard count: enough to keep a machine's worth of workers off
/// each other's locks without wasting memory on tiny sweeps.
pub const DEFAULT_SHARDS: usize = 16;

/// Hit/miss/occupancy snapshot of a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that had to evaluate the model.
    pub misses: u64,
    /// Distinct keys currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded ΔV_th memo table shared by all sweep workers.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<HashMap<StressKey, f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ShardedCache {
    fn default() -> Self {
        ShardedCache::new(DEFAULT_SHARDS)
    }
}

impl ShardedCache {
    /// A cache with `shards` independently locked segments (min 1).
    pub fn new(shards: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Counters and occupancy at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                // relia-lint: allow(unwrap-in-lib)
                .map(|s| s.lock().expect("cache shard poisoned").len())
                .sum(),
        }
    }

    fn shard(&self, key: &StressKey) -> &Mutex<HashMap<StressKey, f64>> {
        &self.shards[key.fingerprint() as usize % self.shards.len()]
    }

    /// Admits `value` for `key` only after a finiteness check: a NaN or
    /// infinite ΔV_th is rejected as [`ModelError::NonFinite`] and **never
    /// enters the memo table**, where it would silently poison every later
    /// hit. All insertion paths go through here.
    pub fn insert_checked(&self, key: StressKey, value: f64) -> Result<f64, ModelError> {
        if !value.is_finite() {
            return Err(ModelError::NonFinite {
                what: "delta_vth (cache admission)",
                value,
            });
        }
        self.shard(&key)
            .lock()
            // Poisoned-lock recovery is meaningless for a memo table.
            // relia-lint: allow(unwrap-in-lib)
            .expect("cache shard poisoned")
            .insert(key, value);
        Ok(value)
    }
}

impl DeltaVthCache for ShardedCache {
    fn delta_vth(&self, key: StressKey, model: &NbtiModel) -> Result<f64, ModelError> {
        let shard = self.shard(&key);
        // relia-lint: allow(unwrap-in-lib)
        if let Some(&v) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // Evaluate outside the lock: a racing thread computes the identical
        // value (evaluation is a pure function of the key), so double
        // insertion is harmless and lock hold times stay tiny.
        let v = key.evaluate(model)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.insert_checked(key, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_core::{Kelvin, ModeSchedule, PmosStress, Ras, Seconds};

    fn key(p_standby: f64) -> StressKey {
        let schedule = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap();
        let stress = PmosStress::new(0.5, p_standby).unwrap();
        StressKey::quantize(&schedule, &stress, Seconds(1.0e8))
    }

    #[test]
    fn second_lookup_hits() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        let a = cache.delta_vth(key(1.0), &model).unwrap();
        let b = cache.delta_vth(key(1.0), &model).unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cached_value_is_canonical() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::new(4);
        let k = key(0.25);
        let via_cache = cache.delta_vth(k, &model).unwrap();
        assert_eq!(via_cache, k.evaluate(&model).unwrap());
    }

    #[test]
    fn distinct_keys_occupy_distinct_entries() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::new(2);
        for i in 0..10 {
            cache.delta_vth(key(i as f64 / 10.0), &model).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 10);
        assert_eq!(stats.misses, 10);
    }

    #[test]
    fn non_finite_values_never_enter_the_cache() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        let k = key(0.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match cache.insert_checked(k, bad) {
                Err(ModelError::NonFinite { .. }) => {}
                other => panic!("expected NonFinite rejection, got {other:?}"),
            }
        }
        assert_eq!(cache.stats().entries, 0, "rejected values are not stored");
        // A later legitimate lookup still computes the canonical value.
        let v = cache.delta_vth(k, &model).unwrap();
        assert_eq!(v, k.evaluate(&model).unwrap());
    }

    #[test]
    fn concurrent_lookups_agree() {
        let model = NbtiModel::ptm90().unwrap();
        let cache = ShardedCache::default();
        let keys: Vec<StressKey> = (0..50).map(|i| key(i as f64 / 100.0)).collect();
        let values = crate::pool::run_ordered(&keys, 8, |_, k| {
            // Every thread looks up every key; all must agree.
            keys.iter()
                .map(|k2| cache.delta_vth(*k2, &model).unwrap())
                .collect::<Vec<f64>>()[keys.iter().position(|k2| k2 == k).unwrap()]
        });
        let solo: Vec<f64> = keys.iter().map(|k| k.evaluate(&model).unwrap()).collect();
        for (o, s) in values.iter().zip(&solo) {
            assert_eq!(o.completed(), Some(s));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 50);
        // 50 jobs × 50 lookups each. Racing threads may each take the miss
        // path for the same key before the first insert lands, so misses
        // can exceed the entry count — but never one per (worker, key).
        assert_eq!(stats.hits + stats.misses, 50 * 50);
        assert!(stats.misses >= 50);
        assert!(stats.misses <= 8 * 50, "misses={}", stats.misses);
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-jobs
//!
//! The parallel batch sweep engine: evaluates a cartesian grid of
//! (circuit × standby policy × RAS/T_standby schedule × lifetime) points
//! across a worker pool, with degradation memoization, crash-safe JSONL
//! checkpoint/resume, and a resilience layer (per-job fault isolation,
//! bounded retry, watchdog deadlines, checkpoint salvage).
//!
//! Layers, bottom-up:
//!
//! * [`pool`] — a std-only ordered worker pool: jobs are claimed from an
//!   atomic counter, run under `catch_unwind` (a panic fails one job, not
//!   the batch), retried with bounded exponential backoff when transient,
//!   cancelled cooperatively by a watchdog when past their deadline, and
//!   collected back **in job order**.
//! * [`cache`] — a sharded [`ShardedCache`] memoizing ΔV_th per quantized
//!   [`relia_core::StressKey`]; admission rejects non-finite values, and
//!   hit/miss counters feed the metrics.
//! * [`spec`] — [`SweepSpec`]: the grid description and its canonical,
//!   index-stable enumeration.
//! * [`checkpoint`] — JSONL persistence with per-record CRC-32, atomic
//!   file creation, bit-exact float round-trips, and a salvage path that
//!   recovers the longest valid prefix of a damaged file; resume skips
//!   completed indices.
//! * [`engine`] — [`run_sweep`]: prepare (per-circuit
//!   [`relia_flow::AnalysisPrep`]) → salvage/resume → execute → summarize.
//! * [`metrics`] — [`SweepMetrics`], the operator-facing run summary.
//! * `fault` (feature `fault-inject` only) — deterministic fault schedules
//!   and checkpoint-corruption helpers for the resilience test suite; the
//!   module and its engine hooks do not exist in normal builds.
//!
//! ## Determinism
//!
//! `run_sweep` returns identical results for any worker count and any
//! kill/resume pattern: enumeration is a pure function of the spec, cached
//! evaluations are canonical per key, and checkpointed floats round-trip
//! exactly. See `tests/determinism.rs` and `tests/fault_injection.rs`.
//!
//! ```
//! use relia_core::units::{Kelvin, Seconds};
//! use relia_jobs::{builtin_resolver, run_sweep, PolicySpec, SweepOptions, SweepSpec, Workload};
//!
//! let spec = SweepSpec {
//!     workload: Workload::CircuitAging {
//!         circuits: vec!["c17".into()],
//!         policies: vec![PolicySpec::Worst, PolicySpec::Best],
//!     },
//!     ras: vec![(1.0, 9.0)],
//!     t_standby: vec![Kelvin(330.0), Kelvin(400.0)],
//!     lifetimes: vec![Seconds(1.0e8)],
//! };
//! let outcome = run_sweep(&spec, &SweepOptions::default(), builtin_resolver).unwrap();
//! assert_eq!(outcome.statuses.len(), 4);
//! assert_eq!(outcome.metrics.failed_jobs, 0);
//! ```

pub mod cache;
pub mod checkpoint;
pub mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod spec;

pub use cache::{CacheStats, ShardedCache, DEFAULT_SHARDS};
pub use checkpoint::{
    load as load_checkpoint, salvage as salvage_checkpoint, Checkpoint, CheckpointError,
    CheckpointWriter, Salvage,
};
pub use engine::{
    builtin_resolver, run_sweep, SweepError, SweepOptions, SweepOutcome, SWEEP_PERIOD_S,
    SWEEP_TEMP_ACTIVE_K,
};
#[cfg(feature = "fault-inject")]
pub use fault::{Fault, FaultPlan, FaultRng};
pub use metrics::{MetricsSnapshot, SweepMetrics, SweepTimings};
pub use pool::{
    default_workers, run_ordered, run_ordered_with, run_pool, Attempt, JobFailure, JobOutcome,
    PoolConfig, PoolRun, RetryPolicy, SubmitError, TaskPool,
};
pub use relia_core::CancelToken;
pub use spec::{JobPoint, JobResult, JobStatus, JobTask, PolicySpec, SweepSpec, Workload};

//! # relia-jobs
//!
//! The parallel batch sweep engine: evaluates a cartesian grid of
//! (circuit × standby policy × RAS/T_standby schedule × lifetime) points
//! across a worker pool, with degradation memoization, JSONL
//! checkpoint/resume, and per-job fault isolation.
//!
//! Layers, bottom-up:
//!
//! * [`pool`] — a std-only ordered worker pool: jobs are claimed from an
//!   atomic counter, run under `catch_unwind` (a panic fails one job, not
//!   the batch), and collected back **in job order**.
//! * [`cache`] — a sharded [`ShardedCache`] memoizing ΔV_th per quantized
//!   [`relia_core::StressKey`]; hit/miss counters feed the metrics.
//! * [`spec`] — [`SweepSpec`]: the grid description and its canonical,
//!   index-stable enumeration.
//! * [`checkpoint`] — JSONL persistence with bit-exact float round-trips;
//!   resume skips completed indices.
//! * [`engine`] — [`run_sweep`]: prepare (per-circuit
//!   [`relia_flow::AnalysisPrep`]) → execute → summarize.
//! * [`metrics`] — [`SweepMetrics`], the operator-facing run summary.
//!
//! ## Determinism
//!
//! `run_sweep` returns identical results for any worker count and any
//! kill/resume pattern: enumeration is a pure function of the spec, cached
//! evaluations are canonical per key, and checkpointed floats round-trip
//! exactly. See `tests/determinism.rs`.
//!
//! ```
//! use relia_jobs::{builtin_resolver, run_sweep, PolicySpec, SweepOptions, SweepSpec, Workload};
//!
//! let spec = SweepSpec {
//!     workload: Workload::CircuitAging {
//!         circuits: vec!["c17".into()],
//!         policies: vec![PolicySpec::Worst, PolicySpec::Best],
//!     },
//!     ras: vec![(1.0, 9.0)],
//!     t_standby: vec![330.0, 400.0],
//!     lifetimes: vec![1.0e8],
//! };
//! let outcome = run_sweep(&spec, &SweepOptions::default(), builtin_resolver).unwrap();
//! assert_eq!(outcome.statuses.len(), 4);
//! assert_eq!(outcome.metrics.failed_jobs, 0);
//! ```

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod spec;

pub use cache::{CacheStats, ShardedCache, DEFAULT_SHARDS};
pub use checkpoint::{load as load_checkpoint, Checkpoint, CheckpointWriter};
pub use engine::{
    builtin_resolver, run_sweep, SweepError, SweepOptions, SweepOutcome, SWEEP_PERIOD_S,
    SWEEP_TEMP_ACTIVE_K,
};
pub use metrics::SweepMetrics;
pub use pool::{default_workers, run_ordered, run_ordered_with, JobOutcome};
pub use spec::{JobPoint, JobResult, JobStatus, JobTask, PolicySpec, SweepSpec, Workload};

//! Deterministic fault injection for the sweep engine (feature
//! `fault-inject` only — the module does not exist in normal builds, so
//! the hooks are zero-cost when the feature is off).
//!
//! A [`FaultPlan`] maps job indices to [`Fault`]s. The engine consults the
//! plan at two seams:
//!
//! * just before executing a job ([`FaultPlan::before_execute`]) — where
//!   [`Fault::Panic`] fires for its first `times` attempts and
//!   [`Fault::Hang`] spins cooperatively against the job's
//!   [`CancelToken`];
//! * at result admission ([`FaultPlan::poisons`]) — where [`Fault::Nan`]
//!   swaps the computed ΔV_th for `NaN`, exercising the *genuine* cache
//!   guardrail ([`ShardedCache::insert_checked`](crate::ShardedCache::insert_checked)).
//!
//! Every fault is keyed by job index and counted per attempt, so a test
//! run is exactly reproducible: the same plan against the same spec
//! produces the same failure/recovery trace for any worker count.
//!
//! The checkpoint-corruption helpers at the bottom mutate files on disk
//! (truncation, bit flips, duplicated lines) so tests can prove the
//! salvage path against realistic damage, with randomness drawn from a
//! seeded xorshift generator rather than ambient entropy.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use relia_core::CancelToken;

use crate::pool::JobFailure;

/// A tiny deterministic xorshift64 stream shared by every fault-injection
/// layer: checkpoint corruption here, socket-level chaos schedules in
/// relia-serve. One seed fully determines a fault sequence, which is what
/// makes chaos runs exactly reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream seeded with `seed` (zero is nudged to one — xorshift64
    /// must not start at the all-zero state).
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed.max(1) }
    }

    /// The next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.state = s;
        s
    }

    /// A value in `0..bound` (0 when `bound` is 0). The modulo bias is
    /// irrelevant at fault-schedule scales.
    pub fn pick(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic on the job's first `times` attempts; later attempts run
    /// normally (so a retry budget ≥ `times` recovers the job).
    Panic {
        /// Number of attempts that panic before the job is allowed
        /// through.
        times: u32,
    },
    /// Spin (polling the cancel token every millisecond) for up to `ms`
    /// milliseconds. If the watchdog cancels first the job reports a
    /// transient failure; if the budget runs out the job proceeds
    /// normally — a bounded hang, so a missing watchdog shows up as a
    /// slow test rather than a deadlocked suite.
    Hang {
        /// Maximum spin time in milliseconds.
        ms: u64,
    },
    /// Replace the job's computed ΔV_th with `NaN` at the admission
    /// boundary.
    Nan,
}

/// A seeded, per-index fault schedule.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<usize, (Fault, AtomicU32)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds `fault` at job `index` (builder style).
    pub fn with(mut self, index: usize, fault: Fault) -> Self {
        self.faults.insert(index, (fault, AtomicU32::new(0)));
        self
    }

    /// Runs the pre-execution faults for job `index`.
    ///
    /// Panics when a [`Fault::Panic`] is armed for this attempt (the pool
    /// catches it like any real panic). Returns a transient [`JobFailure`]
    /// when a [`Fault::Hang`] was cancelled by the watchdog.
    ///
    /// # Errors
    ///
    /// A cancelled hang returns `Err` with a transient failure.
    pub fn before_execute(&self, index: usize, token: &CancelToken) -> Result<(), JobFailure> {
        match self.faults.get(&index) {
            Some((Fault::Panic { times }, count)) => {
                let attempt = count.fetch_add(1, Ordering::Relaxed);
                if attempt < *times {
                    panic!("fault injection: panic at job {index} (attempt {attempt})");
                }
                Ok(())
            }
            Some((Fault::Hang { ms }, _)) => {
                let deadline = Instant::now() + Duration::from_millis(*ms);
                while Instant::now() < deadline {
                    if token.is_cancelled() {
                        return Err(JobFailure::transient(format!(
                            "fault injection: hang at job {index} cancelled"
                        )));
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// True when job `index` has a [`Fault::Nan`] armed: the engine must
    /// push `NaN` through the cache-admission guardrail instead of the
    /// real value.
    pub fn poisons(&self, index: usize) -> bool {
        matches!(self.faults.get(&index), Some((Fault::Nan, _)))
    }
}

// ---------------------------------------------------------------------------
// Checkpoint corruption: deterministic on-disk damage for salvage tests.
// ---------------------------------------------------------------------------

/// Removes the final `bytes` bytes of the file (simulates a torn write /
/// partial flush at kill time).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn truncate_tail(path: &Path, bytes: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    f.set_len(len.saturating_sub(bytes))
}

/// Flips bit `bit` (0–7) of the byte at `byte_index` (simulates media
/// corruption).
///
/// # Errors
///
/// Propagates filesystem errors; out-of-range indices are an
/// [`io::ErrorKind::InvalidInput`] error.
pub fn flip_bit(path: &Path, byte_index: u64, bit: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    if byte_index >= f.metadata()?.len() || bit > 7 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "flip_bit target out of range",
        ));
    }
    let mut b = [0u8];
    f.seek(SeekFrom::Start(byte_index))?;
    f.read_exact(&mut b)?;
    b[0] ^= 1 << bit;
    f.seek(SeekFrom::Start(byte_index))?;
    f.write_all(&b)
}

/// Flips `flips` bits at positions drawn from a seeded xorshift64 stream,
/// restricted to the record region (everything after the first newline, so
/// the header — whose damage is *designed* to be fatal — stays intact).
///
/// # Errors
///
/// Propagates filesystem errors; a file with no record bytes is an
/// [`io::ErrorKind::InvalidInput`] error.
pub fn flip_random_bits(path: &Path, seed: u64, flips: usize) -> io::Result<()> {
    let data = std::fs::read(path)?;
    let first_record = data
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| i as u64 + 1)
        .unwrap_or(0);
    let len = data.len() as u64;
    if first_record >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no record bytes to corrupt",
        ));
    }
    let mut rng = FaultRng::new(seed);
    for _ in 0..flips {
        let draw = rng.next_u64();
        let byte = first_record + draw % (len - first_record);
        let bit = (draw >> 32) as u8 & 7;
        flip_bit(path, byte, bit)?;
    }
    Ok(())
}

/// Appends a copy of the last complete line (simulates a double write
/// after a retry race; last-record-wins semantics must absorb it).
///
/// # Errors
///
/// Propagates filesystem errors; a file without a complete final line is
/// an [`io::ErrorKind::InvalidInput`] error.
pub fn duplicate_last_record(path: &Path) -> io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    let last = text
        .lines()
        .next_back()
        .filter(|_| text.ends_with('\n'))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no complete final line"))?
        .to_owned();
    let mut f = OpenOptions::new().append(true).open(path)?;
    writeln!(f, "{last}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("relia-fault-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn fault_rng_is_deterministic_and_never_stuck_at_zero() {
        let mut a = FaultRng::new(0xfeed_beef);
        let mut b = FaultRng::new(0xfeed_beef);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
        }
        let mut c = FaultRng::new(0);
        assert_eq!(c.clone(), FaultRng::new(1), "zero seed is nudged to one");
        assert_ne!(c.next_u64(), 0);
        assert!(FaultRng::new(7).pick(0) == 0, "zero bound degrades to 0");
        let mut d = FaultRng::new(7);
        for _ in 0..32 {
            assert!(d.pick(5) < 5);
        }
    }

    #[test]
    fn panic_fault_fires_exactly_times_attempts() {
        let plan = FaultPlan::new().with(3, Fault::Panic { times: 2 });
        let token = CancelToken::new();
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.before_execute(3, &token)
            }));
            assert!(r.is_err(), "armed attempts panic");
        }
        assert!(plan.before_execute(3, &token).is_ok(), "then recovers");
        assert!(plan.before_execute(0, &token).is_ok(), "other jobs clean");
    }

    #[test]
    fn hang_fault_honors_cancellation() {
        let plan = FaultPlan::new().with(0, Fault::Hang { ms: 10_000 });
        let token = CancelToken::new();
        token.cancel();
        let start = Instant::now();
        let r = plan.before_execute(0, &token);
        assert!(start.elapsed() < Duration::from_secs(5));
        match r {
            Err(f) => assert!(f.transient),
            Ok(()) => panic!("cancelled hang must fail transiently"),
        }
    }

    #[test]
    fn hang_fault_is_bounded_without_a_watchdog() {
        let plan = FaultPlan::new().with(0, Fault::Hang { ms: 5 });
        assert!(plan.before_execute(0, &CancelToken::new()).is_ok());
    }

    #[test]
    fn corruption_helpers_damage_only_what_they_claim() {
        let path = tmp("corrupt");
        std::fs::write(&path, "header\nrecord-one\nrecord-two\n").unwrap();
        truncate_tail(&path, 4).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "header\nrecord-one\nrecord-"
        );
        std::fs::write(&path, "header\nrecord-one\n").unwrap();
        flip_bit(&path, 7, 0).unwrap(); // 'r' ^ 1 = 's'
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "header\nsecord-one\n"
        );
        std::fs::write(&path, "header\nrecord-one\n").unwrap();
        duplicate_last_record(&path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "header\nrecord-one\nrecord-one\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_flips_spare_the_header() {
        let path = tmp("randflip");
        let header = "header-line-stays-clean";
        std::fs::write(&path, format!("{header}\nrecords records records\n")).unwrap();
        flip_random_bits(&path, 0xfeed_beef, 16).unwrap();
        let after = std::fs::read(&path).unwrap();
        assert_eq!(&after[..header.len()], header.as_bytes());
        std::fs::remove_file(&path).ok();
    }
}
